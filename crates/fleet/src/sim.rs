//! The fleet arena: hundreds of machines, one epoch loop.
//!
//! A [`Fleet`] owns every per-machine quantity as a parallel vector
//! (struct-of-arrays beside the machine arena): backlog, injection
//! proportion, last-epoch temperature, rack membership. The epoch loop
//! touches each vector in one linear pass, so a 1 000-machine fleet walks
//! cache lines, not pointer chains.
//!
//! One control epoch, in order:
//!
//! 1. the whole epoch's arrivals are drawn from the fleet RNG *before*
//!    any routing decision, so the offered load is a pure function of
//!    [`FleetConfig::seed`] and every policy faces the same stream;
//! 2. each request is routed through the policy and scored by the fluid
//!    FIFO model: latency = (queued CPU-seconds + own demand) ÷ the
//!    machine's drain rate, recorded into its rack's [`QosStats`];
//! 3. every machine serves as much backlog as its capacity allows, its
//!    cores run at the implied activity, and the full thermal/power
//!    model advances one epoch;
//! 4. each machine's integral controller converts temperature error into
//!    next epoch's idle-injection proportion;
//! 5. racks recirculate: each machine's inlet for the next epoch is the
//!    room temperature plus the rack's rejected heat times the
//!    recirculation coefficient, applied in fixed machine order.
//!
//! Injection couples into the fluid model twice, both times as the paper's
//! mechanism would: it shrinks the drain rate (queued work waits longer)
//! and it caps the busy fraction (cores spend the injected quanta idle, so
//! power and temperature fall).

use dimetrodon_analysis::Availability;
use dimetrodon_ckpt::{CkptError, Dec, Enc};
use dimetrodon_faults::CrashBacklog;
use dimetrodon_machine::{CoreId, Machine};
use dimetrodon_power::CoreState;
use dimetrodon_sim_core::{sim_invariant, SimDuration, SimRng, SimTime};
use dimetrodon_workload::{QosStats, WebConfig};

use crate::config::FleetConfig;
use crate::health::HealthModel;
use crate::policy::{FleetView, RoutePolicy};

/// Ceiling on the per-machine injection proportion: above this the paper's
/// own data says voltage/frequency scaling dominates, and the fluid queue
/// keeps a guaranteed 25 % drain rate so latencies stay finite.
pub const MAX_INJECT_P: f64 = 0.75;

/// Extra routing attempts after a request lands on a machine that is
/// actually down (crashed this epoch, heartbeat not yet timed out).
/// Exhausting them sheds the request — counted, never silently lost.
pub const ROUTE_RETRIES: usize = 2;

/// Per-tenant demand weights span this log-uniform range, so a few tenants
/// are genuinely hot — the migration policy needs someone worth moving.
const TENANT_WEIGHT_RANGE: (f64, f64) = (0.25, 4.0);

/// Hot-aisle saturation under a failed CRAC, °C. Recirculated air mixes
/// with the room; no amount of re-ingested exhaust lifts an inlet past
/// the aisle's mixed-air ceiling. Without this clamp a scaled
/// recirculation coefficient can push the epoch-to-epoch loop gain
/// (inlet → leakage → rejected heat → inlet) past one, and the linear
/// recirculation model diverges instead of settling hot. Healthy racks
/// never reach it, so it is applied on the degraded-CRAC path only.
pub const MAX_CRAC_FAILURE_INLET_CELSIUS: f64 = 70.0;

/// What one rack experienced over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RackReport {
    /// Rack index.
    pub rack: usize,
    /// Machines in this rack (the last rack may be partial).
    pub machines: usize,
    /// Peak per-machine mean sensor temperature seen in the rack, °C.
    pub peak_celsius: f64,
    /// RMS of per-machine mean sensor temperature over machines × epochs,
    /// °C.
    pub rms_celsius: f64,
    /// Reactive thermal-trip latches summed over the rack's machines.
    pub trips: u64,
    /// Requests the router sent to this rack.
    pub requests: u64,
    /// Fraction of the rack's requests meeting the "good" threshold.
    pub good_fraction: f64,
    /// Nearest-rank p99 response latency, seconds; `None` when the rack
    /// served no requests.
    pub p99_latency_s: Option<f64>,
}

/// The fleet arena. Cloning a fleet mid-run forks the whole simulation —
/// every machine, queue, QoS accumulator, and the RNG stream — so a clone
/// stepped with an equivalent policy stays bit-identical to the original.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
    /// QoS scoring view derived from `config`.
    web: WebConfig,
    /// The machine arena; index is machine id everywhere below.
    machines: Vec<Machine>,
    /// Rack of each machine.
    rack_of: Vec<usize>,
    /// Queued CPU-seconds per machine.
    backlog_cpu_s: Vec<f64>,
    /// Idle-injection proportion each machine's controller holds.
    inject_p: Vec<f64>,
    /// Mean sensor temperature per machine at the end of the last epoch.
    temps_celsius: Vec<f64>,
    /// Per-tenant demand multiplier, drawn once at construction.
    tenant_weight: Vec<f64>,
    /// Cumulative routed CPU-seconds per tenant.
    tenant_demand_cpu_s: Vec<f64>,
    /// Per-rack QoS accumulators.
    rack_qos: Vec<QosStats>,
    /// Per-rack peak machine temperature so far.
    rack_peak_celsius: Vec<f64>,
    /// Per-rack running sum of squared machine temperatures.
    rack_temp_sq_sum: Vec<f64>,
    /// Per-rack count of (machine, epoch) temperature samples.
    rack_temp_samples: Vec<u64>,
    /// The fleet RNG: tenant weights, arrivals, demands.
    rng: SimRng,
    /// Epochs executed so far.
    epochs_run: u64,
    /// The settled machine every slot was cloned from; a crash restart
    /// re-clones it, so recovered machines come back thermally cold.
    prototype: Machine,
    /// Advertised per-machine health (heartbeat-lagged) plus the
    /// recovery log the availability metrics consume.
    health: HealthModel,
    /// Ground truth this epoch: machine crashed per the chaos plan.
    down: Vec<bool>,
    /// Ground truth this epoch: controller wedged per the chaos plan.
    wedged: Vec<bool>,
    /// Active CRAC degradation per rack: (recirc scale, inlet delta °C).
    crac: Vec<Option<(f64, f64)>>,
    /// Whether chaos accounting runs. Forced on by a non-empty plan;
    /// switchable on for plan-less baselines so an intensity-0 sweep row
    /// still reports availability. Never on by default with an empty
    /// plan — the zero-cost guarantee rests on that.
    collect_chaos: bool,
    /// Chaos accounting accumulators (zeros unless `collect_chaos`).
    stats: ChaosStats,
}

/// Chaos accounting accumulated per epoch while collection is on.
#[derive(Debug, Clone, Default)]
struct ChaosStats {
    arrived_requests: u64,
    routed_requests: u64,
    shed_requests: u64,
    arrived_cpu_s: f64,
    served_cpu_s: f64,
    shed_cpu_s: f64,
    availability: Availability,
    qos_healthy: QosStats,
    qos_degraded: QosStats,
    healthy_epochs: u64,
    degraded_epochs: u64,
    /// Recovery-log entries already forwarded to `availability`.
    recoveries_fed: usize,
}

/// Availability-under-failure summary of one fleet run; `None`-valued
/// fields had nothing to measure (no degraded epochs, no recoveries).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosMetrics {
    /// Requests offered to the router.
    pub arrived_requests: u64,
    /// Requests shed after exhausting the bounded re-route retries.
    pub shed_requests: u64,
    /// `shed_requests / arrived_requests` (0 when nothing arrived).
    pub shed_fraction: f64,
    /// CPU-seconds of demand offered.
    pub arrived_cpu_s: f64,
    /// CPU-seconds actually served.
    pub served_cpu_s: f64,
    /// CPU-seconds shed: un-routable demand plus backlog dropped by
    /// crashes under the [`CrashBacklog::Drop`] disposition.
    pub shed_cpu_s: f64,
    /// Mean per-epoch fraction of machines up.
    pub capacity_mean: f64,
    /// Worst single-epoch fraction of machines up.
    pub capacity_min: f64,
    /// Epochs where every machine advertised up.
    pub healthy_epochs: u64,
    /// Epochs with at least one machine advertising degraded or down.
    pub degraded_epochs: u64,
    /// Nearest-rank p99 latency over requests routed in healthy epochs.
    pub p99_healthy_s: Option<f64>,
    /// Nearest-rank p99 latency over requests routed in degraded epochs.
    pub p99_degraded_s: Option<f64>,
    /// Completed outages (advertised down, later advertised up).
    pub recoveries: u64,
    /// Mean time from advertised-down to advertised-up, seconds.
    pub recovery_mean_s: Option<f64>,
    /// Longest time from advertised-down to advertised-up, seconds.
    pub recovery_max_s: Option<f64>,
    /// Reactive thermal-trip latches summed over the fleet.
    pub trips: u64,
    /// Peak machine temperature seen anywhere in the fleet, °C.
    pub peak_celsius: f64,
}

impl Fleet {
    /// Builds the fleet: identical machines settled to their idle
    /// equilibrium, empty queues, controllers at zero injection, tenant
    /// weights drawn from the config seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`FleetConfig::validate`] or its
    /// machine config is rejected by [`Machine::new`].
    pub fn new(config: FleetConfig) -> Fleet {
        config.validate();
        let mut rng = SimRng::new(config.seed);
        let tenant_weight: Vec<f64> = (0..config.tenants)
            .map(|_| rng.log_uniform(TENANT_WEIGHT_RANGE.0, TENANT_WEIGHT_RANGE.1))
            .collect();
        // One machine is built and settled, then cloned: every machine is
        // identical, and settling is the constructor's dominant cost.
        let prototype = {
            let built = Machine::new(config.machine.clone());
            // simlint::allow(R1): a rejected machine config is a caller
            // bug surfaced at construction, same contract as validate().
            let mut machine = built.expect("fleet machine config is valid");
            machine.settle_idle();
            machine
        };
        let machines: Vec<Machine> = (0..config.machines).map(|_| prototype.clone()).collect();
        let temps_celsius: Vec<f64> = machines
            .iter()
            .map(Machine::mean_sensor_temperature)
            .collect();
        let rack_of: Vec<usize> = (0..config.machines)
            .map(|m| m / config.machines_per_rack)
            .collect();
        let racks = config.racks();
        let mut rack_peak_celsius = vec![f64::NEG_INFINITY; racks];
        for (machine, &temp) in temps_celsius.iter().enumerate() {
            let rack = rack_of[machine];
            rack_peak_celsius[rack] = rack_peak_celsius[rack].max(temp);
        }
        let web = config.web();
        let health = HealthModel::new(config.machines, config.heartbeat_timeout_epochs);
        let collect_chaos = !config.chaos.is_empty();
        Fleet {
            rack_of,
            backlog_cpu_s: vec![0.0; config.machines],
            inject_p: vec![0.0; config.machines],
            temps_celsius,
            tenant_weight,
            tenant_demand_cpu_s: vec![0.0; config.tenants],
            rack_qos: vec![QosStats::default(); racks],
            rack_peak_celsius,
            rack_temp_sq_sum: vec![0.0; racks],
            rack_temp_samples: vec![0; racks],
            rng,
            epochs_run: 0,
            health,
            down: vec![false; config.machines],
            wedged: vec![false; config.machines],
            crac: vec![None; racks],
            collect_chaos,
            stats: ChaosStats::default(),
            machines,
            prototype,
            web,
            config,
        }
    }

    /// The configuration the fleet was built from.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Epochs executed so far.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Mean sensor temperature per machine at the end of the last epoch.
    pub fn temps_celsius(&self) -> &[f64] {
        &self.temps_celsius
    }

    /// Queued CPU-seconds per machine.
    pub fn backlog_cpu_s(&self) -> &[f64] {
        &self.backlog_cpu_s
    }

    /// Idle-injection proportion per machine.
    pub fn inject_p(&self) -> &[f64] {
        &self.inject_p
    }

    /// The routing view of the current fleet state.
    fn view(&self) -> FleetView<'_> {
        FleetView {
            backlog_cpu_s: &self.backlog_cpu_s,
            temps_celsius: &self.temps_celsius,
            tenant_demand_cpu_s: &self.tenant_demand_cpu_s,
            health: self.health.states(),
        }
    }

    /// Turns chaos accounting on (or off, with an empty plan) for a run
    /// that wants availability metrics without scheduled faults — the
    /// intensity-0 rows of the chaos sweep. With a non-empty plan the
    /// accounting is always on: the shed counters are what keep crashed
    /// work conserved instead of silently lost.
    pub fn set_collect_chaos(&mut self, on: bool) {
        self.collect_chaos = on || !self.config.chaos.is_empty();
    }

    /// CPU-seconds of queue machine `m` drains per second right now:
    /// cores × throttle/trip speed × the controller's non-injected share.
    fn drain_rate(&self, machine: usize) -> f64 {
        let m = &self.machines[machine];
        m.num_cores() as f64 * m.relative_speed() * (1.0 - self.inject_p[machine])
    }

    /// Applies the chaos plan's transitions for the epoch starting at
    /// `now` and feeds the health model one observation. Only called
    /// when a plan is scheduled or chaos accounting is on.
    fn begin_epoch_chaos(&mut self, now: SimTime) {
        if !self.config.chaos.is_empty() {
            let machines = self.machines.len();
            let mut redistributed_cpu_s = 0.0;
            let down_next: Vec<bool> = (0..machines)
                .map(|m| self.config.chaos.machine_down(m, self.rack_of[m], now))
                .collect();
            for (m, &goes_down) in down_next.iter().enumerate() {
                if goes_down && !self.down[m] {
                    // Fresh crash: the queue dies with the machine.
                    let orphaned = std::mem::replace(&mut self.backlog_cpu_s[m], 0.0);
                    match self.config.chaos.on_crash() {
                        CrashBacklog::Drop => self.stats.shed_cpu_s += orphaned,
                        CrashBacklog::Redistribute => redistributed_cpu_s += orphaned,
                    }
                } else if !goes_down && self.down[m] {
                    // Restart after the outage: thermally cold, controller
                    // reset, exactly the state a first boot settles into.
                    self.machines[m] = self.prototype.clone();
                    self.inject_p[m] = 0.0;
                    self.temps_celsius[m] = self.prototype.mean_sensor_temperature();
                }
            }
            self.down = down_next;
            if redistributed_cpu_s > 0.0 {
                let up: Vec<usize> = (0..machines).filter(|&m| !self.down[m]).collect();
                if up.is_empty() {
                    // Nowhere to put it: redistribution degenerates to shed.
                    self.stats.shed_cpu_s += redistributed_cpu_s;
                } else {
                    let share = redistributed_cpu_s / up.len() as f64;
                    for m in up {
                        self.backlog_cpu_s[m] += share;
                    }
                }
            }
            for m in 0..machines {
                self.wedged[m] = self.config.chaos.machine_wedged(m, self.rack_of[m], now);
            }
            for rack in 0..self.crac.len() {
                self.crac[rack] = self.config.chaos.rack_crac(rack, now);
            }
        }
        let alive: Vec<bool> = self.down.iter().map(|&d| !d).collect();
        let impaired: Vec<bool> = (0..self.machines.len())
            .map(|m| self.wedged[m] || self.machines[m].is_tripped())
            .collect();
        self.health.observe(&alive, &impaired);
    }

    /// Runs one control epoch under `policy`.
    pub fn step(&mut self, policy: &mut dyn RoutePolicy) {
        let epoch_secs = self.config.epoch.as_secs_f64();
        let mean_cpu_s = self.config.mean_service_cpu.as_secs_f64();
        let chaos_on = !self.config.chaos.is_empty();
        if chaos_on || self.collect_chaos {
            let now = SimTime::ZERO + self.config.epoch * self.epochs_run;
            self.begin_epoch_chaos(now);
        }
        let degraded_epoch = self.collect_chaos && self.health.any_not_up();
        if self.collect_chaos {
            let up = self.down.iter().filter(|&&d| !d).count();
            self.stats
                .availability
                .record_capacity(up as f64 / self.machines.len() as f64);
            if degraded_epoch {
                self.stats.degraded_epochs += 1;
            } else {
                self.stats.healthy_epochs += 1;
            }
        }

        // 1. Offered load: drawn in full before the policy sees anything,
        // so the stream is identical across policies and the RNG never
        // observes a routing decision.
        let arrivals: Vec<(usize, f64)> = (0..self.config.requests_per_epoch)
            .map(|_| {
                let tenant = self.rng.index(self.config.tenants);
                let demand = self.rng.exponential(mean_cpu_s * self.tenant_weight[tenant]);
                (tenant, demand)
            })
            .collect();

        // Drain rates are an epoch-start quantity: routing inside the
        // epoch sees a consistent fleet, not one mid-update.
        let rates: Vec<f64> = (0..self.machines.len()).map(|m| self.drain_rate(m)).collect();

        // 2. Route and score each request in arrival order. Backlog grows
        // as requests land, so load-aware policies spread a burst. A
        // request that lands on a machine that actually crashed (health
        // hasn't noticed yet) is re-routed up to ROUTE_RETRIES times,
        // then shed — with no chaos plan the first attempt always sticks
        // and this loop is the old single route call verbatim.
        for (tenant, demand) in arrivals {
            if self.collect_chaos {
                self.stats.arrived_requests += 1;
                self.stats.arrived_cpu_s += demand;
            }
            let mut landed = None;
            for _attempt in 0..=ROUTE_RETRIES {
                let machine = policy.route(tenant, &self.view());
                assert!(
                    machine < self.machines.len(),
                    "policy {} routed to machine {machine} of {}",
                    policy.name(),
                    self.machines.len()
                );
                if !chaos_on || !self.down[machine] {
                    landed = Some(machine);
                    break;
                }
            }
            match landed {
                Some(machine) => {
                    let latency_s = (self.backlog_cpu_s[machine] + demand) / rates[machine];
                    let latency = SimDuration::from_secs_f64(latency_s);
                    self.rack_qos[self.rack_of[machine]].record(latency, &self.web);
                    if self.collect_chaos {
                        self.stats.routed_requests += 1;
                        let split = if degraded_epoch {
                            &mut self.stats.qos_degraded
                        } else {
                            &mut self.stats.qos_healthy
                        };
                        split.record(latency, &self.web);
                    }
                    self.backlog_cpu_s[machine] += demand;
                    self.tenant_demand_cpu_s[tenant] += demand;
                }
                None => {
                    // Conservation over silence: the demand is charged to
                    // the shed counters, never dropped untracked.
                    self.stats.shed_requests += 1;
                    self.stats.shed_cpu_s += demand;
                }
            }
        }

        // 3–4. Serve, heat, control — one linear pass over the arena.
        // Crashed machines are powered off: they serve nothing, reject no
        // heat, and their controller and sensors are frozen until the
        // restart re-clones them from the prototype.
        for (machine, &rate) in rates.iter().enumerate() {
            if chaos_on && self.down[machine] {
                continue;
            }
            let capacity_cpu_s = rate * epoch_secs;
            let served = self.backlog_cpu_s[machine].min(capacity_cpu_s);
            self.backlog_cpu_s[machine] -= served;
            if self.collect_chaos {
                self.stats.served_cpu_s += served;
            }
            sim_invariant!(
                self.backlog_cpu_s[machine] >= 0.0 && self.backlog_cpu_s[machine].is_finite(),
                "machine {machine} backlog must stay finite and non-negative, got {}",
                self.backlog_cpu_s[machine]
            );
            let m = &mut self.machines[machine];
            // Busy share of raw core-time: injected quanta are already
            // excluded because capacity carries the (1 − p) factor.
            let busy = served / (m.num_cores() as f64 * epoch_secs);
            let activity = self.config.service_activity * busy;
            for core in 0..m.num_cores() {
                if served > 0.0 {
                    m.set_core_state(CoreId(core), CoreState::active(activity));
                } else {
                    m.set_core_idle(CoreId(core));
                }
            }
            m.advance(self.config.epoch);

            let temp = m.mean_sensor_temperature();
            self.temps_celsius[machine] = temp;
            let rack = self.rack_of[machine];
            self.rack_peak_celsius[rack] = self.rack_peak_celsius[rack].max(temp);
            self.rack_temp_sq_sum[rack] += temp * temp;
            self.rack_temp_samples[rack] += 1;

            // The Dimetrodon-style preventive loop: integrate temperature
            // error into the injection proportion, clamped so the queue
            // never loses its guaranteed drain rate (anti-windup). A
            // wedged controller holds its last commanded proportion.
            if !(chaos_on && self.wedged[machine]) {
                let error = temp - self.config.setpoint_celsius;
                self.inject_p[machine] = (self.inject_p[machine]
                    + self.config.gain_per_celsius_second * error * epoch_secs)
                    .clamp(0.0, MAX_INJECT_P);
            }
        }

        // 5. Rack recirculation, in fixed machine order: next epoch's
        // inlet is the room plus the rack's rejected heat. A degraded
        // CRAC scales the recirculated share and lifts the supply air;
        // crashed machines neither reject heat nor take an inlet update.
        let racks = self.config.racks();
        let mut rack_heat_w = vec![0.0; racks];
        for machine in 0..self.machines.len() {
            if chaos_on && self.down[machine] {
                continue;
            }
            rack_heat_w[self.rack_of[machine]] += self.machines[machine].heat_to_inlet();
        }
        for machine in 0..self.machines.len() {
            if chaos_on && self.down[machine] {
                continue;
            }
            let rack = self.rack_of[machine];
            let inlet = match self.crac[rack] {
                Some((recirc_scale, inlet_delta_celsius)) => (self.config.room_celsius
                    + self.config.recirc_celsius_per_watt * recirc_scale * rack_heat_w[rack]
                    + inlet_delta_celsius)
                    .min(MAX_CRAC_FAILURE_INLET_CELSIUS),
                None => {
                    self.config.room_celsius
                        + self.config.recirc_celsius_per_watt * rack_heat_w[rack]
                }
            };
            self.machines[machine].set_inlet_celsius(inlet);
        }

        if self.collect_chaos {
            // Forward newly completed recoveries to the availability
            // accumulator, converting health-model epochs to seconds.
            let log = self.health.recovery_epochs();
            while self.stats.recoveries_fed < log.len() {
                let epochs = log[self.stats.recoveries_fed];
                self.stats
                    .availability
                    .record_recovery_secs(epochs as f64 * epoch_secs);
                self.stats.recoveries_fed += 1;
            }
            sim_invariant!(
                self.stats.arrived_requests
                    == self.stats.routed_requests + self.stats.shed_requests,
                "request conservation: {} arrived != {} routed + {} shed",
                self.stats.arrived_requests,
                self.stats.routed_requests,
                self.stats.shed_requests
            );
            sim_invariant!(
                {
                    let queued: f64 = self.backlog_cpu_s.iter().sum();
                    let accounted =
                        self.stats.served_cpu_s + queued + self.stats.shed_cpu_s;
                    (self.stats.arrived_cpu_s - accounted).abs()
                        <= 1e-6 * self.stats.arrived_cpu_s.max(1.0)
                },
                "demand conservation: {} arrived CPU-s != served {} + queued + shed {}",
                self.stats.arrived_cpu_s,
                self.stats.served_cpu_s,
                self.stats.shed_cpu_s
            );
        }

        policy.end_epoch(&self.view());
        self.epochs_run += 1;
    }

    /// Runs every whole epoch of the configured duration.
    pub fn run(&mut self, policy: &mut dyn RoutePolicy) {
        for _ in 0..self.config.epochs() {
            self.step(policy);
        }
    }

    /// Per-rack outcome of the run so far.
    pub fn reports(&self) -> Vec<RackReport> {
        (0..self.config.racks())
            .map(|rack| {
                let machines = self
                    .rack_of
                    .iter()
                    .filter(|&&r| r == rack)
                    .count();
                let qos = &self.rack_qos[rack];
                let samples = self.rack_temp_samples[rack];
                let rms_celsius = if samples > 0 {
                    (self.rack_temp_sq_sum[rack] / samples as f64).sqrt()
                } else {
                    // No epochs yet: report the settled starting point.
                    self.rack_peak_celsius[rack]
                };
                RackReport {
                    rack,
                    machines,
                    peak_celsius: self.rack_peak_celsius[rack],
                    rms_celsius,
                    trips: self
                        .machines
                        .iter()
                        .zip(&self.rack_of)
                        .filter(|(_, &r)| r == rack)
                        .map(|(m, _)| m.trip_count())
                        .sum(),
                    requests: qos.total(),
                    good_fraction: qos.good_fraction(),
                    p99_latency_s: qos.latency_percentile(99.0),
                }
            })
            .collect()
    }
}

impl Fleet {
    /// The advertised health of every machine this epoch.
    pub fn health(&self) -> &HealthModel {
        &self.health
    }

    /// The availability-under-failure summary of the run so far, or
    /// `None` when chaos accounting is off (empty plan and
    /// [`Fleet::set_collect_chaos`] never called).
    pub fn chaos_metrics(&self) -> Option<ChaosMetrics> {
        if !self.collect_chaos {
            return None;
        }
        let s = &self.stats;
        let availability = &s.availability;
        Some(ChaosMetrics {
            arrived_requests: s.arrived_requests,
            shed_requests: s.shed_requests,
            shed_fraction: if s.arrived_requests > 0 {
                s.shed_requests as f64 / s.arrived_requests as f64
            } else {
                0.0
            },
            arrived_cpu_s: s.arrived_cpu_s,
            served_cpu_s: s.served_cpu_s,
            shed_cpu_s: s.shed_cpu_s,
            capacity_mean: availability.capacity_mean().unwrap_or(1.0),
            capacity_min: availability.capacity_min().unwrap_or(1.0),
            healthy_epochs: s.healthy_epochs,
            degraded_epochs: s.degraded_epochs,
            p99_healthy_s: s.qos_healthy.latency_percentile(99.0),
            p99_degraded_s: s.qos_degraded.latency_percentile(99.0),
            recoveries: availability.recoveries(),
            recovery_mean_s: availability.recovery_mean_s(),
            recovery_max_s: availability.recovery_max_s(),
            trips: self.machines.iter().map(Machine::trip_count).sum(),
            peak_celsius: self
                .rack_peak_celsius
                .iter()
                .fold(f64::NEG_INFINITY, |acc, &t| acc.max(t)),
        })
    }
}

/// Builds a fleet from `config`, runs the full duration under `policy`,
/// and returns the per-rack reports.
pub fn run_fleet(config: &FleetConfig, policy: &mut dyn RoutePolicy) -> Vec<RackReport> {
    let mut fleet = Fleet::new(config.clone());
    fleet.run(policy);
    fleet.reports()
}

impl ChaosStats {
    fn encode_state(&self, enc: &mut Enc) {
        enc.u64(self.arrived_requests);
        enc.u64(self.routed_requests);
        enc.u64(self.shed_requests);
        enc.f64(self.arrived_cpu_s);
        enc.f64(self.served_cpu_s);
        enc.f64(self.shed_cpu_s);
        self.availability.encode_state(enc);
        self.qos_healthy.encode_state(enc);
        self.qos_degraded.encode_state(enc);
        enc.u64(self.healthy_epochs);
        enc.u64(self.degraded_epochs);
        enc.u64(self.recoveries_fed as u64);
    }

    fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok(ChaosStats {
            arrived_requests: dec.u64()?,
            routed_requests: dec.u64()?,
            shed_requests: dec.u64()?,
            arrived_cpu_s: dec.f64()?,
            served_cpu_s: dec.f64()?,
            shed_cpu_s: dec.f64()?,
            availability: Availability::decode_state(dec)?,
            qos_healthy: QosStats::decode_state(dec)?,
            qos_degraded: QosStats::decode_state(dec)?,
            healthy_epochs: dec.u64()?,
            degraded_epochs: dec.u64()?,
            recoveries_fed: dec.u64()? as usize,
        })
    }
}

impl Fleet {
    /// Serializes every piece of mutable run state — machine images,
    /// queues, controllers, QoS and chaos accumulators, the RNG stream,
    /// and the health model — as one checkpoint frame payload. Derived
    /// state (rack topology, the settled prototype, the QoS view) is not
    /// written; [`Fleet::checkpoint_restore`] rebuilds it from the
    /// configuration, which the checkpoint's fingerprint pins.
    pub fn checkpoint_encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.seq_len(self.machines.len());
        for machine in &self.machines {
            machine.snapshot().encode_state(&mut enc);
        }
        enc.f64_slice(&self.backlog_cpu_s);
        enc.f64_slice(&self.inject_p);
        enc.f64_slice(&self.temps_celsius);
        enc.f64_slice(&self.tenant_weight);
        enc.f64_slice(&self.tenant_demand_cpu_s);
        enc.seq_len(self.rack_qos.len());
        for qos in &self.rack_qos {
            qos.encode_state(&mut enc);
        }
        enc.f64_slice(&self.rack_peak_celsius);
        enc.f64_slice(&self.rack_temp_sq_sum);
        enc.u64_slice(&self.rack_temp_samples);
        self.rng.encode_state(&mut enc);
        enc.u64(self.epochs_run);
        self.health.encode_state(&mut enc);
        enc.bool_slice(&self.down);
        enc.bool_slice(&self.wedged);
        enc.seq_len(self.crac.len());
        for entry in &self.crac {
            match entry {
                Some((scale, delta)) => {
                    enc.u8(1);
                    enc.f64(*scale);
                    enc.f64(*delta);
                }
                None => enc.u8(0),
            }
        }
        enc.bool(self.collect_chaos);
        self.stats.encode_state(&mut enc);
        enc.into_bytes()
    }

    /// Rebuilds a mid-run fleet from a [`checkpoint_encode`] payload: a
    /// fresh fleet is constructed from `config` (restoring the derived
    /// state), then every mutable field is overwritten from the payload.
    /// The restored fleet's remaining epochs are bit-identical to the
    /// original having continued uninterrupted.
    ///
    /// # Errors
    ///
    /// Returns a [`CkptError`] when the payload is short, malformed, or
    /// shaped for a different fleet (wrong machine/rack/tenant counts) —
    /// the load path never panics on corrupt input.
    ///
    /// [`checkpoint_encode`]: Fleet::checkpoint_encode
    pub fn checkpoint_restore(config: &FleetConfig, payload: &[u8]) -> Result<Fleet, CkptError> {
        let mut fleet = Fleet::new(config.clone());
        let mut dec = Dec::new(payload);

        let machine_count = dec.seq_len()?;
        if machine_count != fleet.machines.len() {
            return Err(CkptError::Malformed(format!(
                "checkpoint holds {machine_count} machines, fleet has {}",
                fleet.machines.len()
            )));
        }
        for machine in &mut fleet.machines {
            let snapshot = dimetrodon_machine::MachineSnapshot::decode_state(&mut dec)?;
            if !snapshot.shape_matches(machine) {
                return Err(CkptError::Malformed(
                    "machine snapshot shape does not match the fleet's machine".into(),
                ));
            }
            machine.restore(&snapshot);
        }

        let racks = fleet.config.racks();
        let expect = |name: &str, got: usize, want: usize| -> Result<(), CkptError> {
            if got == want {
                Ok(())
            } else {
                Err(CkptError::Malformed(format!(
                    "checkpoint {name} length {got}, fleet expects {want}"
                )))
            }
        };

        let backlog_cpu_s = dec.f64_vec()?;
        expect("backlog", backlog_cpu_s.len(), machine_count)?;
        let inject_p = dec.f64_vec()?;
        expect("inject_p", inject_p.len(), machine_count)?;
        let temps_celsius = dec.f64_vec()?;
        expect("temps", temps_celsius.len(), machine_count)?;
        let tenant_weight = dec.f64_vec()?;
        expect("tenant weights", tenant_weight.len(), fleet.config.tenants)?;
        let tenant_demand_cpu_s = dec.f64_vec()?;
        expect("tenant demand", tenant_demand_cpu_s.len(), fleet.config.tenants)?;

        let qos_count = dec.seq_len()?;
        expect("rack qos", qos_count, racks)?;
        let mut rack_qos = Vec::with_capacity(qos_count);
        for _ in 0..qos_count {
            rack_qos.push(QosStats::decode_state(&mut dec)?);
        }
        let rack_peak_celsius = dec.f64_vec()?;
        expect("rack peaks", rack_peak_celsius.len(), racks)?;
        let rack_temp_sq_sum = dec.f64_vec()?;
        expect("rack temp squares", rack_temp_sq_sum.len(), racks)?;
        let rack_temp_samples = dec.u64_vec()?;
        expect("rack temp samples", rack_temp_samples.len(), racks)?;

        let rng = SimRng::decode_state(&mut dec)?;
        let epochs_run = dec.u64()?;
        let health = HealthModel::decode_state(&mut dec)?;
        let down = dec.bool_vec()?;
        expect("down flags", down.len(), machine_count)?;
        let wedged = dec.bool_vec()?;
        expect("wedged flags", wedged.len(), machine_count)?;

        let crac_count = dec.seq_len()?;
        expect("crac entries", crac_count, racks)?;
        let mut crac = Vec::with_capacity(crac_count);
        for _ in 0..crac_count {
            crac.push(match dec.u8()? {
                0 => None,
                1 => Some((dec.f64()?, dec.f64()?)),
                tag => {
                    return Err(CkptError::Malformed(format!(
                        "unknown crac tag {tag}"
                    )))
                }
            });
        }
        let collect_chaos = dec.bool()?;
        let stats = ChaosStats::decode_state(&mut dec)?;
        dec.finish()?;

        fleet.backlog_cpu_s = backlog_cpu_s;
        fleet.inject_p = inject_p;
        fleet.temps_celsius = temps_celsius;
        fleet.tenant_weight = tenant_weight;
        fleet.tenant_demand_cpu_s = tenant_demand_cpu_s;
        fleet.rack_qos = rack_qos;
        fleet.rack_peak_celsius = rack_peak_celsius;
        fleet.rack_temp_sq_sum = rack_temp_sq_sum;
        fleet.rack_temp_samples = rack_temp_samples;
        fleet.rng = rng;
        fleet.epochs_run = epochs_run;
        fleet.health = health;
        fleet.down = down;
        fleet.wedged = wedged;
        fleet.crac = crac;
        fleet.collect_chaos = collect_chaos;
        fleet.stats = stats;
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CoolestFirst, LeastLoaded, PinnedMigrate, RoundRobin};
    use dimetrodon_faults::{FleetFaultKind, FleetFaultPlan, FleetTarget};

    fn small_config(seed: u64) -> FleetConfig {
        let mut config = FleetConfig::rack_scale(8, seed);
        config.machines_per_rack = 4;
        config.duration = SimDuration::from_secs(20);
        config
    }

    fn report_bits(reports: &[RackReport]) -> Vec<u64> {
        reports
            .iter()
            .flat_map(|r| {
                [
                    r.rack as u64,
                    r.machines as u64,
                    r.peak_celsius.to_bits(),
                    r.rms_celsius.to_bits(),
                    r.trips,
                    r.requests,
                    r.good_fraction.to_bits(),
                    r.p99_latency_s.map_or(u64::MAX, f64::to_bits),
                ]
            })
            .collect()
    }

    #[test]
    fn same_seed_same_policy_is_bit_identical() {
        let config = small_config(7);
        let a = run_fleet(&config, &mut RoundRobin::default());
        let b = run_fleet(&config, &mut RoundRobin::default());
        assert_eq!(report_bits(&a), report_bits(&b));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_fleet(&small_config(1), &mut RoundRobin::default());
        let b = run_fleet(&small_config(2), &mut RoundRobin::default());
        assert_ne!(report_bits(&a), report_bits(&b));
    }

    #[test]
    fn every_policy_faces_the_same_offered_load() {
        // The arrival stream is drawn before routing, so total routed
        // demand is policy-independent bit for bit.
        let config = small_config(5);
        let total = |policy: &mut dyn RoutePolicy| {
            let mut fleet = Fleet::new(config.clone());
            fleet.run(policy);
            fleet
                .tenant_demand_cpu_s
                .iter()
                .fold(0.0f64, |acc, d| acc + d)
                .to_bits()
        };
        let rr = total(&mut RoundRobin::default());
        let ll = total(&mut LeastLoaded);
        let cf = total(&mut CoolestFirst);
        assert_eq!(rr, ll);
        assert_eq!(rr, cf);
    }

    #[test]
    fn a_cloned_fleet_continues_bit_identically() {
        // Clone is the fleet's fork: stepping original and clone with
        // equivalent policies must agree bit for bit.
        let config = small_config(3);
        let mut original = Fleet::new(config);
        let mut policy_a = RoundRobin::default();
        for _ in 0..5 {
            original.step(&mut policy_a);
        }
        let mut forked = original.clone();
        let mut policy_b = policy_a.clone();
        for _ in 0..5 {
            original.step(&mut policy_a);
            forked.step(&mut policy_b);
        }
        assert_eq!(
            report_bits(&original.reports()),
            report_bits(&forked.reports())
        );
        assert_eq!(
            original.temps_celsius[0].to_bits(),
            forked.temps_celsius[0].to_bits()
        );
    }

    #[test]
    fn controllers_engage_under_load_and_stay_off_when_cool() {
        let mut hot = small_config(11);
        hot.setpoint_celsius = 1.0; // every machine is above this
        let mut fleet = Fleet::new(hot);
        let mut policy = RoundRobin::default();
        for _ in 0..10 {
            fleet.step(&mut policy);
        }
        assert!(
            fleet.inject_p.iter().all(|&p| p > 0.0),
            "a 1 °C setpoint must drive injection on every machine"
        );
        assert!(fleet.inject_p.iter().all(|&p| p <= MAX_INJECT_P));

        let mut cool = small_config(11);
        cool.setpoint_celsius = 500.0; // unreachable
        let mut fleet = Fleet::new(cool);
        for _ in 0..10 {
            fleet.step(&mut policy);
        }
        assert!(
            fleet.inject_p.iter().all(|&p| p <= 0.0),
            "an unreachable setpoint must never inject"
        );
    }

    #[test]
    fn loaded_racks_run_their_inlets_above_the_room() {
        let config = small_config(13);
        let room = config.room_celsius;
        let mut fleet = Fleet::new(config);
        let mut policy = RoundRobin::default();
        for _ in 0..5 {
            fleet.step(&mut policy);
        }
        assert!(
            fleet
                .machines
                .iter()
                .all(|m| m.inlet_celsius() > room),
            "recirculated heat must lift every loaded inlet above the room"
        );
    }

    #[test]
    fn reports_cover_every_rack_and_count_partial_ones() {
        let mut config = small_config(17);
        config.machines = 10; // 4 + 4 + 2 at 4 per rack
        config.tenants = 40;
        config.requests_per_epoch = 300;
        let reports = run_fleet(&config, &mut LeastLoaded);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[2].machines, 2, "last rack is partial");
        let routed: u64 = reports.iter().map(|r| r.requests).sum();
        assert_eq!(routed, 300 * config.epochs(), "every request lands in some rack");
        for report in &reports {
            assert!(report.peak_celsius.is_finite());
            assert!(report.rms_celsius.is_finite());
            assert!(report.p99_latency_s.is_some(), "every rack served traffic");
        }
    }

    #[test]
    fn a_runaway_crac_failure_saturates_at_the_hot_aisle_ceiling() {
        // A heavily scaled recirculation coefficient pushes the
        // epoch-to-epoch loop gain (inlet → leakage → rejected heat →
        // inlet) past one; before the hot-aisle clamp this diverged to
        // non-finite power instead of settling hot. Hold the failure for
        // most of a long run and require every temperature to stay
        // finite and every inlet at or below the ceiling.
        let mut config = small_config(23);
        config.duration = SimDuration::from_secs(120);
        config.chaos = FleetFaultPlan::new().with(
            SimTime::ZERO + SimDuration::from_secs(2),
            FleetTarget::Rack(0),
            FleetFaultKind::Crac {
                recirc_scale: 4.0,
                inlet_delta_celsius: 5.0,
            },
            None, // permanent failure: worst case
        );
        let epochs = config.epochs();
        let mut fleet = Fleet::new(config);
        let mut policy = RoundRobin::default();
        for _ in 0..epochs {
            fleet.step(&mut policy);
            assert!(
                fleet.temps_celsius.iter().all(|t| t.is_finite()),
                "temperatures must stay finite through a CRAC failure"
            );
            assert!(
                fleet
                    .machines
                    .iter()
                    .all(|m| m.inlet_celsius() <= MAX_CRAC_FAILURE_INLET_CELSIUS),
                "no inlet may exceed the hot-aisle ceiling"
            );
        }
        let reports = fleet.reports();
        assert!(reports.iter().all(|r| r.peak_celsius.is_finite()));
    }

    #[test]
    fn migration_policy_actually_migrates_under_skewed_load() {
        let mut config = small_config(19);
        config.migration_hysteresis_celsius = 0.05;
        let mut policy = PinnedMigrate::new(config.tenants, config.machines, 0.05);
        let _ = run_fleet(&config, &mut policy);
        assert!(
            policy.migrations() > 0,
            "skewed tenant weights plus a tight hysteresis must trigger migration"
        );
    }
}
