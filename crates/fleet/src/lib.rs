//! Cluster-scale fleet simulation: hundreds of [`Machine`]s coupled
//! through shared rack inlets, behind a cluster-level request router.
//!
//! The paper treats one processor; this crate asks the datacenter-shaped
//! question its §6 gestures at — what preventive thermal management buys
//! when *placement* is also a control knob. A [`Fleet`] holds an arena of
//! identical machines (struct-of-arrays hot state beside them), runs an
//! open-loop web-style request stream through a pluggable
//! [`RoutePolicy`], and advances every machine's thermal/power model one
//! control epoch at a time:
//!
//! * requests arrive tenant-attributed with exponential CPU demands and
//!   are routed one at a time; a fluid FIFO queue per machine converts
//!   backlog into latency, scored against the web workload's QoS
//!   thresholds per rack;
//! * each machine runs its own Dimetrodon-style integral controller,
//!   converting sensor temperature above the setpoint into an idle-cycle
//!   injection proportion that shrinks its service capacity;
//! * machines in a rack share an inlet: the heat every machine rejects
//!   recirculates into the next epoch's boundary temperature for the
//!   whole rack (via
//!   [`Machine::set_inlet_celsius`](dimetrodon_machine::Machine::set_inlet_celsius)),
//!   so a hot neighbour really does make your cooling worse.
//!
//! Everything is deterministic from [`FleetConfig::seed`]: the arrival
//! stream is drawn before routing consults any policy, so every policy
//! variant faces the *same* offered load, and [`fleet_comparison`] shards
//! policy variants across worker threads with bit-identical results at
//! every worker count. Completed variants append to a torn-tail-tolerant
//! journal keyed by a config fingerprint, so a killed comparison resumes
//! byte-identically.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chaos;
mod ckpt;
mod config;
mod experiment;
mod health;
mod journal;
mod policy;
mod sim;

pub use chaos::{
    chaos_comparison, chaos_comparison_with, chaos_table, ChaosGrid, ChaosOutcome,
    DEFAULT_INTENSITIES, QUICK_INTENSITIES, RECOVERY_HYSTERESIS_EPOCHS,
};
pub use ckpt::{
    run_fleet_checkpointed, CheckpointSpec, DEFAULT_CHECKPOINT_EVERY, DEFAULT_CHECKPOINT_KEEP,
};
pub use config::FleetConfig;
pub use experiment::{
    fleet_comparison, fleet_comparison_checkpointed, fleet_comparison_with, fleet_table,
    FleetOutcome,
};
pub use health::{HealthModel, HealthState};
pub use journal::{chaos_journal_path, journal_path, ChaosJournal, FleetJournal};
pub use policy::{
    CoolestFirst, FailoverPolicy, FleetView, LeastLoaded, PinnedMigrate, PolicyKind, RoundRobin,
    RoutePolicy,
};
pub use sim::{
    run_fleet, ChaosMetrics, Fleet, RackReport, MAX_CRAC_FAILURE_INLET_CELSIUS, MAX_INJECT_P,
    ROUTE_RETRIES,
};
