//! The fleet's health model: what the router is *told* about each
//! machine, as opposed to what is true.
//!
//! Real clusters never observe a crash directly — they notice a
//! heartbeat stop arriving. The [`HealthModel`] reproduces that gap:
//! every epoch each live machine refreshes its heartbeat, and a machine
//! is advertised [`Down`](HealthState::Down) only once its heartbeat age
//! exceeds the configured timeout. Between the crash and the detection
//! the router keeps sending requests at a corpse; the epoch loop's
//! bounded retry (and ultimately the shed counter) absorbs them, which
//! is exactly the window availability metrics must charge for.
//!
//! A live machine with an impaired substrate — a latched thermal trip or
//! a wedged controller — is advertised [`Degraded`](HealthState::Degraded):
//! still routable, but health-aware wrappers may steer around it and the
//! QoS split accounts its epochs separately.
//!
//! The model is pure bookkeeping over booleans handed in by the epoch
//! loop, so it derives `Clone` and forks with the fleet.

/// What a machine advertises to the router this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Heartbeating and unimpaired.
    #[default]
    Up,
    /// Heartbeating, but tripped or wedged: routable at reduced trust.
    Degraded,
    /// Heartbeat timed out: excluded from routing.
    Down,
}

/// Per-machine advertised health, driven by heartbeat age and impairment
/// flags, plus the time-to-recover log the availability metrics consume.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthModel {
    /// Epochs a machine may miss heartbeats before it is advertised
    /// down. The detection lag is `timeout` epochs after the crash.
    timeout_epochs: u64,
    /// Epochs since each machine's last heartbeat (0 = beat this epoch).
    heartbeat_age: Vec<u64>,
    /// Advertised state, recomputed each observation.
    states: Vec<HealthState>,
    /// Epoch at which each machine was advertised down, while it is.
    down_since: Vec<Option<u64>>,
    /// Completed outages, as advertised-down → advertised-up epochs.
    recovery_epochs: Vec<u64>,
    /// Observations made so far (the health model's own epoch clock).
    epoch: u64,
}

impl HealthState {
    /// The checkpoint tag byte for this state.
    pub(crate) fn encode_tag(self) -> u8 {
        match self {
            HealthState::Up => 0,
            HealthState::Degraded => 1,
            HealthState::Down => 2,
        }
    }

    /// The state for a checkpoint tag byte.
    pub(crate) fn from_tag(tag: u8) -> Result<Self, dimetrodon_ckpt::CkptError> {
        match tag {
            0 => Ok(HealthState::Up),
            1 => Ok(HealthState::Degraded),
            2 => Ok(HealthState::Down),
            other => Err(dimetrodon_ckpt::CkptError::Malformed(format!(
                "unknown health-state tag {other}"
            ))),
        }
    }
}

impl HealthModel {
    /// A model for `machines` machines, all initially up.
    pub fn new(machines: usize, timeout_epochs: u64) -> HealthModel {
        HealthModel {
            timeout_epochs,
            heartbeat_age: vec![0; machines],
            states: vec![HealthState::Up; machines],
            down_since: vec![None; machines],
            recovery_epochs: Vec::new(),
            epoch: 0,
        }
    }

    /// Serializes the full model (heartbeat ages, advertised states,
    /// outage bookkeeping) for a durable checkpoint.
    pub fn encode_state(&self, enc: &mut dimetrodon_ckpt::Enc) {
        enc.u64(self.timeout_epochs);
        enc.u64_slice(&self.heartbeat_age);
        enc.seq_len(self.states.len());
        for state in &self.states {
            enc.u8(state.encode_tag());
        }
        enc.seq_len(self.down_since.len());
        for since in &self.down_since {
            match since {
                Some(epoch) => {
                    enc.u8(1);
                    enc.u64(*epoch);
                }
                None => enc.u8(0),
            }
        }
        enc.u64_slice(&self.recovery_epochs);
        enc.u64(self.epoch);
    }

    /// Rebuilds a model from [`encode_state`](Self::encode_state) bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`dimetrodon_ckpt::CkptError`] on a short payload, an
    /// unknown state tag, or per-machine vectors that disagree in length.
    pub fn decode_state(
        dec: &mut dimetrodon_ckpt::Dec<'_>,
    ) -> Result<Self, dimetrodon_ckpt::CkptError> {
        let timeout_epochs = dec.u64()?;
        let heartbeat_age = dec.u64_vec()?;
        let n = dec.seq_len()?;
        let mut states = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            states.push(HealthState::from_tag(dec.u8()?)?);
        }
        let n = dec.seq_len()?;
        let mut down_since = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            down_since.push(match dec.u8()? {
                0 => None,
                1 => Some(dec.u64()?),
                tag => {
                    return Err(dimetrodon_ckpt::CkptError::Malformed(format!(
                        "unknown down-since tag {tag}"
                    )))
                }
            });
        }
        let recovery_epochs = dec.u64_vec()?;
        let epoch = dec.u64()?;
        if states.len() != heartbeat_age.len() || down_since.len() != heartbeat_age.len() {
            return Err(dimetrodon_ckpt::CkptError::Malformed(format!(
                "health model with {} ages, {} states, {} down-since entries",
                heartbeat_age.len(),
                states.len(),
                down_since.len()
            )));
        }
        Ok(HealthModel {
            timeout_epochs,
            heartbeat_age,
            states,
            down_since,
            recovery_epochs,
            epoch,
        })
    }

    /// Feeds one epoch's ground truth: `alive[m]` is whether machine `m`
    /// heartbeats this epoch, `impaired[m]` whether a live machine should
    /// advertise degraded. Call once per epoch, before routing.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not cover every machine.
    pub fn observe(&mut self, alive: &[bool], impaired: &[bool]) {
        assert_eq!(alive.len(), self.states.len(), "alive slice must cover the fleet");
        assert_eq!(impaired.len(), self.states.len(), "impaired slice must cover the fleet");
        for m in 0..self.states.len() {
            if alive[m] {
                self.heartbeat_age[m] = 0;
            } else {
                self.heartbeat_age[m] += 1;
            }
            let next = if self.heartbeat_age[m] > self.timeout_epochs {
                HealthState::Down
            } else if impaired[m] && alive[m] {
                HealthState::Degraded
            } else {
                HealthState::Up
            };
            match (self.states[m], next) {
                (HealthState::Down, HealthState::Down) => {}
                (_, HealthState::Down) => self.down_since[m] = Some(self.epoch),
                (HealthState::Down, _) => {
                    if let Some(since) = self.down_since[m].take() {
                        self.recovery_epochs.push(self.epoch - since);
                    }
                }
                _ => {}
            }
            self.states[m] = next;
        }
        self.epoch += 1;
    }

    /// The advertised state of every machine, indexed by machine.
    pub fn states(&self) -> &[HealthState] {
        &self.states
    }

    /// Whether any machine advertises something other than up — the
    /// epoch-class flag the QoS split keys on.
    pub fn any_not_up(&self) -> bool {
        self.states.iter().any(|&s| s != HealthState::Up)
    }

    /// Machines currently advertised up or degraded (routable).
    pub fn routable(&self) -> usize {
        self.states.iter().filter(|&&s| s != HealthState::Down).count()
    }

    /// Completed outages so far, each as whole epochs from
    /// advertised-down to advertised-up.
    pub fn recovery_epochs(&self) -> &[u64] {
        &self.recovery_epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_lags_the_crash_by_the_timeout() {
        let mut h = HealthModel::new(2, 1);
        let quiet = [false, false];
        h.observe(&[true, false], &quiet);
        assert_eq!(
            h.states(),
            &[HealthState::Up, HealthState::Up],
            "one missed heartbeat is within the timeout"
        );
        h.observe(&[true, false], &quiet);
        assert_eq!(
            h.states(),
            &[HealthState::Up, HealthState::Down],
            "the second missed heartbeat exceeds a 1-epoch timeout"
        );
        assert_eq!(h.routable(), 1);
        assert!(h.any_not_up());
    }

    #[test]
    fn recovery_is_logged_from_advertised_down_to_advertised_up() {
        let mut h = HealthModel::new(1, 0);
        h.observe(&[false], &[false]); // epoch 0: down immediately (timeout 0)
        h.observe(&[false], &[false]); // epoch 1: still down
        assert_eq!(h.states(), &[HealthState::Down]);
        assert!(h.recovery_epochs().is_empty(), "no recovery while down");
        h.observe(&[true], &[false]); // epoch 2: back
        assert_eq!(h.states(), &[HealthState::Up]);
        assert_eq!(h.recovery_epochs(), &[2], "down at epoch 0, up at epoch 2");
    }

    #[test]
    fn impairment_degrades_only_live_machines() {
        let mut h = HealthModel::new(2, 0);
        h.observe(&[true, false], &[true, true]);
        assert_eq!(h.states(), &[HealthState::Degraded, HealthState::Down]);
        assert_eq!(h.routable(), 1, "degraded machines stay routable");
        h.observe(&[true, true], &[false, false]);
        assert_eq!(h.states(), &[HealthState::Up, HealthState::Up]);
    }
}
