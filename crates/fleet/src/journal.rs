//! The fleet comparison's crash-resumable journal.
//!
//! Same discipline as the sweep supervisor's journal (`results/.journal/`,
//! one text line per completed unit, floats as 16-hex-digit IEEE-754 bit
//! patterns, a truncated final line silently dropped), but the unit is a
//! whole policy variant: one line carries every rack report of one
//! [`PolicyKind`](crate::PolicyKind) run. Lines are independent and keyed
//! by variant index, so worker threads may append in completion order and
//! a resumed comparison still reassembles results in variant order.
//!
//! The file name embeds [`FleetConfig::fingerprint`](crate::FleetConfig::fingerprint)
//! — the explicit byte-serialized identity, not a `Debug` rendering — so a
//! journal can never be replayed against a config it does not describe.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::chaos::ChaosGrid;
use crate::policy::PolicyKind;
use crate::sim::{ChaosMetrics, RackReport};

/// The journal file path for a fleet comparison inside `dir`.
pub fn journal_path(dir: &Path, config_fingerprint: u64) -> PathBuf {
    dir.join(format!("fleet-{config_fingerprint:016x}.journal"))
}

/// Serializes one completed variant as a single journal line (no trailing
/// newline). Exposed for the journal property tests.
///
/// Format, whitespace-separated:
///
/// ```text
/// variant <index> <policy-name> <n-racks> <rack> <rack> ...
/// ```
///
/// where each `<rack>` is
/// `machines:peak:rms:trips:requests:good:p99`, floats as full-width hex
/// bit patterns and an absent p99 as `-`. The up-front rack count is what
/// makes SIGKILL truncation detectable: a line with fewer rack tokens
/// than it declares never decodes.
pub fn encode_entry(variant: usize, policy: &str, reports: &[RackReport]) -> String {
    let mut line = format!("variant {variant} {policy} {}", reports.len());
    for report in reports {
        let p99 = match report.p99_latency_s {
            Some(v) => format!("{:016x}", v.to_bits()),
            None => "-".to_string(),
        };
        line.push_str(&format!(
            " {}:{:016x}:{:016x}:{}:{}:{:016x}:{}",
            report.machines,
            report.peak_celsius.to_bits(),
            report.rms_celsius.to_bits(),
            report.trips,
            report.requests,
            report.good_fraction.to_bits(),
            p99,
        ));
    }
    line
}

/// Parses a full-width (16-digit) hex f64 bit pattern; the fixed width
/// rejects truncation.
fn parse_hex_f64(token: &str) -> Option<f64> {
    if token.len() != 16 {
        return None;
    }
    let value = f64::from_bits(u64::from_str_radix(token, 16).ok()?);
    value.is_finite().then_some(value)
}

/// Parses one journal line back into `(variant, policy name, reports)`.
/// Returns `None` for comments, blanks, and malformed or truncated lines.
/// Exposed for the journal property tests.
pub fn decode_entry(line: &str) -> Option<(usize, String, Vec<RackReport>)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 4 || tokens[0] != "variant" {
        return None;
    }
    let variant: usize = tokens[1].parse().ok()?;
    let policy = tokens[2].to_string();
    let racks: usize = tokens[3].parse().ok()?;
    if tokens.len() != 4 + racks {
        return None;
    }
    let mut reports = Vec::with_capacity(racks);
    for (rack, token) in tokens[4..].iter().enumerate() {
        let fields: Vec<&str> = token.split(':').collect();
        if fields.len() != 7 {
            return None;
        }
        reports.push(RackReport {
            rack,
            machines: fields[0].parse().ok()?,
            peak_celsius: parse_hex_f64(fields[1])?,
            rms_celsius: parse_hex_f64(fields[2])?,
            trips: fields[3].parse().ok()?,
            requests: fields[4].parse().ok()?,
            good_fraction: parse_hex_f64(fields[5])?,
            p99_latency_s: match fields[6] {
                "-" => None,
                hex => Some(parse_hex_f64(hex)?),
            },
        });
    }
    Some((variant, policy, reports))
}

/// A fleet comparison's journal: replayed entries loaded at open, live
/// appends flushed line-at-a-time so a SIGKILL costs at most the line
/// being written.
#[derive(Debug)]
pub struct FleetJournal {
    path: PathBuf,
    entries: BTreeMap<usize, Vec<RackReport>>,
    /// `None` once an I/O error has disabled journaling (the comparison
    /// itself must keep going; resumability is best-effort).
    file: Mutex<Option<File>>,
}

impl FleetJournal {
    /// Opens the journal for `config_fingerprint` inside `dir`.
    ///
    /// With `resume` set, every decodable entry whose variant index names
    /// a known [`PolicyKind`] with a matching name is loaded for replay,
    /// the file is healed to that valid prefix (a SIGKILL can leave a
    /// torn, newline-less tail that would otherwise corrupt the next
    /// append), and new entries append after it. Without `resume`, any
    /// stale journal is truncated and the comparison starts fresh. I/O
    /// failures disable journaling with a warning instead of failing the
    /// run.
    pub fn open(dir: &Path, config_fingerprint: u64, resume: bool) -> FleetJournal {
        let path = journal_path(dir, config_fingerprint);
        let mut entries = BTreeMap::new();
        if resume {
            if let Ok(text) = std::fs::read_to_string(&path) {
                for line in text.lines() {
                    if let Some((variant, policy, reports)) = decode_entry(line) {
                        let known = PolicyKind::ALL
                            .get(variant)
                            .is_some_and(|kind| kind.name() == policy);
                        if known {
                            // Later entries win, matching append order.
                            entries.insert(variant, reports);
                        }
                    }
                }
            }
        }
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create journal dir {}: {err}", dir.display());
            return FleetJournal {
                path,
                entries,
                file: Mutex::new(None),
            };
        }
        // Always rewrite header + surviving entries: a SIGKILL can leave a
        // torn, newline-less tail, and appending straight after it would
        // corrupt the first new line. Healing the file to its valid
        // prefix makes every append land on a line boundary.
        let opened = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path);
        let file = match opened {
            Ok(mut file) => {
                let mut prefix = format!(
                    "# dimetrodon fleet journal v1 config {config_fingerprint:016x}\n"
                );
                for (&variant, reports) in &entries {
                    // A replayed variant's name is its index's by
                    // construction of the `known` filter above.
                    let name = PolicyKind::ALL[variant].name();
                    prefix.push_str(&encode_entry(variant, name, reports));
                    prefix.push('\n');
                }
                if let Err(err) = file.write_all(prefix.as_bytes()).and_then(|()| file.flush()) {
                    eprintln!("warning: journal write failed ({err}); journaling disabled");
                    None
                } else {
                    Some(file)
                }
            }
            Err(err) => {
                eprintln!(
                    "warning: cannot open journal {}: {err}; journaling disabled",
                    path.display()
                );
                None
            }
        };
        FleetJournal {
            path,
            entries,
            file: Mutex::new(file),
        }
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Variants loaded for replay at open.
    pub fn replayed_count(&self) -> usize {
        self.entries.len()
    }

    /// The replayed reports for a variant, if its line survived.
    pub fn replayed(&self, variant: usize) -> Option<Vec<RackReport>> {
        self.entries.get(&variant).cloned()
    }

    /// Appends one completed variant and flushes, so a SIGKILL immediately
    /// after still finds the line on resume. Thread-safe; workers append
    /// in completion order.
    pub fn append(&self, variant: usize, policy: &str, reports: &[RackReport]) {
        let mut guard = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(file) = guard.as_mut() {
            let mut line = encode_entry(variant, policy, reports);
            line.push('\n');
            let written = file.write_all(line.as_bytes()).and_then(|()| file.flush());
            if let Err(err) = written {
                eprintln!("warning: journal write failed ({err}); journaling disabled");
                *guard = None;
            }
        }
    }
}

/// The journal file path for a chaos sweep inside `dir`.
pub fn chaos_journal_path(dir: &Path, grid_fingerprint: u64) -> PathBuf {
    dir.join(format!("fleet-chaos-{grid_fingerprint:016x}.journal"))
}

/// Renders an optional metric as a full-width hex bit pattern or `-`.
fn encode_opt_f64(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{:016x}", v.to_bits()),
        None => "-".to_string(),
    }
}

/// Parses [`encode_opt_f64`]'s rendering back.
fn parse_opt_f64(token: &str) -> Option<Option<f64>> {
    match token {
        "-" => Some(None),
        hex => Some(Some(parse_hex_f64(hex)?)),
    }
}

/// Tokens one chaos entry carries after `chaos <index> <label>`; the
/// fixed count is what rejects SIGKILL-torn prefixes.
const CHAOS_METRIC_TOKENS: usize = 17;

/// Serializes one completed chaos point as a single journal line (no
/// trailing newline). Exposed for the journal property tests.
///
/// Format, whitespace-separated (labels never contain whitespace):
///
/// ```text
/// chaos <index> <label> <17 metric tokens>
/// ```
///
/// with counters as decimal, floats as full-width hex bit patterns, and
/// absent measurements as `-`. The final token is a full-width float, so
/// a line cut anywhere short of its true end never decodes.
pub fn encode_chaos_entry(index: usize, label: &str, metrics: &ChaosMetrics) -> String {
    let m = metrics;
    format!(
        "chaos {index} {label} {} {} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {} {} {} {} {} {} {} {} {:016x}",
        m.arrived_requests,
        m.shed_requests,
        m.shed_fraction.to_bits(),
        m.arrived_cpu_s.to_bits(),
        m.served_cpu_s.to_bits(),
        m.shed_cpu_s.to_bits(),
        m.capacity_mean.to_bits(),
        m.capacity_min.to_bits(),
        m.healthy_epochs,
        m.degraded_epochs,
        encode_opt_f64(m.p99_healthy_s),
        encode_opt_f64(m.p99_degraded_s),
        m.recoveries,
        encode_opt_f64(m.recovery_mean_s),
        encode_opt_f64(m.recovery_max_s),
        m.trips,
        m.peak_celsius.to_bits(),
    )
}

/// Parses one chaos journal line back into `(index, label, metrics)`.
/// Returns `None` for comments, blanks, and malformed or truncated
/// lines. Exposed for the journal property tests.
pub fn decode_chaos_entry(line: &str) -> Option<(usize, String, ChaosMetrics)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() != 3 + CHAOS_METRIC_TOKENS || tokens[0] != "chaos" {
        return None;
    }
    let index: usize = tokens[1].parse().ok()?;
    let label = tokens[2].to_string();
    let m = &tokens[3..];
    let metrics = ChaosMetrics {
        arrived_requests: m[0].parse().ok()?,
        shed_requests: m[1].parse().ok()?,
        shed_fraction: parse_hex_f64(m[2])?,
        arrived_cpu_s: parse_hex_f64(m[3])?,
        served_cpu_s: parse_hex_f64(m[4])?,
        shed_cpu_s: parse_hex_f64(m[5])?,
        capacity_mean: parse_hex_f64(m[6])?,
        capacity_min: parse_hex_f64(m[7])?,
        healthy_epochs: m[8].parse().ok()?,
        degraded_epochs: m[9].parse().ok()?,
        p99_healthy_s: parse_opt_f64(m[10])?,
        p99_degraded_s: parse_opt_f64(m[11])?,
        recoveries: m[12].parse().ok()?,
        recovery_mean_s: parse_opt_f64(m[13])?,
        recovery_max_s: parse_opt_f64(m[14])?,
        trips: m[15].parse().ok()?,
        peak_celsius: parse_hex_f64(m[16])?,
    };
    Some((index, label, metrics))
}

/// A chaos sweep's journal: same healing, replay, and append discipline
/// as [`FleetJournal`], but the unit is one (intensity, policy) grid
/// point and the identity is the grid fingerprint (base config, every
/// synthetic plan's bytes, the recovery hysteresis).
#[derive(Debug)]
pub struct ChaosJournal {
    path: PathBuf,
    /// Expected label per point index, from the grid; entries whose
    /// label disagrees are from an incompatible grid and never replay.
    labels: Vec<String>,
    entries: BTreeMap<usize, ChaosMetrics>,
    /// `None` once an I/O error has disabled journaling.
    file: Mutex<Option<File>>,
}

impl ChaosJournal {
    /// Opens the journal for `grid` inside `dir`; same resume/heal
    /// contract as [`FleetJournal::open`].
    pub fn open(dir: &Path, grid: &ChaosGrid, resume: bool) -> ChaosJournal {
        let fingerprint = grid.fingerprint();
        let path = chaos_journal_path(dir, fingerprint);
        let labels: Vec<String> = grid
            .points()
            .into_iter()
            .map(|(intensity, kind)| ChaosGrid::label(intensity, kind))
            .collect();
        let mut entries = BTreeMap::new();
        if resume {
            if let Ok(text) = std::fs::read_to_string(&path) {
                for line in text.lines() {
                    if let Some((index, label, metrics)) = decode_chaos_entry(line) {
                        if labels.get(index).is_some_and(|expected| *expected == label) {
                            entries.insert(index, metrics);
                        }
                    }
                }
            }
        }
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create journal dir {}: {err}", dir.display());
            return ChaosJournal {
                path,
                labels,
                entries,
                file: Mutex::new(None),
            };
        }
        let opened = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path);
        let file = match opened {
            Ok(mut file) => {
                let mut prefix =
                    format!("# dimetrodon fleet chaos journal v1 grid {fingerprint:016x}\n");
                for (&index, metrics) in &entries {
                    prefix.push_str(&encode_chaos_entry(index, &labels[index], metrics));
                    prefix.push('\n');
                }
                if let Err(err) = file.write_all(prefix.as_bytes()).and_then(|()| file.flush()) {
                    eprintln!("warning: journal write failed ({err}); journaling disabled");
                    None
                } else {
                    Some(file)
                }
            }
            Err(err) => {
                eprintln!(
                    "warning: cannot open journal {}: {err}; journaling disabled",
                    path.display()
                );
                None
            }
        };
        ChaosJournal {
            path,
            labels,
            entries,
            file: Mutex::new(file),
        }
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Points loaded for replay at open.
    pub fn replayed_count(&self) -> usize {
        self.entries.len()
    }

    /// The replayed metrics for a point, if its line survived.
    pub fn replayed(&self, index: usize) -> Option<ChaosMetrics> {
        self.entries.get(&index).cloned()
    }

    /// Appends one completed point and flushes. Thread-safe; workers
    /// append in completion order.
    ///
    /// # Panics
    ///
    /// Panics if `label` is not the grid's label for `index` — an entry
    /// written under the wrong identity would silently poison resumes.
    pub fn append(&self, index: usize, label: &str, metrics: &ChaosMetrics) {
        assert_eq!(
            self.labels.get(index).map(String::as_str),
            Some(label),
            "chaos journal append under a label the grid does not own"
        );
        let mut guard = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(file) = guard.as_mut() {
            let mut line = encode_chaos_entry(index, label, metrics);
            line.push('\n');
            let written = file.write_all(line.as_bytes()).and_then(|()| file.flush());
            if let Err(err) = written {
                eprintln!("warning: journal write failed ({err}); journaling disabled");
                *guard = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports() -> Vec<RackReport> {
        vec![
            RackReport {
                rack: 0,
                machines: 16,
                peak_celsius: 51.25,
                rms_celsius: 47.031,
                trips: 3,
                requests: 12_000,
                good_fraction: 0.9925,
                p99_latency_s: Some(2.75),
            },
            RackReport {
                rack: 1,
                machines: 2,
                peak_celsius: 40.0,
                rms_celsius: 38.5,
                trips: 0,
                requests: 0,
                good_fraction: 0.0,
                p99_latency_s: None,
            },
        ]
    }

    #[test]
    fn entries_round_trip_bit_for_bit() {
        let reports = sample_reports();
        let line = encode_entry(2, "coolest-first", &reports);
        let (variant, policy, decoded) = decode_entry(&line).expect("round trip");
        assert_eq!(variant, 2);
        assert_eq!(policy, "coolest-first");
        assert_eq!(decoded, reports);
    }

    #[test]
    fn every_truncation_of_a_line_is_rejected_or_decodes_a_prefix_free_value() {
        // A SIGKILL can cut the final line anywhere; no prefix of a
        // valid line may decode (the declared rack count guards it).
        let line = encode_entry(1, "least-loaded", &sample_reports());
        for cut in 0..line.len() {
            assert!(
                decode_entry(&line[..cut]).is_none(),
                "truncation at byte {cut} must not decode"
            );
        }
    }

    #[test]
    fn comments_blanks_and_garbage_are_skipped() {
        assert!(decode_entry("").is_none());
        assert!(decode_entry("# header").is_none());
        assert!(decode_entry("point 0123 garbage").is_none());
        assert!(decode_entry("variant x round-robin 0").is_none());
    }

    fn sample_metrics() -> ChaosMetrics {
        ChaosMetrics {
            arrived_requests: 3600,
            shed_requests: 42,
            shed_fraction: 42.0 / 3600.0,
            arrived_cpu_s: 512.25,
            served_cpu_s: 430.5,
            shed_cpu_s: 11.75,
            capacity_mean: 0.96875,
            capacity_min: 0.75,
            healthy_epochs: 20,
            degraded_epochs: 10,
            p99_healthy_s: Some(1.5),
            p99_degraded_s: Some(4.25),
            recoveries: 2,
            recovery_mean_s: Some(6.0),
            recovery_max_s: Some(9.0),
            trips: 5,
            peak_celsius: 51.375,
        }
    }

    #[test]
    fn chaos_entries_round_trip_bit_for_bit() {
        let metrics = sample_metrics();
        let line = encode_chaos_entry(3, "i0.50:least-loaded", &metrics);
        let (index, label, decoded) = decode_chaos_entry(&line).expect("round trip");
        assert_eq!(index, 3);
        assert_eq!(label, "i0.50:least-loaded");
        assert_eq!(decoded, metrics);

        let mut sparse = metrics;
        sparse.p99_degraded_s = None;
        sparse.recovery_mean_s = None;
        sparse.recovery_max_s = None;
        let line = encode_chaos_entry(0, "i0.00:round-robin", &sparse);
        let (_, _, decoded) = decode_chaos_entry(&line).expect("sparse round trip");
        assert_eq!(decoded, sparse);
    }

    #[test]
    fn every_truncation_of_a_chaos_line_is_rejected() {
        let line = encode_chaos_entry(7, "i1.00:pinned-migrate", &sample_metrics());
        for cut in 0..line.len() {
            assert!(
                decode_chaos_entry(&line[..cut]).is_none(),
                "truncation at byte {cut} must not decode"
            );
        }
        assert!(decode_chaos_entry("# header").is_none());
        assert!(decode_chaos_entry("variant 0 round-robin 0").is_none());
    }

    #[test]
    fn open_resume_replays_only_known_variants() {
        let dir = std::env::temp_dir().join(format!(
            "fleet-journal-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let fingerprint = 0xabcd_ef01_2345_6789;
        {
            let journal = FleetJournal::open(&dir, fingerprint, false);
            journal.append(0, "round-robin", &sample_reports());
            // An entry whose name does not match its variant index is
            // from an incompatible policy set and must not replay.
            journal.append(1, "not-a-policy", &sample_reports());
        }
        let resumed = FleetJournal::open(&dir, fingerprint, true);
        assert_eq!(resumed.replayed_count(), 1);
        assert_eq!(
            resumed.replayed(0).expect("variant 0 replays"),
            sample_reports()
        );
        assert!(resumed.replayed(1).is_none());

        // Fresh open truncates.
        let fresh = FleetJournal::open(&dir, fingerprint, false);
        assert_eq!(fresh.replayed_count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
