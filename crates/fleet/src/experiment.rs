//! The fleet comparison experiment: every routing policy over the same
//! offered load, sharded across workers like sweep points.
//!
//! Each [`PolicyKind`] variant is one work item for the harness's worker
//! pool ([`parallel_map_with`]): a variant's outcome is a pure function of
//! the config (the fleet and its policy are built fresh inside the
//! worker), so results are bit-identical at every worker count and
//! reassemble in variant order. Completed variants append to the
//! [`FleetJournal`], and a resumed comparison replays journaled variants
//! instead of recomputing them — byte-identical output either way.

use dimetrodon_analysis::Table;
use dimetrodon_ckpt::CkptError;
use dimetrodon_harness::sweep::{jobs, parallel_map_with};

use crate::ckpt::{run_fleet_checkpointed, CheckpointSpec};
use crate::config::FleetConfig;
use crate::journal::FleetJournal;
use crate::policy::PolicyKind;
use crate::sim::{run_fleet, RackReport};

/// One policy variant's outcome: its per-rack reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The routing policy that produced these reports.
    pub policy: PolicyKind,
    /// Per-rack outcome, in rack order.
    pub reports: Vec<RackReport>,
    /// Whether the reports were replayed from the journal instead of
    /// recomputed.
    pub replayed: bool,
}

/// Runs every [`PolicyKind`] over `config` with the global worker count
/// ([`jobs`]), consulting `journal` for replay/append when given.
pub fn fleet_comparison(config: &FleetConfig, journal: Option<&FleetJournal>) -> Vec<FleetOutcome> {
    fleet_comparison_with(jobs(), config, journal)
}

/// [`fleet_comparison`] with an explicit worker count; what the
/// determinism tests drive so concurrent tests cannot flip each other's
/// pool sizes.
pub fn fleet_comparison_with(
    workers: usize,
    config: &FleetConfig,
    journal: Option<&FleetJournal>,
) -> Vec<FleetOutcome> {
    fleet_comparison_checkpointed(workers, config, journal, None)
        // simlint::allow(R1): with `spec = None` no checkpoint I/O ever runs
        .expect("infallible without a checkpoint spec")
}

/// [`fleet_comparison_with`] with durable mid-run checkpointing: each
/// policy variant saves its fleet + policy state every
/// [`CheckpointSpec::every_epochs`](crate::CheckpointSpec::every_epochs)
/// control epochs and, with restore enabled, resumes from the newest
/// verifiable checkpoint. Journal replay still wins over restore — a
/// *finished* variant never re-runs at all.
///
/// # Errors
///
/// Returns the first variant's [`CkptError`] when restore is requested
/// and that variant's checkpoint files exist but none verifies (or the
/// one that does was written by a different config). `spec = None` is
/// exactly the plain comparison and never errors.
pub fn fleet_comparison_checkpointed(
    workers: usize,
    config: &FleetConfig,
    journal: Option<&FleetJournal>,
    spec: Option<&CheckpointSpec>,
) -> Result<Vec<FleetOutcome>, CkptError> {
    config.validate();
    let outcomes = parallel_map_with(workers, PolicyKind::ALL.len(), |variant| {
        let kind = PolicyKind::ALL[variant];
        if let Some(reports) = journal.and_then(|j| j.replayed(variant)) {
            return Ok(FleetOutcome {
                policy: kind,
                reports,
                replayed: true,
            });
        }
        let mut policy = kind.build(config);
        let reports = match spec {
            Some(spec) => run_fleet_checkpointed(config, policy.as_mut(), spec)?,
            None => run_fleet(config, policy.as_mut()),
        };
        if let Some(journal) = journal {
            journal.append(variant, kind.name(), &reports);
        }
        Ok(FleetOutcome {
            policy: kind,
            reports,
            replayed: false,
        })
    });
    outcomes.into_iter().collect()
}

/// The comparison as a table, one row per (policy, rack) — the shape of
/// `results/fleet.csv`.
pub fn fleet_table(outcomes: &[FleetOutcome]) -> Table {
    let mut table = Table::new(vec![
        "policy",
        "rack",
        "machines",
        "peak_temp_C",
        "rms_temp_C",
        "trips",
        "requests",
        "good_frac",
        "p99_latency_s",
    ]);
    for outcome in outcomes {
        for report in &outcome.reports {
            table.row(vec![
                outcome.policy.name().to_string(),
                format!("{}", report.rack),
                format!("{}", report.machines),
                format!("{:.3}", report.peak_celsius),
                format!("{:.3}", report.rms_celsius),
                format!("{}", report.trips),
                format!("{}", report.requests),
                format!("{:.4}", report.good_fraction),
                match report.p99_latency_s {
                    Some(p99) => format!("{:.4}", p99),
                    None => "-".to_string(),
                },
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimetrodon_sim_core::SimDuration;

    fn tiny_config(seed: u64) -> FleetConfig {
        let mut config = FleetConfig::rack_scale(6, seed);
        config.machines_per_rack = 3;
        config.duration = SimDuration::from_secs(10);
        config
    }

    #[test]
    fn comparison_covers_every_policy_in_order() {
        let outcomes = fleet_comparison_with(2, &tiny_config(23), None);
        let names: Vec<&str> = outcomes.iter().map(|o| o.policy.name()).collect();
        assert_eq!(
            names,
            PolicyKind::ALL.map(PolicyKind::name).to_vec(),
            "outcomes reassemble in variant order"
        );
        assert!(outcomes.iter().all(|o| !o.replayed));
        assert!(outcomes.iter().all(|o| o.reports.len() == 2));
    }

    #[test]
    fn table_has_one_row_per_policy_rack_pair() {
        let outcomes = fleet_comparison_with(1, &tiny_config(29), None);
        let table = fleet_table(&outcomes);
        let csv = table.render_csv();
        // 1 header + 4 policies × 2 racks.
        assert_eq!(csv.lines().count(), 1 + 4 * 2);
        for kind in PolicyKind::ALL {
            assert!(csv.contains(kind.name()), "{} row missing", kind.name());
        }
    }

    #[test]
    fn journal_replay_reproduces_the_fresh_run_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!(
            "fleet-experiment-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let config = tiny_config(31);
        let journal = FleetJournal::open(&dir, config.fingerprint(), false);
        let fresh = fleet_comparison_with(3, &config, Some(&journal));
        drop(journal);

        let resumed_journal = FleetJournal::open(&dir, config.fingerprint(), true);
        assert_eq!(resumed_journal.replayed_count(), PolicyKind::ALL.len());
        let replayed = fleet_comparison_with(2, &config, Some(&resumed_journal));
        assert!(replayed.iter().all(|o| o.replayed));
        assert_eq!(
            fleet_table(&fresh).render_csv(),
            fleet_table(&replayed).render_csv(),
            "replayed comparison renders byte-identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
