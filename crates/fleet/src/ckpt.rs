//! Durable mid-run fleet checkpointing: periodic, checksummed state
//! persistence so a killed run resumes instead of restarting.
//!
//! A checkpoint is two frames in one [`CheckpointStore`] file — the
//! fleet's full mutable state ([`Fleet::checkpoint_encode`]) and the
//! routing policy's state ([`RoutePolicy::save_state`]) — keyed by the
//! config fingerprint so a checkpoint from a different experiment can
//! never be restored by accident. Because the fleet draws each epoch's
//! arrivals from its own checkpointed RNG, a restored fleet's remaining
//! epochs are bit-identical to the uninterrupted run's: the final
//! reports (and any CSV rendered from them) match byte for byte.
//!
//! Save failures never kill a run: the first I/O error prints a warning
//! to stderr and disables further checkpointing, exactly the journal
//! crate's degradation discipline. Restore failures are the opposite —
//! [`CheckpointStore::load_latest`] silently skips corrupt files and
//! falls back to the newest one that verifies, but when *no* file
//! verifies the typed [`CkptError`] propagates so the caller exits
//! nonzero instead of silently recomputing.

use std::path::{Path, PathBuf};

use dimetrodon_ckpt::{CheckpointStore, CkptError, Dec, Enc};

use crate::config::FleetConfig;
use crate::policy::RoutePolicy;
use crate::sim::{Fleet, RackReport};

/// How many epochs between checkpoints when the caller does not say.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 50;

/// How many checkpoint files to retain per (config, policy) pair.
pub const DEFAULT_CHECKPOINT_KEEP: usize = 2;

/// Where and how often a fleet run checkpoints, and whether it first
/// tries to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Directory holding the checkpoint files (created on first save).
    pub dir: PathBuf,
    /// Epochs between checkpoints; `0` disables periodic saving (the
    /// spec then only controls restore).
    pub every_epochs: u64,
    /// Checkpoint files retained per store, newest first (min 1).
    pub keep: usize,
    /// Whether to resume from the newest verifiable checkpoint before
    /// running. With no checkpoint on disk the run starts fresh.
    pub restore: bool,
}

impl CheckpointSpec {
    /// A spec with the default cadence and retention, restore off.
    pub fn new(dir: &Path) -> CheckpointSpec {
        CheckpointSpec {
            dir: dir.to_path_buf(),
            every_epochs: DEFAULT_CHECKPOINT_EVERY,
            keep: DEFAULT_CHECKPOINT_KEEP,
            restore: false,
        }
    }

    /// The store for one (config, policy) pair: the stem carries the
    /// policy name, the fingerprint the full config identity.
    pub fn store(&self, config: &FleetConfig, policy_name: &str) -> CheckpointStore {
        CheckpointStore::new(
            &self.dir,
            &format!("fleet-{policy_name}"),
            config.fingerprint(),
            self.keep,
        )
    }
}

/// Encodes the two checkpoint frames for the current instant of a run.
fn frames(fleet: &Fleet, policy: &dyn RoutePolicy) -> Vec<Vec<u8>> {
    let mut policy_enc = Enc::new();
    policy.save_state(&mut policy_enc);
    vec![fleet.checkpoint_encode(), policy_enc.into_bytes()]
}

/// Rebuilds the fleet and policy state from a loaded checkpoint's
/// frames. The policy must be freshly built for `config` (the same kind
/// that wrote the checkpoint); its in-place restore is validated against
/// that fresh shape.
fn restore_frames(
    config: &FleetConfig,
    policy: &mut dyn RoutePolicy,
    frames: &[Vec<u8>],
) -> Result<Fleet, CkptError> {
    if frames.len() != 2 {
        return Err(CkptError::Malformed(format!(
            "fleet checkpoint holds {} frames, expected 2",
            frames.len()
        )));
    }
    let fleet = Fleet::checkpoint_restore(config, &frames[0])?;
    let mut dec = Dec::new(&frames[1]);
    policy.restore_state(&mut dec)?;
    dec.finish()?;
    Ok(fleet)
}

/// [`run_fleet`](crate::run_fleet) with durable mid-run checkpoints:
/// builds (or restores) a fleet, runs the remaining epochs saving every
/// [`CheckpointSpec::every_epochs`], and returns the per-rack reports.
///
/// # Errors
///
/// Returns a [`CkptError`] only from the restore path — when
/// `spec.restore` is set and checkpoint files exist but none verifies,
/// or the newest verifiable one does not match this config and policy.
/// Save failures degrade to a stderr warning instead.
pub fn run_fleet_checkpointed(
    config: &FleetConfig,
    policy: &mut dyn RoutePolicy,
    spec: &CheckpointSpec,
) -> Result<Vec<RackReport>, CkptError> {
    let store = spec.store(config, policy.name());
    let mut fleet = match spec.restore {
        true => match store.load_latest()? {
            Some(loaded) => {
                if loaded.skipped > 0 {
                    eprintln!(
                        "warning: skipped {} corrupt checkpoint(s), resuming from epoch {}",
                        loaded.skipped, loaded.seq
                    );
                }
                let fleet = restore_frames(config, policy, &loaded.frames)?;
                if fleet.epochs_run() != loaded.seq {
                    return Err(CkptError::Malformed(format!(
                        "checkpoint seq {} disagrees with encoded epoch count {}",
                        loaded.seq,
                        fleet.epochs_run()
                    )));
                }
                fleet
            }
            None => Fleet::new(config.clone()),
        },
        false => Fleet::new(config.clone()),
    };

    let mut saving = spec.every_epochs > 0;
    while fleet.epochs_run() < config.epochs() {
        fleet.step(&mut *policy);
        let epoch = fleet.epochs_run();
        if saving && epoch % spec.every_epochs == 0 && epoch < config.epochs() {
            if let Err(err) = store.save(epoch, &frames(&fleet, policy)) {
                eprintln!("warning: checkpoint save failed ({err}); checkpointing disabled");
                saving = false;
            }
        }
    }
    Ok(fleet.reports())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::RECOVERY_HYSTERESIS_EPOCHS;
    use crate::policy::{FailoverPolicy, PolicyKind};
    use crate::sim::run_fleet;
    use dimetrodon_ckpt::fnv1a64;
    use dimetrodon_sim_core::SimDuration;

    fn tiny_config(seed: u64) -> FleetConfig {
        let mut config = FleetConfig::rack_scale(6, seed);
        config.machines_per_rack = 3;
        config.duration = SimDuration::from_secs(120);
        config
    }

    fn temp_spec(tag: &str) -> CheckpointSpec {
        let dir = std::env::temp_dir().join(format!(
            "fleet-ckpt-test-{}-{tag}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut spec = CheckpointSpec::new(&dir);
        spec.every_epochs = 3;
        spec
    }

    #[test]
    fn checkpointed_run_matches_the_plain_run_bit_for_bit() {
        let config = tiny_config(41);
        for kind in PolicyKind::ALL {
            let spec = temp_spec(&format!("plain-{}", kind.name()));
            let mut policy = kind.build(&config);
            let checkpointed =
                run_fleet_checkpointed(&config, policy.as_mut(), &spec).expect("fresh run");
            let mut policy = kind.build(&config);
            let plain = run_fleet(&config, policy.as_mut());
            assert_eq!(checkpointed, plain, "{} diverged", kind.name());
            std::fs::remove_dir_all(&spec.dir).ok();
        }
    }

    #[test]
    fn restore_continues_bit_identically_after_a_mid_run_kill() {
        let config = tiny_config(43);
        for kind in PolicyKind::ALL {
            let spec = temp_spec(&format!("kill-{}", kind.name()));

            // The uninterrupted run.
            let mut policy = kind.build(&config);
            let uninterrupted = run_fleet(&config, policy.as_mut());

            // A "killed" run: step half the epochs with checkpoints on,
            // then drop everything — only the files survive.
            {
                let store = spec.store(&config, kind.name());
                let mut policy = kind.build(&config);
                let mut fleet = Fleet::new(config.clone());
                for _ in 0..config.epochs() / 2 {
                    fleet.step(policy.as_mut());
                    if fleet.epochs_run() % spec.every_epochs == 0 {
                        store
                            .save(fleet.epochs_run(), &frames(&fleet, policy.as_ref()))
                            .expect("save");
                    }
                }
            }

            // The restored run finishes from the newest checkpoint.
            let mut restore = spec.clone();
            restore.restore = true;
            let mut policy = kind.build(&config);
            let restored =
                run_fleet_checkpointed(&config, policy.as_mut(), &restore).expect("restore");
            assert_eq!(restored, uninterrupted, "{} diverged after restore", kind.name());
            std::fs::remove_dir_all(&spec.dir).ok();
        }
    }

    #[test]
    fn restore_survives_a_failover_wrapped_policy() {
        let config = tiny_config(47);
        let spec = temp_spec("failover");
        let build = || {
            FailoverPolicy::new(
                crate::policy::RoundRobin::default(),
                RECOVERY_HYSTERESIS_EPOCHS,
            )
        };

        let mut policy = build();
        let uninterrupted = run_fleet(&config, &mut policy);

        {
            let store = spec.store(&config, policy.name());
            let mut policy = build();
            let mut fleet = Fleet::new(config.clone());
            for _ in 0..config.epochs() / 2 {
                fleet.step(&mut policy);
            }
            store
                .save(fleet.epochs_run(), &frames(&fleet, &policy))
                .expect("save");
        }

        let mut restore = spec.clone();
        restore.restore = true;
        let mut policy = build();
        let restored = run_fleet_checkpointed(&config, &mut policy, &restore).expect("restore");
        assert_eq!(restored, uninterrupted);
        std::fs::remove_dir_all(&spec.dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_and_all_corrupt_is_a_typed_error() {
        let config = tiny_config(53);
        let spec = temp_spec("corrupt");
        let kind = PolicyKind::RoundRobin;

        let mut policy = kind.build(&config);
        let uninterrupted = run_fleet(&config, policy.as_mut());

        let store = spec.store(&config, kind.name());
        {
            let mut policy = kind.build(&config);
            let mut fleet = Fleet::new(config.clone());
            for _ in 0..6 {
                fleet.step(policy.as_mut());
                store
                    .save(fleet.epochs_run(), &frames(&fleet, policy.as_ref()))
                    .expect("save");
            }
        }
        let candidates = store.candidates();
        assert_eq!(candidates.len(), DEFAULT_CHECKPOINT_KEEP, "retention pruned");

        // Bit-flip the newest file's payload: restore falls back to the
        // older checkpoint and still finishes bit-identically.
        let newest = &candidates[0].1;
        let mut bytes = std::fs::read(newest).expect("read newest");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(newest, &bytes).expect("rewrite newest");

        let mut restore = spec.clone();
        restore.every_epochs = 0;
        restore.restore = true;
        let mut policy = kind.build(&config);
        let restored =
            run_fleet_checkpointed(&config, policy.as_mut(), &restore).expect("fallback restore");
        assert_eq!(restored, uninterrupted, "fallback restore diverged");

        // Corrupt every file: restore must surface a typed error, not
        // panic and not silently recompute. A different bit than above,
        // so the already-corrupt newest file is not flipped back clean.
        for (_, path) in store.candidates() {
            let mut bytes = std::fs::read(&path).expect("read");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, &bytes).expect("rewrite");
        }
        let mut policy = kind.build(&config);
        let err = run_fleet_checkpointed(&config, policy.as_mut(), &restore)
            .expect_err("all-corrupt restore must fail");
        assert!(
            matches!(err, CkptError::NoVerifiable { tried: 2 }),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&spec.dir).ok();
    }

    #[test]
    fn fleet_state_round_trips_bit_for_bit_mid_run() {
        let config = tiny_config(59);
        let mut policy = PolicyKind::PinnedMigrate.build(&config);
        let mut fleet = Fleet::new(config.clone());
        for _ in 0..7 {
            fleet.step(policy.as_mut());
        }
        let encoded = fleet.checkpoint_encode();
        let restored = Fleet::checkpoint_restore(&config, &encoded).expect("restore");
        assert_eq!(
            fnv1a64(&restored.checkpoint_encode()),
            fnv1a64(&encoded),
            "re-encoding the restored fleet must reproduce the exact bytes"
        );
    }
}
