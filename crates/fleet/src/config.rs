//! Fleet configuration and its explicit byte fingerprint.

use dimetrodon_faults::FleetFaultPlan;
use dimetrodon_harness::snapshot::machine_config_bytes;
use dimetrodon_harness::supervise::fnv1a64;
use dimetrodon_machine::{MachineConfig, ThermalTrip};
use dimetrodon_sim_core::SimDuration;
use dimetrodon_workload::WebConfig;

/// Everything a fleet run depends on. One value of this type fully
/// determines the output of [`run_fleet`](crate::run_fleet) for a given
/// policy — the fingerprint below is the journal identity that claim
/// rests on.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-machine platform configuration (every machine is identical).
    pub machine: MachineConfig,
    /// Number of machines in the fleet.
    pub machines: usize,
    /// Machines per rack; the last rack may be partial.
    pub machines_per_rack: usize,
    /// Number of tenants the request stream is attributed to.
    pub tenants: usize,
    /// Simulated run length (whole epochs of it are executed).
    pub duration: SimDuration,
    /// Control epoch: requests are routed, machines advanced, controllers
    /// updated, and rack inlets recomputed once per epoch.
    pub epoch: SimDuration,
    /// Open-loop offered load: requests arriving per epoch, fleet-wide.
    pub requests_per_epoch: usize,
    /// Mean CPU demand of one request before the tenant weight scales it.
    pub mean_service_cpu: SimDuration,
    /// Activity factor of service code while a core works the queue.
    pub service_activity: f64,
    /// The "good" QoS latency threshold.
    pub good_threshold: SimDuration,
    /// The "tolerable" QoS latency threshold.
    pub tolerable_threshold: SimDuration,
    /// Per-machine controller setpoint: sensor temperature above this
    /// grows the machine's idle-injection proportion.
    pub setpoint_celsius: f64,
    /// Integral controller gain: injection proportion added per degree of
    /// error per second of epoch.
    pub gain_per_celsius_second: f64,
    /// Room (CRAC-supplied) air temperature; a rack's inlet sits above
    /// this by its recirculated heat.
    pub room_celsius: f64,
    /// Inlet rise per watt of heat the rack's machines reject.
    pub recirc_celsius_per_watt: f64,
    /// Minimum hottest-to-coolest spread before the pinned-migrate policy
    /// moves a tenant.
    pub migration_hysteresis_celsius: f64,
    /// Seed for the arrival stream and the tenant weight draw.
    pub seed: u64,
    /// Scheduled cluster faults (crashes, CRAC degradation, wedged
    /// controllers). The empty plan is the default and guarantees the
    /// chaos layer is bit-for-bit invisible.
    pub chaos: FleetFaultPlan,
    /// Epochs a machine may miss heartbeats before the health model
    /// advertises it down; the router's detection lag after a crash.
    pub heartbeat_timeout_epochs: u64,
}

impl FleetConfig {
    /// A rack-scale fleet of Xeon E5520 machines with the reactive trip
    /// armed, 16 machines per rack, sized so the per-machine controllers
    /// actually bind: offered load puts each machine around 60 % busy
    /// before injection, and recirculation lifts loaded racks' inlets a
    /// few degrees over the room.
    pub fn rack_scale(machines: usize, seed: u64) -> FleetConfig {
        let mut machine = MachineConfig::xeon_e5520();
        machine.thermal_trip = Some(ThermalTrip::prochot_at(52.0));
        let room_celsius = machine.thermal.ambient_celsius;
        let web = WebConfig::paper_setup();
        FleetConfig {
            machine,
            machines,
            machines_per_rack: 16,
            tenants: machines * 4,
            duration: SimDuration::from_secs(120),
            epoch: SimDuration::from_secs(1),
            requests_per_epoch: machines * 30,
            mean_service_cpu: web.mean_service_cpu,
            service_activity: web.service_activity,
            good_threshold: web.good_threshold,
            tolerable_threshold: web.tolerable_threshold,
            setpoint_celsius: 40.0,
            gain_per_celsius_second: 0.02,
            room_celsius,
            recirc_celsius_per_watt: 0.01,
            migration_hysteresis_celsius: 1.5,
            seed,
            chaos: FleetFaultPlan::new(),
            heartbeat_timeout_epochs: 1,
        }
    }

    /// The shortened smoke configuration: a 32-machine, two-rack fleet
    /// over a quarter of the default duration.
    pub fn quick(seed: u64) -> FleetConfig {
        let mut config = FleetConfig::rack_scale(32, seed);
        config.duration = SimDuration::from_secs(30);
        config
    }

    /// Number of racks (the last may be partial).
    pub fn racks(&self) -> usize {
        self.machines.div_ceil(self.machines_per_rack)
    }

    /// Whole control epochs that fit in `duration`.
    pub fn epochs(&self) -> u64 {
        self.duration.as_nanos() / self.epoch.as_nanos()
    }

    /// The QoS scoring view of this configuration, shaped as the web
    /// workload's config so rack stats reuse the exact same accumulator
    /// the single-machine experiments report.
    pub(crate) fn web(&self) -> WebConfig {
        WebConfig {
            connections: self.tenants.max(1),
            mean_think_time: self.epoch,
            mean_service_cpu: self.mean_service_cpu,
            service_activity: self.service_activity,
            good_threshold: self.good_threshold,
            tolerable_threshold: self.tolerable_threshold,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero, the epoch is zero or longer than the
    /// duration, or any of the analogue knobs is non-finite or out of
    /// range.
    pub fn validate(&self) {
        assert!(self.machines > 0, "need at least one machine");
        assert!(self.machines_per_rack > 0, "need at least one machine per rack");
        assert!(self.tenants > 0, "need at least one tenant");
        assert!(!self.epoch.is_zero(), "epoch must be positive");
        assert!(self.duration >= self.epoch, "duration must cover at least one epoch");
        assert!(self.requests_per_epoch > 0, "need offered load");
        assert!(!self.mean_service_cpu.is_zero(), "service demand must be positive");
        assert!(
            (0.0..=1.0).contains(&self.service_activity),
            "activity must be in [0, 1]"
        );
        assert!(
            self.good_threshold <= self.tolerable_threshold,
            "good threshold must not exceed tolerable"
        );
        assert!(self.setpoint_celsius.is_finite(), "setpoint must be finite");
        assert!(
            self.gain_per_celsius_second.is_finite() && self.gain_per_celsius_second >= 0.0,
            "gain must be finite and non-negative"
        );
        assert!(self.room_celsius.is_finite(), "room temperature must be finite");
        assert!(
            self.recirc_celsius_per_watt.is_finite() && self.recirc_celsius_per_watt >= 0.0,
            "recirculation coefficient must be finite and non-negative"
        );
        assert!(
            self.migration_hysteresis_celsius.is_finite()
                && self.migration_hysteresis_celsius >= 0.0,
            "migration hysteresis must be finite and non-negative"
        );
        if let Some(machine) = self.chaos.max_machine() {
            assert!(
                machine < self.machines,
                "chaos plan names machine {machine} of a {}-machine fleet",
                self.machines
            );
        }
        if let Some(rack) = self.chaos.max_rack() {
            assert!(
                rack < self.racks(),
                "chaos plan names rack {rack} of a {}-rack fleet",
                self.racks()
            );
        }
    }

    /// The journal identity of this configuration: FNV-1a64 over an
    /// explicit field-by-field byte serialization (float bit patterns,
    /// durations as nanoseconds). The machine section reuses the warm-key
    /// walk from the harness, so any two configs the snapshot cache would
    /// distinguish hash differently here too. Unlike the warm key, the
    /// seed *is* included: the arrival stream depends on it.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = machine_config_bytes(&self.machine);
        let mut u64_field = |v: u64| bytes.extend_from_slice(&v.to_le_bytes());
        u64_field(self.machines as u64);
        u64_field(self.machines_per_rack as u64);
        u64_field(self.tenants as u64);
        u64_field(self.duration.as_nanos());
        u64_field(self.epoch.as_nanos());
        u64_field(self.requests_per_epoch as u64);
        u64_field(self.mean_service_cpu.as_nanos());
        u64_field(self.service_activity.to_bits());
        u64_field(self.good_threshold.as_nanos());
        u64_field(self.tolerable_threshold.as_nanos());
        u64_field(self.setpoint_celsius.to_bits());
        u64_field(self.gain_per_celsius_second.to_bits());
        u64_field(self.room_celsius.to_bits());
        u64_field(self.recirc_celsius_per_watt.to_bits());
        u64_field(self.migration_hysteresis_celsius.to_bits());
        u64_field(self.seed);
        // The chaos section only exists when a plan is scheduled: an empty
        // plan must hash exactly like a pre-chaos config, so journals
        // written before the chaos layer existed still resume.
        if !self.chaos.is_empty() {
            let plan = self.chaos.identity_bytes();
            bytes.extend_from_slice(&(plan.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&plan);
            bytes.extend_from_slice(&self.heartbeat_timeout_epochs.to_le_bytes());
        }
        fnv1a64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_validates_and_counts_racks() {
        let config = FleetConfig::rack_scale(40, 1);
        config.validate();
        assert_eq!(config.racks(), 3, "40 machines at 16/rack is 2 full + 1 partial");
        assert_eq!(config.epochs(), 120);
    }

    #[test]
    fn fingerprint_distinguishes_every_knob() {
        let base = FleetConfig::rack_scale(8, 1);
        let mut seeded = base.clone();
        seeded.seed = 2;
        assert_ne!(base.fingerprint(), seeded.fingerprint(), "seed must be in the identity");

        let mut tuned = base.clone();
        tuned.recirc_celsius_per_watt = 0.011;
        assert_ne!(base.fingerprint(), tuned.fingerprint());

        let mut machine_changed = base.clone();
        machine_changed.machine.thermal_trip = None;
        assert_ne!(base.fingerprint(), machine_changed.fingerprint());

        assert_eq!(base.fingerprint(), base.clone().fingerprint(), "clone is identity");
    }

    #[test]
    fn chaos_plan_joins_the_fingerprint_only_when_non_empty() {
        use dimetrodon_faults::{FleetFaultKind, FleetTarget};
        use dimetrodon_sim_core::SimTime;

        let base = FleetConfig::rack_scale(8, 1);
        assert!(base.chaos.is_empty(), "presets default to no chaos");

        let mut timeout_tuned = base.clone();
        timeout_tuned.heartbeat_timeout_epochs = 5;
        assert_eq!(
            base.fingerprint(),
            timeout_tuned.fingerprint(),
            "with no plan the chaos knobs are inert and must not split journals"
        );

        let crash = |at| {
            FleetFaultPlan::new().with(
                SimTime::ZERO + SimDuration::from_secs(at),
                FleetTarget::Machine(2),
                FleetFaultKind::Crash,
                None,
            )
        };
        let mut chaotic = base.clone();
        chaotic.chaos = crash(10);
        assert_ne!(base.fingerprint(), chaotic.fingerprint(), "a plan is identity");

        let mut shifted = base.clone();
        shifted.chaos = crash(11);
        assert_ne!(chaotic.fingerprint(), shifted.fingerprint());

        let mut lagged = chaotic.clone();
        lagged.heartbeat_timeout_epochs = 5;
        assert_ne!(
            chaotic.fingerprint(),
            lagged.fingerprint(),
            "with a plan the detection lag shapes results, so it is identity"
        );
    }

    #[test]
    #[should_panic(expected = "chaos plan names machine")]
    fn chaos_plan_out_of_range_machine_is_rejected() {
        use dimetrodon_faults::{FleetFaultKind, FleetTarget};
        use dimetrodon_sim_core::SimTime;

        let mut config = FleetConfig::rack_scale(8, 1);
        config.chaos = FleetFaultPlan::new().with(
            SimTime::ZERO,
            FleetTarget::Machine(8),
            FleetFaultKind::Crash,
            None,
        );
        config.validate();
    }

    #[test]
    fn fingerprint_distinguishes_sign_zero() {
        let base = FleetConfig::rack_scale(8, 1);
        let mut zero = base.clone();
        zero.recirc_celsius_per_watt = 0.0;
        let mut negative_zero = base;
        negative_zero.recirc_celsius_per_watt = -0.0;
        assert_ne!(zero.fingerprint(), negative_zero.fingerprint());
    }
}
