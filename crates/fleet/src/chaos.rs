//! The chaos experiment: failure intensity × routing policy, measured
//! in availability terms.
//!
//! Each grid point builds a fresh fleet whose config carries a
//! [`FleetFaultPlan::synthetic`] plan scaled by the point's intensity,
//! wraps the point's [`PolicyKind`] in a [`FailoverPolicy`] (recovered
//! machines re-enter rotation only after a hysteresis streak), runs the
//! full duration, and reports [`ChaosMetrics`]. Intensity 0 is the
//! control row: no faults are scheduled, but accounting is switched on
//! so the row still reports capacity 1.0 and its healthy-epoch p99 for
//! comparison.
//!
//! Points shard over [`parallel_map_with`] exactly like the plain fleet
//! comparison — a point's outcome is a pure function of the grid, so
//! results are bit-identical at every worker count — and completed
//! points append to the [`ChaosJournal`], keyed by a grid fingerprint
//! that includes every synthetic plan's bytes: change the generator, the
//! intensities, or the base config, and stale journals stop replaying.

use dimetrodon_analysis::Table;
use dimetrodon_faults::FleetFaultPlan;
use dimetrodon_harness::supervise::fnv1a64;
use dimetrodon_harness::sweep::{jobs, parallel_map_with};

use crate::config::FleetConfig;
use crate::journal::ChaosJournal;
use crate::policy::{FailoverPolicy, PolicyKind};
use crate::sim::{ChaosMetrics, Fleet};

/// The chaos sweep's default failure intensities.
pub const DEFAULT_INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// The shortened smoke sweep's intensities.
pub const QUICK_INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];

/// Epochs a recovered machine must advertise up before the failover
/// wrapper returns it to rotation.
pub const RECOVERY_HYSTERESIS_EPOCHS: u64 = 3;

/// One chaos sweep: a base fleet config (its own chaos plan must be
/// empty — each point supplies its synthetic plan) crossed with failure
/// intensities, every [`PolicyKind`] at each intensity.
#[derive(Debug, Clone)]
pub struct ChaosGrid {
    /// The fleet configuration every point starts from.
    pub base: FleetConfig,
    /// Failure intensities, in `[0, 1]`, in run order.
    pub intensities: Vec<f64>,
    /// The failover wrapper's recovery hysteresis, epochs.
    pub recovery_epochs: u64,
}

impl ChaosGrid {
    /// A grid over `base` and `intensities` with the default recovery
    /// hysteresis.
    ///
    /// # Panics
    ///
    /// Panics if `base` already schedules chaos, no intensity is given,
    /// or an intensity is outside `[0, 1]`.
    pub fn new(base: FleetConfig, intensities: Vec<f64>) -> ChaosGrid {
        assert!(
            base.chaos.is_empty(),
            "the grid's base config must not schedule chaos; each point supplies its plan"
        );
        assert!(!intensities.is_empty(), "need at least one intensity");
        for &intensity in &intensities {
            assert!(
                intensity.is_finite() && (0.0..=1.0).contains(&intensity),
                "intensity must be in [0, 1], got {intensity}"
            );
        }
        ChaosGrid {
            base,
            intensities,
            recovery_epochs: RECOVERY_HYSTERESIS_EPOCHS,
        }
    }

    /// The grid's points in run order: intensity-major, every policy at
    /// each intensity.
    pub fn points(&self) -> Vec<(f64, PolicyKind)> {
        self.intensities
            .iter()
            .flat_map(|&intensity| PolicyKind::ALL.into_iter().map(move |kind| (intensity, kind)))
            .collect()
    }

    /// The stable label of one point, used in CSV rows and journal
    /// lines: `i<intensity>:<policy>`.
    pub fn label(intensity: f64, kind: PolicyKind) -> String {
        format!("i{intensity:.2}:{}", kind.name())
    }

    /// The synthetic plan a point at `intensity` runs under.
    pub fn plan(&self, intensity: f64) -> FleetFaultPlan {
        FleetFaultPlan::synthetic(
            intensity,
            self.base.machines,
            self.base.machines_per_rack,
            self.base.duration,
        )
    }

    /// One point's full fleet config: the base with the point's plan.
    pub fn point_config(&self, intensity: f64) -> FleetConfig {
        let mut config = self.base.clone();
        config.chaos = self.plan(intensity);
        config
    }

    /// The grid's journal identity: the base config fingerprint, every
    /// intensity's bit pattern *and* its generated plan's bytes, and the
    /// recovery hysteresis. Changing the synthetic generator therefore
    /// invalidates old journals instead of replaying stale results.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = self.base.fingerprint().to_le_bytes().to_vec();
        bytes.extend_from_slice(&(self.intensities.len() as u64).to_le_bytes());
        for &intensity in &self.intensities {
            bytes.extend_from_slice(&intensity.to_bits().to_le_bytes());
            let plan = self.plan(intensity).identity_bytes();
            bytes.extend_from_slice(&(plan.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&plan);
        }
        bytes.extend_from_slice(&self.recovery_epochs.to_le_bytes());
        fnv1a64(&bytes)
    }
}

/// One grid point's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// The point's failure intensity.
    pub intensity: f64,
    /// The routing policy under the failover wrapper.
    pub policy: PolicyKind,
    /// Availability-under-failure summary of the run.
    pub metrics: ChaosMetrics,
    /// Whether the metrics were replayed from the journal.
    pub replayed: bool,
}

/// Runs the chaos grid with the global worker count ([`jobs`]),
/// consulting `journal` for replay/append when given.
pub fn chaos_comparison(grid: &ChaosGrid, journal: Option<&ChaosJournal>) -> Vec<ChaosOutcome> {
    chaos_comparison_with(jobs(), grid, journal)
}

/// [`chaos_comparison`] with an explicit worker count; what the
/// determinism tests drive.
pub fn chaos_comparison_with(
    workers: usize,
    grid: &ChaosGrid,
    journal: Option<&ChaosJournal>,
) -> Vec<ChaosOutcome> {
    let points = grid.points();
    let recovery_epochs = grid.recovery_epochs;
    parallel_map_with(workers, points.len(), |index| {
        let (intensity, kind) = points[index];
        if let Some(metrics) = journal.and_then(|j| j.replayed(index)) {
            return ChaosOutcome {
                intensity,
                policy: kind,
                metrics,
                replayed: true,
            };
        }
        let config = grid.point_config(intensity);
        config.validate();
        let mut policy = FailoverPolicy::new(kind.build(&config), recovery_epochs);
        let mut fleet = Fleet::new(config);
        // Intensity-0 points have an empty plan; force accounting on so
        // the control row still reports availability.
        fleet.set_collect_chaos(true);
        fleet.run(&mut policy);
        // simlint::allow(R1): set_collect_chaos(true) guarantees metrics.
        let metrics = fleet.chaos_metrics().expect("chaos accounting was enabled");
        if let Some(journal) = journal {
            journal.append(index, &ChaosGrid::label(intensity, kind), &metrics);
        }
        ChaosOutcome {
            intensity,
            policy: kind,
            metrics,
            replayed: false,
        }
    })
}

/// Renders an absent measurement as `-`, a present one at 4 decimals.
fn opt4(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.4}"),
        None => "-".to_string(),
    }
}

/// The chaos sweep as a table, one row per (intensity, policy) — the
/// shape of `results/fleet_chaos.csv`.
pub fn chaos_table(outcomes: &[ChaosOutcome]) -> Table {
    let mut table = Table::new(vec![
        "intensity",
        "policy",
        "arrived",
        "shed",
        "shed_frac",
        "capacity_mean",
        "capacity_min",
        "healthy_epochs",
        "degraded_epochs",
        "p99_healthy_s",
        "p99_degraded_s",
        "recoveries",
        "recover_mean_s",
        "recover_max_s",
        "trips",
        "peak_temp_C",
    ]);
    for outcome in outcomes {
        let m = &outcome.metrics;
        table.row(vec![
            format!("{:.2}", outcome.intensity),
            outcome.policy.name().to_string(),
            format!("{}", m.arrived_requests),
            format!("{}", m.shed_requests),
            format!("{:.4}", m.shed_fraction),
            format!("{:.4}", m.capacity_mean),
            format!("{:.4}", m.capacity_min),
            format!("{}", m.healthy_epochs),
            format!("{}", m.degraded_epochs),
            opt4(m.p99_healthy_s),
            opt4(m.p99_degraded_s),
            format!("{}", m.recoveries),
            opt4(m.recovery_mean_s),
            opt4(m.recovery_max_s),
            format!("{}", m.trips),
            format!("{:.3}", m.peak_celsius),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimetrodon_sim_core::SimDuration;

    fn tiny_grid(seed: u64) -> ChaosGrid {
        let mut base = FleetConfig::rack_scale(6, seed);
        base.machines_per_rack = 3;
        base.duration = SimDuration::from_secs(12);
        ChaosGrid::new(base, vec![0.0, 1.0])
    }

    #[test]
    fn grid_points_cover_every_intensity_policy_pair_in_order() {
        let grid = tiny_grid(41);
        let points = grid.points();
        assert_eq!(points.len(), 2 * PolicyKind::ALL.len());
        assert_eq!(points[0], (0.0, PolicyKind::RoundRobin));
        assert_eq!(points[4], (1.0, PolicyKind::RoundRobin));
        assert_eq!(ChaosGrid::label(0.5, PolicyKind::LeastLoaded), "i0.50:least-loaded");
    }

    #[test]
    fn fingerprint_tracks_base_intensities_and_hysteresis() {
        let grid = tiny_grid(41);
        assert_eq!(grid.fingerprint(), tiny_grid(41).fingerprint());
        assert_ne!(grid.fingerprint(), tiny_grid(42).fingerprint());

        let mut narrowed = grid.clone();
        narrowed.intensities = vec![0.0];
        assert_ne!(grid.fingerprint(), narrowed.fingerprint());

        let mut patient = grid.clone();
        patient.recovery_epochs += 1;
        assert_ne!(grid.fingerprint(), patient.fingerprint());
    }

    #[test]
    fn comparison_is_bit_identical_across_worker_counts() {
        let grid = tiny_grid(43);
        let serial = chaos_comparison_with(1, &grid, None);
        let sharded = chaos_comparison_with(3, &grid, None);
        assert_eq!(serial, sharded);
        assert_eq!(
            chaos_table(&serial).render_csv(),
            chaos_table(&sharded).render_csv()
        );
    }

    #[test]
    fn intensity_zero_is_a_clean_control_row() {
        let grid = tiny_grid(47);
        let outcomes = chaos_comparison_with(2, &grid, None);
        for outcome in outcomes.iter().filter(|o| o.intensity == 0.0) {
            let m = &outcome.metrics;
            assert_eq!(m.shed_requests, 0, "{}: control row sheds nothing", outcome.policy.name());
            assert_eq!(m.capacity_min, 1.0);
            assert_eq!(m.recoveries, 0);
            assert!(m.arrived_requests > 0);
        }
    }

    #[test]
    fn full_intensity_actually_degrades_the_fleet() {
        let grid = tiny_grid(53);
        let outcomes = chaos_comparison_with(2, &grid, None);
        for outcome in outcomes.iter().filter(|o| o.intensity == 1.0) {
            let m = &outcome.metrics;
            assert!(
                m.capacity_min < 1.0,
                "{}: crashes must dent capacity",
                outcome.policy.name()
            );
            assert!(m.degraded_epochs > 0);
            assert!(
                m.recoveries > 0,
                "{}: timed outages must complete recoveries",
                outcome.policy.name()
            );
        }
    }

    #[test]
    fn journal_replay_reproduces_the_fresh_run_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!(
            "fleet-chaos-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let grid = tiny_grid(59);
        let journal = ChaosJournal::open(&dir, &grid, false);
        let fresh = chaos_comparison_with(3, &grid, Some(&journal));
        drop(journal);

        let resumed = ChaosJournal::open(&dir, &grid, true);
        assert_eq!(resumed.replayed_count(), grid.points().len());
        let replayed = chaos_comparison_with(2, &grid, Some(&resumed));
        assert!(replayed.iter().all(|o| o.replayed));
        assert_eq!(
            chaos_table(&fresh).render_csv(),
            chaos_table(&replayed).render_csv(),
            "replayed chaos sweep renders byte-identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
