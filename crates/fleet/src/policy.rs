//! Cluster routing policies: where each arriving request runs.

use crate::config::FleetConfig;

/// The per-epoch cluster state a policy may consult. All slices are
/// indexed by machine (except `tenant_demand_cpu_s`, by tenant) and
/// reflect the fleet *as of the routing decision* — backlog already
/// includes earlier arrivals of the same epoch, so load-aware policies
/// spread a burst instead of dog-piling one machine.
#[derive(Debug)]
pub struct FleetView<'a> {
    /// Queued CPU-seconds per machine, this epoch's earlier arrivals
    /// included.
    pub backlog_cpu_s: &'a [f64],
    /// Mean sensor temperature per machine at the end of the previous
    /// epoch, °C.
    pub temps_celsius: &'a [f64],
    /// Cumulative routed CPU demand per tenant, CPU-seconds.
    pub tenant_demand_cpu_s: &'a [f64],
}

impl FleetView<'_> {
    /// Number of machines in the fleet.
    pub fn machines(&self) -> usize {
        self.backlog_cpu_s.len()
    }
}

/// A cluster-level request router. `route` is called once per request
/// (in arrival order); `end_epoch` once per control epoch, after the
/// machines advanced — the hook where slow placement decisions like
/// migration live.
pub trait RoutePolicy {
    /// Stable policy name, used in CSV rows and journal lines.
    fn name(&self) -> &'static str;
    /// Picks the machine index (`< view.machines()`) the request runs on.
    fn route(&mut self, tenant: usize, view: &FleetView<'_>) -> usize;
    /// End-of-epoch hook; default does nothing.
    fn end_epoch(&mut self, _view: &FleetView<'_>) {}
}

/// Index of the smallest value, lowest index on ties (strict `<` keeps
/// the scan deterministic without any float equality).
fn argmin(values: &[f64]) -> usize {
    let mut best = 0;
    for i in 1..values.len() {
        if values[i] < values[best] {
            best = i;
        }
    }
    best
}

/// Index of the largest value, lowest index on ties.
fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for i in 1..values.len() {
        if values[i] > values[best] {
            best = i;
        }
    }
    best
}

/// Cycles through machines in index order, ignoring load and
/// temperature. The baseline every load balancer is measured against.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutePolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _tenant: usize, view: &FleetView<'_>) -> usize {
        let chosen = self.next % view.machines();
        self.next = (chosen + 1) % view.machines();
        chosen
    }
}

/// Sends each request to the machine with the least queued work.
#[derive(Debug, Clone, Default)]
pub struct LeastLoaded;

impl RoutePolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _tenant: usize, view: &FleetView<'_>) -> usize {
        argmin(view.backlog_cpu_s)
    }
}

/// Sends each request to the coolest machine: thermal-aware placement,
/// trading some queueing efficiency for flatter rack temperatures.
#[derive(Debug, Clone, Default)]
pub struct CoolestFirst;

impl RoutePolicy for CoolestFirst {
    fn name(&self) -> &'static str {
        "coolest-first"
    }

    fn route(&mut self, _tenant: usize, view: &FleetView<'_>) -> usize {
        argmin(view.temps_celsius)
    }
}

/// Pins every tenant to a home machine (tenant affinity: caches, local
/// state) and migrates at epoch granularity: when the hottest machine
/// runs more than the hysteresis above the coolest, its
/// heaviest-demand tenant moves to the coolest machine.
#[derive(Debug, Clone)]
pub struct PinnedMigrate {
    home: Vec<usize>,
    hysteresis_celsius: f64,
    migrations: u64,
}

impl PinnedMigrate {
    /// Pins tenant `t` to machine `t % machines` initially.
    pub fn new(tenants: usize, machines: usize, hysteresis_celsius: f64) -> PinnedMigrate {
        assert!(machines > 0, "need at least one machine");
        PinnedMigrate {
            home: (0..tenants).map(|t| t % machines).collect(),
            hysteresis_celsius,
            migrations: 0,
        }
    }

    /// Tenants moved so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The current home of a tenant.
    pub fn home_of(&self, tenant: usize) -> usize {
        self.home[tenant]
    }
}

impl RoutePolicy for PinnedMigrate {
    fn name(&self) -> &'static str {
        "pinned-migrate"
    }

    fn route(&mut self, tenant: usize, _view: &FleetView<'_>) -> usize {
        self.home[tenant]
    }

    fn end_epoch(&mut self, view: &FleetView<'_>) {
        if view.machines() < 2 {
            return;
        }
        let hottest = argmax(view.temps_celsius);
        let coolest = argmin(view.temps_celsius);
        if view.temps_celsius[hottest] - view.temps_celsius[coolest] <= self.hysteresis_celsius {
            return;
        }
        // Move the hottest machine's heaviest tenant (lowest id on ties).
        let mut heaviest: Option<usize> = None;
        for (tenant, &home) in self.home.iter().enumerate() {
            if home != hottest {
                continue;
            }
            let heavier = match heaviest {
                Some(best) => view.tenant_demand_cpu_s[tenant] > view.tenant_demand_cpu_s[best],
                None => true,
            };
            if heavier {
                heaviest = Some(tenant);
            }
        }
        if let Some(tenant) = heaviest {
            self.home[tenant] = coolest;
            self.migrations += 1;
        }
    }
}

/// The policy variants the fleet experiment compares. A plain enum so
/// CSV rows, journal lines, and CLI flags all name the same set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`CoolestFirst`].
    CoolestFirst,
    /// [`PinnedMigrate`].
    PinnedMigrate,
}

impl PolicyKind {
    /// Every variant, in the order the comparison runs them.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::RoundRobin,
        PolicyKind::LeastLoaded,
        PolicyKind::CoolestFirst,
        PolicyKind::PinnedMigrate,
    ];

    /// Stable name, identical to the built policy's
    /// [`RoutePolicy::name`].
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::LeastLoaded => "least-loaded",
            PolicyKind::CoolestFirst => "coolest-first",
            PolicyKind::PinnedMigrate => "pinned-migrate",
        }
    }

    /// Parses a stable name back into the variant.
    pub fn parse(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|kind| kind.name() == name)
    }

    /// Builds a fresh policy instance for a run over `config`.
    pub fn build(self, config: &FleetConfig) -> Box<dyn RoutePolicy> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobin::default()),
            PolicyKind::LeastLoaded => Box::new(LeastLoaded),
            PolicyKind::CoolestFirst => Box::new(CoolestFirst),
            PolicyKind::PinnedMigrate => Box::new(PinnedMigrate::new(
                config.tenants,
                config.machines,
                config.migration_hysteresis_celsius,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        backlog: &'a [f64],
        temps: &'a [f64],
        tenant_demand: &'a [f64],
    ) -> FleetView<'a> {
        FleetView {
            backlog_cpu_s: backlog,
            temps_celsius: temps,
            tenant_demand_cpu_s: tenant_demand,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut policy = RoundRobin::default();
        let v = view(&[0.0; 3], &[0.0; 3], &[]);
        let picks: Vec<usize> = (0..7).map(|_| policy.route(0, &v)).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_picks_min_backlog_lowest_index_on_ties() {
        let mut policy = LeastLoaded;
        assert_eq!(policy.route(0, &view(&[2.0, 0.5, 0.5], &[0.0; 3], &[])), 1);
        assert_eq!(policy.route(0, &view(&[1.0, 1.0, 1.0], &[0.0; 3], &[])), 0);
    }

    #[test]
    fn coolest_first_picks_min_temperature() {
        let mut policy = CoolestFirst;
        assert_eq!(policy.route(0, &view(&[0.0; 3], &[44.0, 39.5, 41.0], &[])), 1);
    }

    #[test]
    fn pinned_migrate_moves_the_heaviest_tenant_off_the_hot_machine() {
        // 4 tenants over 2 machines: tenants 0,2 home on machine 0;
        // 1,3 on machine 1. Machine 0 runs hot; tenant 2 is heavier.
        let mut policy = PinnedMigrate::new(4, 2, 1.0);
        assert_eq!(policy.home_of(0), 0);
        assert_eq!(policy.home_of(2), 0);
        let demand = [1.0, 0.2, 5.0, 0.1];
        policy.end_epoch(&view(&[0.0; 2], &[50.0, 40.0], &demand));
        assert_eq!(policy.migrations(), 1);
        assert_eq!(policy.home_of(2), 1, "heaviest hot tenant moved to the coolest");
        assert_eq!(policy.home_of(0), 0, "lighter tenant stays");

        // Inside hysteresis: nothing moves.
        policy.end_epoch(&view(&[0.0; 2], &[40.4, 40.0], &demand));
        assert_eq!(policy.migrations(), 1);
    }

    #[test]
    fn kind_names_round_trip_and_match_built_policies() {
        let config = FleetConfig::rack_scale(4, 9);
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build(&config).name(), kind.name());
        }
        assert_eq!(PolicyKind::parse("nope"), None);
    }
}
