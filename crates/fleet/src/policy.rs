//! Cluster routing policies: where each arriving request runs.

use crate::config::FleetConfig;
use crate::health::HealthState;

/// The per-epoch cluster state a policy may consult. All slices are
/// indexed by machine (except `tenant_demand_cpu_s`, by tenant) and
/// reflect the fleet *as of the routing decision* — backlog already
/// includes earlier arrivals of the same epoch, so load-aware policies
/// spread a burst instead of dog-piling one machine.
#[derive(Debug)]
pub struct FleetView<'a> {
    /// Queued CPU-seconds per machine, this epoch's earlier arrivals
    /// included.
    pub backlog_cpu_s: &'a [f64],
    /// Mean sensor temperature per machine at the end of the previous
    /// epoch, °C.
    pub temps_celsius: &'a [f64],
    /// Cumulative routed CPU demand per tenant, CPU-seconds.
    pub tenant_demand_cpu_s: &'a [f64],
    /// What each machine advertises to the router this epoch. Without a
    /// chaos plan every machine is [`HealthState::Up`] forever; policies
    /// must never route to a machine advertised
    /// [`Down`](HealthState::Down).
    pub health: &'a [HealthState],
}

impl FleetView<'_> {
    /// Number of machines in the fleet.
    pub fn machines(&self) -> usize {
        self.backlog_cpu_s.len()
    }

    /// Whether machine `m` is advertised routable (not down).
    pub fn routable(&self, m: usize) -> bool {
        self.health[m] != HealthState::Down
    }
}

/// A cluster-level request router. `route` is called once per request
/// (in arrival order); `end_epoch` once per control epoch, after the
/// machines advanced — the hook where slow placement decisions like
/// migration live.
pub trait RoutePolicy {
    /// Stable policy name, used in CSV rows and journal lines.
    fn name(&self) -> &'static str;
    /// Picks the machine index (`< view.machines()`) the request runs on.
    fn route(&mut self, tenant: usize, view: &FleetView<'_>) -> usize;
    /// End-of-epoch hook; default does nothing.
    fn end_epoch(&mut self, _view: &FleetView<'_>) {}
    /// Appends the policy's mutable routing state to a checkpoint frame.
    /// Stateless policies keep the default no-op; stateful ones must
    /// write everything a restored run needs to continue bit-identically
    /// (cursors, pinning tables, hysteresis latches).
    fn save_state(&self, _enc: &mut dimetrodon_ckpt::Enc) {}
    /// Restores the state written by [`save_state`](RoutePolicy::save_state)
    /// into a freshly built policy of the same kind.
    ///
    /// # Errors
    ///
    /// Returns a [`dimetrodon_ckpt::CkptError`] when the payload is short
    /// or shaped for a different fleet; implementations never panic on
    /// corrupt input.
    fn restore_state(
        &mut self,
        _dec: &mut dimetrodon_ckpt::Dec<'_>,
    ) -> Result<(), dimetrodon_ckpt::CkptError> {
        Ok(())
    }
}

/// Index of the smallest value over routable machines, lowest index on
/// ties (strict `<` keeps the scan deterministic without any float
/// equality). When every machine is up this reduces exactly to a plain
/// argmin. Falls back to machine 0 if the whole fleet is down — the
/// epoch loop sheds the request after its bounded retries anyway.
fn argmin_routable(values: &[f64], view: &FleetView<'_>) -> usize {
    let mut best: Option<usize> = None;
    for (i, &value) in values.iter().enumerate() {
        if !view.routable(i) {
            continue;
        }
        let better = match best {
            Some(b) => value < values[b],
            None => true,
        };
        if better {
            best = Some(i);
        }
    }
    best.unwrap_or(0)
}

/// Index of the largest value, lowest index on ties.
fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for i in 1..values.len() {
        if values[i] > values[best] {
            best = i;
        }
    }
    best
}

/// Cycles through machines in index order, ignoring load and
/// temperature. The baseline every load balancer is measured against.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutePolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _tenant: usize, view: &FleetView<'_>) -> usize {
        let n = view.machines();
        // Scan at most one full cycle for a routable machine; with every
        // machine up the first candidate wins, which is exactly the
        // pre-health behavior. A fully-down fleet yields the cursor
        // unchanged and the epoch loop sheds the request.
        let mut chosen = self.next % n;
        for offset in 0..n {
            let candidate = (self.next + offset) % n;
            if view.routable(candidate) {
                chosen = candidate;
                break;
            }
        }
        self.next = (chosen + 1) % n;
        chosen
    }

    fn save_state(&self, enc: &mut dimetrodon_ckpt::Enc) {
        enc.u64(self.next as u64);
    }

    fn restore_state(
        &mut self,
        dec: &mut dimetrodon_ckpt::Dec<'_>,
    ) -> Result<(), dimetrodon_ckpt::CkptError> {
        let next = dec.u64()?;
        self.next = usize::try_from(next).map_err(|_| {
            dimetrodon_ckpt::CkptError::Malformed(format!("round-robin cursor {next} overflows"))
        })?;
        Ok(())
    }
}

/// Sends each request to the machine with the least queued work.
#[derive(Debug, Clone, Default)]
pub struct LeastLoaded;

impl RoutePolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _tenant: usize, view: &FleetView<'_>) -> usize {
        argmin_routable(view.backlog_cpu_s, view)
    }
}

/// Sends each request to the coolest machine: thermal-aware placement,
/// trading some queueing efficiency for flatter rack temperatures.
#[derive(Debug, Clone, Default)]
pub struct CoolestFirst;

impl RoutePolicy for CoolestFirst {
    fn name(&self) -> &'static str {
        "coolest-first"
    }

    fn route(&mut self, _tenant: usize, view: &FleetView<'_>) -> usize {
        argmin_routable(view.temps_celsius, view)
    }
}

/// Pins every tenant to a home machine (tenant affinity: caches, local
/// state) and migrates at epoch granularity: when the hottest machine
/// runs more than the hysteresis above the coolest, its
/// heaviest-demand tenant moves to the coolest machine.
#[derive(Debug, Clone)]
pub struct PinnedMigrate {
    home: Vec<usize>,
    hysteresis_celsius: f64,
    migrations: u64,
}

impl PinnedMigrate {
    /// Pins tenant `t` to machine `t % machines` initially.
    pub fn new(tenants: usize, machines: usize, hysteresis_celsius: f64) -> PinnedMigrate {
        assert!(machines > 0, "need at least one machine");
        PinnedMigrate {
            home: (0..tenants).map(|t| t % machines).collect(),
            hysteresis_celsius,
            migrations: 0,
        }
    }

    /// Tenants moved so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The current home of a tenant.
    pub fn home_of(&self, tenant: usize) -> usize {
        self.home[tenant]
    }
}

impl RoutePolicy for PinnedMigrate {
    fn name(&self) -> &'static str {
        "pinned-migrate"
    }

    fn route(&mut self, tenant: usize, view: &FleetView<'_>) -> usize {
        let home = self.home[tenant];
        if view.routable(home) {
            return home;
        }
        // Transient failover while the home is down: the next routable
        // machine scanning upward from the home, wrapping. Affinity is
        // only re-pinned by the epoch-granularity migration below.
        let n = view.machines();
        for offset in 1..n {
            let candidate = (home + offset) % n;
            if view.routable(candidate) {
                return candidate;
            }
        }
        home
    }

    fn end_epoch(&mut self, view: &FleetView<'_>) {
        if view.machines() < 2 {
            return;
        }
        let hottest = argmax(view.temps_celsius);
        let coolest = argmin_routable(view.temps_celsius, view);
        if view.temps_celsius[hottest] - view.temps_celsius[coolest] <= self.hysteresis_celsius {
            return;
        }
        // Move the hottest machine's heaviest tenant (lowest id on ties).
        let mut heaviest: Option<usize> = None;
        for (tenant, &home) in self.home.iter().enumerate() {
            if home != hottest {
                continue;
            }
            let heavier = match heaviest {
                Some(best) => view.tenant_demand_cpu_s[tenant] > view.tenant_demand_cpu_s[best],
                None => true,
            };
            if heavier {
                heaviest = Some(tenant);
            }
        }
        if let Some(tenant) = heaviest {
            self.home[tenant] = coolest;
            self.migrations += 1;
        }
    }

    fn save_state(&self, enc: &mut dimetrodon_ckpt::Enc) {
        enc.seq_len(self.home.len());
        for &home in &self.home {
            enc.u64(home as u64);
        }
        enc.u64(self.migrations);
    }

    fn restore_state(
        &mut self,
        dec: &mut dimetrodon_ckpt::Dec<'_>,
    ) -> Result<(), dimetrodon_ckpt::CkptError> {
        let tenants = dec.seq_len()?;
        if tenants != self.home.len() {
            return Err(dimetrodon_ckpt::CkptError::Malformed(format!(
                "pinned-migrate table for {tenants} tenants restored into a {}-tenant fleet",
                self.home.len()
            )));
        }
        let mut home = Vec::with_capacity(tenants);
        for _ in 0..tenants {
            let machine = dec.u64()?;
            home.push(usize::try_from(machine).map_err(|_| {
                dimetrodon_ckpt::CkptError::Malformed(format!(
                    "pinned-migrate home machine {machine} overflows"
                ))
            })?);
        }
        self.home = home;
        self.migrations = dec.u64()?;
        Ok(())
    }
}

impl<P: RoutePolicy + ?Sized> RoutePolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn route(&mut self, tenant: usize, view: &FleetView<'_>) -> usize {
        (**self).route(tenant, view)
    }

    fn end_epoch(&mut self, view: &FleetView<'_>) {
        (**self).end_epoch(view);
    }

    fn save_state(&self, enc: &mut dimetrodon_ckpt::Enc) {
        (**self).save_state(enc);
    }

    fn restore_state(
        &mut self,
        dec: &mut dimetrodon_ckpt::Dec<'_>,
    ) -> Result<(), dimetrodon_ckpt::CkptError> {
        (**self).restore_state(dec)
    }
}

/// Health hysteresis around any inner [`RoutePolicy`]: a machine that
/// recovers is held out of rotation until it has advertised up for a
/// configurable streak of epochs, so a flapping machine (crash-looping,
/// marginal PSU) does not thrash the router with re-route/re-return
/// cycles. The wrapper rewrites only the health slice the inner policy
/// sees; with no failures it is an exact pass-through.
pub struct FailoverPolicy<P: RoutePolicy> {
    inner: P,
    recovery_epochs: u64,
    /// The health the inner policy is shown: real health, except that
    /// recovering machines stay down until their streak completes.
    effective: Vec<HealthState>,
    /// Consecutive epochs each machine has advertised up while the
    /// wrapper still holds it down.
    up_streak: Vec<u64>,
    /// Whether this epoch's health has been folded in already; health is
    /// constant within an epoch, so the fold must run exactly once.
    tracked_this_epoch: bool,
    holds: u64,
}

impl<P: RoutePolicy> std::fmt::Debug for FailoverPolicy<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverPolicy")
            .field("inner", &self.inner.name())
            .field("recovery_epochs", &self.recovery_epochs)
            .field("holds", &self.holds)
            .finish_non_exhaustive()
    }
}

impl<P: RoutePolicy> FailoverPolicy<P> {
    /// Wraps `inner`, requiring `recovery_epochs` consecutive up
    /// heartbeats before a recovered machine re-enters rotation.
    pub fn new(inner: P, recovery_epochs: u64) -> FailoverPolicy<P> {
        FailoverPolicy {
            inner,
            recovery_epochs,
            effective: Vec::new(),
            up_streak: Vec::new(),
            tracked_this_epoch: false,
            holds: 0,
        }
    }

    /// Times a recovered machine was held out of rotation for at least
    /// one epoch by the hysteresis.
    pub fn holds(&self) -> u64 {
        self.holds
    }

    /// Folds the advertised health into the effective health the inner
    /// policy will see, applying the recovery hysteresis. Runs at most
    /// once per epoch: the first `route` (or a route-less `end_epoch`)
    /// triggers it, `end_epoch` re-arms it.
    fn track(&mut self, health: &[HealthState]) {
        if self.tracked_this_epoch {
            return;
        }
        self.tracked_this_epoch = true;
        if self.effective.len() != health.len() {
            self.effective = health.to_vec();
            self.up_streak = vec![0; health.len()];
            return;
        }
        for (m, &observed) in health.iter().enumerate() {
            match observed {
                HealthState::Down => {
                    self.effective[m] = HealthState::Down;
                    self.up_streak[m] = 0;
                }
                state => {
                    if self.effective[m] == HealthState::Down {
                        // Recovering: count the streak before re-entry.
                        self.up_streak[m] += 1;
                        if self.up_streak[m] > self.recovery_epochs {
                            self.effective[m] = state;
                        } else if self.up_streak[m] == 1 {
                            self.holds += 1;
                        }
                    } else {
                        self.effective[m] = state;
                    }
                }
            }
        }
    }
}

impl<P: RoutePolicy> RoutePolicy for FailoverPolicy<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn route(&mut self, tenant: usize, view: &FleetView<'_>) -> usize {
        self.track(view.health);
        let masked = FleetView {
            backlog_cpu_s: view.backlog_cpu_s,
            temps_celsius: view.temps_celsius,
            tenant_demand_cpu_s: view.tenant_demand_cpu_s,
            health: &self.effective,
        };
        self.inner.route(tenant, &masked)
    }

    fn end_epoch(&mut self, view: &FleetView<'_>) {
        self.track(view.health);
        let masked = FleetView {
            backlog_cpu_s: view.backlog_cpu_s,
            temps_celsius: view.temps_celsius,
            tenant_demand_cpu_s: view.tenant_demand_cpu_s,
            health: &self.effective,
        };
        self.inner.end_epoch(&masked);
        self.tracked_this_epoch = false;
    }

    fn save_state(&self, enc: &mut dimetrodon_ckpt::Enc) {
        enc.seq_len(self.effective.len());
        for &state in &self.effective {
            enc.u8(state.encode_tag());
        }
        enc.u64_slice(&self.up_streak);
        enc.bool(self.tracked_this_epoch);
        enc.u64(self.holds);
        self.inner.save_state(enc);
    }

    fn restore_state(
        &mut self,
        dec: &mut dimetrodon_ckpt::Dec<'_>,
    ) -> Result<(), dimetrodon_ckpt::CkptError> {
        let machines = dec.seq_len()?;
        let mut effective = Vec::with_capacity(machines.min(1 << 20));
        for _ in 0..machines {
            effective.push(HealthState::from_tag(dec.u8()?)?);
        }
        let up_streak = dec.u64_vec()?;
        if up_streak.len() != effective.len() {
            return Err(dimetrodon_ckpt::CkptError::Malformed(format!(
                "failover wrapper with {} effective states but {} up-streaks",
                effective.len(),
                up_streak.len()
            )));
        }
        self.effective = effective;
        self.up_streak = up_streak;
        self.tracked_this_epoch = dec.bool()?;
        self.holds = dec.u64()?;
        self.inner.restore_state(dec)
    }
}

/// The policy variants the fleet experiment compares. A plain enum so
/// CSV rows, journal lines, and CLI flags all name the same set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`CoolestFirst`].
    CoolestFirst,
    /// [`PinnedMigrate`].
    PinnedMigrate,
}

impl PolicyKind {
    /// Every variant, in the order the comparison runs them.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::RoundRobin,
        PolicyKind::LeastLoaded,
        PolicyKind::CoolestFirst,
        PolicyKind::PinnedMigrate,
    ];

    /// Stable name, identical to the built policy's
    /// [`RoutePolicy::name`].
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::LeastLoaded => "least-loaded",
            PolicyKind::CoolestFirst => "coolest-first",
            PolicyKind::PinnedMigrate => "pinned-migrate",
        }
    }

    /// Parses a stable name back into the variant.
    pub fn parse(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|kind| kind.name() == name)
    }

    /// Builds a fresh policy instance for a run over `config`.
    pub fn build(self, config: &FleetConfig) -> Box<dyn RoutePolicy> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobin::default()),
            PolicyKind::LeastLoaded => Box::new(LeastLoaded),
            PolicyKind::CoolestFirst => Box::new(CoolestFirst),
            PolicyKind::PinnedMigrate => Box::new(PinnedMigrate::new(
                config.tenants,
                config.machines,
                config.migration_hysteresis_celsius,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_UP: [HealthState; 3] = [HealthState::Up; 3];

    fn view<'a>(
        backlog: &'a [f64],
        temps: &'a [f64],
        tenant_demand: &'a [f64],
    ) -> FleetView<'a> {
        FleetView {
            backlog_cpu_s: backlog,
            temps_celsius: temps,
            tenant_demand_cpu_s: tenant_demand,
            health: &ALL_UP[..backlog.len().min(ALL_UP.len())],
        }
    }

    fn view_with_health<'a>(
        backlog: &'a [f64],
        temps: &'a [f64],
        tenant_demand: &'a [f64],
        health: &'a [HealthState],
    ) -> FleetView<'a> {
        FleetView {
            backlog_cpu_s: backlog,
            temps_celsius: temps,
            tenant_demand_cpu_s: tenant_demand,
            health,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut policy = RoundRobin::default();
        let v = view(&[0.0; 3], &[0.0; 3], &[]);
        let picks: Vec<usize> = (0..7).map(|_| policy.route(0, &v)).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_picks_min_backlog_lowest_index_on_ties() {
        let mut policy = LeastLoaded;
        assert_eq!(policy.route(0, &view(&[2.0, 0.5, 0.5], &[0.0; 3], &[])), 1);
        assert_eq!(policy.route(0, &view(&[1.0, 1.0, 1.0], &[0.0; 3], &[])), 0);
    }

    #[test]
    fn coolest_first_picks_min_temperature() {
        let mut policy = CoolestFirst;
        assert_eq!(policy.route(0, &view(&[0.0; 3], &[44.0, 39.5, 41.0], &[])), 1);
    }

    #[test]
    fn pinned_migrate_moves_the_heaviest_tenant_off_the_hot_machine() {
        // 4 tenants over 2 machines: tenants 0,2 home on machine 0;
        // 1,3 on machine 1. Machine 0 runs hot; tenant 2 is heavier.
        let mut policy = PinnedMigrate::new(4, 2, 1.0);
        assert_eq!(policy.home_of(0), 0);
        assert_eq!(policy.home_of(2), 0);
        let demand = [1.0, 0.2, 5.0, 0.1];
        policy.end_epoch(&view(&[0.0; 2], &[50.0, 40.0], &demand));
        assert_eq!(policy.migrations(), 1);
        assert_eq!(policy.home_of(2), 1, "heaviest hot tenant moved to the coolest");
        assert_eq!(policy.home_of(0), 0, "lighter tenant stays");

        // Inside hysteresis: nothing moves.
        policy.end_epoch(&view(&[0.0; 2], &[40.4, 40.0], &demand));
        assert_eq!(policy.migrations(), 1);
    }

    #[test]
    fn every_policy_skips_machines_advertised_down() {
        let health = [HealthState::Up, HealthState::Down, HealthState::Up];
        let backlog = [5.0, 0.0, 9.0];
        let temps = [45.0, 20.0, 50.0];
        let v = view_with_health(&backlog, &temps, &[], &health);

        // The dead machine has both the least backlog and the coolest
        // (stale) temperature — exactly the trap argmin must not fall in.
        assert_eq!(LeastLoaded.route(0, &v), 0);
        assert_eq!(CoolestFirst.route(0, &v), 0);

        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..4).map(|_| rr.route(0, &v)).collect();
        assert_eq!(picks, [0, 2, 0, 2], "round robin cycles over survivors");
    }

    #[test]
    fn degraded_machines_stay_routable() {
        let health = [HealthState::Degraded, HealthState::Up, HealthState::Up];
        let backlog = [0.0, 3.0, 3.0];
        let v = view_with_health(&backlog, &[0.0; 3], &[], &health);
        assert_eq!(
            LeastLoaded.route(0, &v),
            0,
            "degraded is a trust signal, not an exclusion"
        );
    }

    #[test]
    fn pinned_migrate_fails_over_while_the_home_is_down_without_rehoming() {
        let mut policy = PinnedMigrate::new(2, 3, 10.0);
        assert_eq!(policy.home_of(1), 1);
        let health = [HealthState::Up, HealthState::Down, HealthState::Up];
        let v = view_with_health(&[0.0; 3], &[40.0; 3], &[0.0, 0.0], &health);
        assert_eq!(policy.route(1, &v), 2, "next routable machine after the home");
        assert_eq!(policy.home_of(1), 1, "affinity survives the outage");
        let recovered = view(&[0.0; 3], &[40.0; 3], &[0.0, 0.0]);
        assert_eq!(policy.route(1, &recovered), 1, "home resumes when back up");
    }

    #[test]
    fn failover_wrapper_holds_recovered_machines_for_the_hysteresis() {
        let mut policy = FailoverPolicy::new(LeastLoaded, 2);
        let backlog = [0.0, 5.0, 5.0];
        let down = [HealthState::Down, HealthState::Up, HealthState::Up];
        let up = ALL_UP;

        // Epoch 1: machine 0 down; wrapper must exclude it.
        let v = view_with_health(&backlog, &[0.0; 3], &[], &down);
        assert_eq!(policy.route(0, &v), 1);
        policy.end_epoch(&v);

        // Epochs 2–3: machine 0 advertises up again, but the wrapper
        // holds it down until the streak exceeds 2 epochs.
        for _ in 0..2 {
            let v = view_with_health(&backlog, &[0.0; 3], &[], &up);
            assert_eq!(policy.route(0, &v), 1, "held during the recovery streak");
            policy.end_epoch(&v);
        }
        assert_eq!(policy.holds(), 1, "one recovery event was held");

        // Epoch 4: streak complete, the machine re-enters rotation.
        let v = view_with_health(&backlog, &[0.0; 3], &[], &up);
        assert_eq!(policy.route(0, &v), 0);
    }

    #[test]
    fn failover_wrapper_is_a_pass_through_without_failures() {
        let mut wrapped = FailoverPolicy::new(RoundRobin::default(), 3);
        let mut bare = RoundRobin::default();
        let v = view(&[0.0; 3], &[0.0; 3], &[]);
        for _ in 0..7 {
            assert_eq!(wrapped.route(0, &v), bare.route(0, &v));
        }
        assert_eq!(wrapped.name(), "round-robin", "naming is transparent");
        assert_eq!(wrapped.holds(), 0);
    }

    #[test]
    fn kind_names_round_trip_and_match_built_policies() {
        let config = FleetConfig::rack_scale(4, 9);
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build(&config).name(), kind.name());
        }
        assert_eq!(PolicyKind::parse("nope"), None);
    }
}
