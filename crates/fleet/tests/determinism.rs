//! Fleet determinism contract: a fleet comparison is a pure function of
//! its [`FleetConfig`] — worker count, the harness snapshot cache, and
//! journal-based resume (including resume from a torn journal tail) must
//! all be invisible in the output, byte for byte.

use std::fs;
use std::io::Write as _;

use dimetrodon_fleet::{
    fleet_comparison_with, fleet_table, journal_path, FleetConfig, FleetJournal, PolicyKind,
};
use dimetrodon_harness::snapshot;
use dimetrodon_sim_core::SimDuration;

/// The suite's reference fleet: 64 machines (four racks), shortened to
/// 15 control epochs so the whole file runs in seconds.
fn suite_config() -> FleetConfig {
    let mut config = FleetConfig::rack_scale(64, 9001);
    config.duration = SimDuration::from_secs(15);
    config
}

/// The canonical serialization compared across every axis below.
fn comparison_csv(workers: usize, journal: Option<&FleetJournal>) -> String {
    let config = suite_config();
    let outcomes = fleet_comparison_with(workers, &config, journal);
    fleet_table(&outcomes).render_csv()
}

#[test]
fn worker_count_is_invisible_in_the_output() {
    let reference = comparison_csv(1, None);
    assert!(reference.contains("round-robin"), "sanity: CSV has rows");
    for workers in [2, 3, 7] {
        assert_eq!(
            comparison_csv(workers, None),
            reference,
            "fleet CSV must be bit-identical at {workers} workers"
        );
    }
}

#[test]
fn snapshot_cache_state_is_invisible_in_the_output() {
    // The cache toggle is process-global; run both arms back to back and
    // restore the entry state whatever it was.
    let was_enabled = snapshot::enabled();
    snapshot::set_enabled(true);
    let with_cache = comparison_csv(2, None);
    snapshot::set_enabled(false);
    let without_cache = comparison_csv(2, None);
    snapshot::set_enabled(was_enabled);
    assert_eq!(
        with_cache, without_cache,
        "fleet CSV must not depend on the snapshot cache"
    );
}

#[test]
fn resume_after_a_torn_tail_is_byte_identical() {
    let config = suite_config();
    let dir = std::env::temp_dir().join(format!(
        "fleet-determinism-{}-{:016x}",
        std::process::id(),
        config.fingerprint()
    ));
    fs::create_dir_all(&dir).expect("create journal dir");

    // Fresh run, journaling every variant as it completes.
    let journal = FleetJournal::open(&dir, config.fingerprint(), false);
    assert_eq!(journal.replayed_count(), 0, "fresh journal replays nothing");
    let reference = comparison_csv(1, Some(&journal));
    let journal_path = journal.path().to_path_buf();
    drop(journal);

    let full = fs::read_to_string(&journal_path).expect("read journal");
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(
        lines.len(),
        1 + PolicyKind::ALL.len(),
        "journal holds a header plus one line per policy"
    );

    // A mid-run SIGKILL leaves a prefix of whole lines plus, in the worst
    // case, a torn partial line. Reproduce exactly that shape: keep the
    // header and the first two variants, then append half of the third
    // line with no trailing newline.
    let torn = format!(
        "{}\n{}\n{}\n{}",
        lines[0],
        lines[1],
        lines[2],
        &lines[3][..lines[3].len() / 2]
    );
    fs::write(&journal_path, &torn).expect("write torn journal");

    let resumed = FleetJournal::open(&dir, config.fingerprint(), true);
    assert_eq!(
        resumed.replayed_count(),
        2,
        "the torn line must be rejected, the whole lines replayed"
    );
    let after_resume = comparison_csv(1, Some(&resumed));
    assert_eq!(
        after_resume, reference,
        "resume after a torn tail must reproduce the run byte for byte"
    );

    // The resumed run healed the journal: a second resume replays all
    // four variants and recomputes nothing.
    drop(resumed);
    let healed = FleetJournal::open(&dir, config.fingerprint(), true);
    assert_eq!(healed.replayed_count(), PolicyKind::ALL.len());
    assert_eq!(comparison_csv(3, Some(&healed)), reference);

    fs::remove_dir_all(&dir).expect("remove journal dir");
}

#[test]
fn a_journal_for_a_different_config_is_never_replayed() {
    let config = suite_config();
    let mut other = suite_config();
    other.seed ^= 1;
    assert_ne!(config.fingerprint(), other.fingerprint());

    let dir = std::env::temp_dir().join(format!(
        "fleet-determinism-xseed-{}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).expect("create journal dir");

    // Populate a journal for `other`, then open `config`'s journal in the
    // same directory: the fingerprinted filename keeps them apart.
    let other_journal = FleetJournal::open(&dir, other.fingerprint(), false);
    let outcomes = fleet_comparison_with(1, &other, Some(&other_journal));
    assert_eq!(outcomes.len(), PolicyKind::ALL.len());
    drop(other_journal);

    let mine = FleetJournal::open(&dir, config.fingerprint(), true);
    assert_eq!(mine.replayed_count(), 0, "a different config must not replay");
    drop(mine);

    // Garbage appended after valid lines is skipped without poisoning the
    // valid prefix.
    let path = journal_path(&dir, other.fingerprint());
    let mut file = fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open journal for append");
    writeln!(file, "variant not-a-number bogus").expect("append garbage");
    drop(file);
    let reopened = FleetJournal::open(&dir, other.fingerprint(), true);
    assert_eq!(reopened.replayed_count(), PolicyKind::ALL.len());

    fs::remove_dir_all(&dir).expect("remove journal dir");
}
