//! Chaos determinism contract: a chaos sweep is a pure function of its
//! [`ChaosGrid`] — worker count, the harness snapshot cache, and
//! journal-based resume (including resume from a torn journal tail, the
//! on-disk shape a mid-comparison SIGKILL leaves) must all be invisible
//! in the output, byte for byte, even while machines are crashing,
//! restarting cold, and being failed over around.

use std::fs;

use dimetrodon_faults::{FleetFaultKind, FleetFaultPlan, FleetTarget};
use dimetrodon_fleet::{
    chaos_comparison_with, chaos_journal_path, chaos_table, fleet_comparison_with, fleet_table,
    ChaosGrid, ChaosJournal, FleetConfig, FleetJournal, PolicyKind, RECOVERY_HYSTERESIS_EPOCHS,
};
use dimetrodon_harness::snapshot;
use dimetrodon_sim_core::{SimDuration, SimTime};

/// The suite's reference fleet: 64 machines (four racks), shortened to
/// 15 control epochs so the whole file runs in seconds.
fn suite_config() -> FleetConfig {
    let mut config = FleetConfig::rack_scale(64, 9001);
    config.duration = SimDuration::from_secs(15);
    config
}

/// The reference grid: the no-failure control plus full intensity, so
/// every point class (clean, crashing, CRAC-degraded, wedged) is
/// exercised across all four routing policies — eight points.
fn suite_grid() -> ChaosGrid {
    ChaosGrid::new(suite_config(), vec![0.0, 1.0])
}

/// The canonical serialization compared across every axis below.
fn chaos_csv(workers: usize, journal: Option<&ChaosJournal>) -> String {
    let outcomes = chaos_comparison_with(workers, &suite_grid(), journal);
    chaos_table(&outcomes).render_csv()
}

#[test]
fn worker_count_is_invisible_in_the_chaos_output() {
    let reference = chaos_csv(1, None);
    assert!(reference.contains("round-robin"), "sanity: CSV has rows");
    assert!(
        reference.lines().count() > PolicyKind::ALL.len(),
        "sanity: both intensities produced rows"
    );
    for workers in [2, 3, 7] {
        assert_eq!(
            chaos_csv(workers, None),
            reference,
            "chaos CSV must be bit-identical at {workers} workers"
        );
    }
}

#[test]
fn snapshot_cache_state_is_invisible_in_the_chaos_output() {
    // The cache toggle is process-global; run both arms back to back and
    // restore the entry state whatever it was.
    let was_enabled = snapshot::enabled();
    snapshot::set_enabled(true);
    let with_cache = chaos_csv(2, None);
    snapshot::set_enabled(false);
    let without_cache = chaos_csv(2, None);
    snapshot::set_enabled(was_enabled);
    assert_eq!(
        with_cache, without_cache,
        "chaos CSV must not depend on the snapshot cache"
    );
}

#[test]
fn chaos_resume_after_a_torn_tail_is_byte_identical() {
    let grid = suite_grid();
    let dir = std::env::temp_dir().join(format!(
        "chaos-determinism-{}-{:016x}",
        std::process::id(),
        grid.fingerprint()
    ));
    fs::create_dir_all(&dir).expect("create journal dir");

    // Fresh run, journaling every point as it completes.
    let journal = ChaosJournal::open(&dir, &grid, false);
    assert_eq!(journal.replayed_count(), 0, "fresh journal replays nothing");
    let reference = chaos_csv(1, Some(&journal));
    let path = journal.path().to_path_buf();
    drop(journal);

    let full = fs::read_to_string(&path).expect("read journal");
    let lines: Vec<&str> = full.lines().collect();
    let points = grid.points().len();
    assert_eq!(
        lines.len(),
        1 + points,
        "journal holds a header plus one line per grid point"
    );

    // A mid-run SIGKILL leaves a prefix of whole lines plus, in the
    // worst case, a torn partial line. Reproduce exactly that shape:
    // keep the header and the first three points, then append half of
    // the fourth line with no trailing newline.
    let torn = format!(
        "{}\n{}\n{}\n{}\n{}",
        lines[0],
        lines[1],
        lines[2],
        lines[3],
        &lines[4][..lines[4].len() / 2]
    );
    fs::write(&path, &torn).expect("write torn journal");

    let resumed = ChaosJournal::open(&dir, &grid, true);
    assert_eq!(
        resumed.replayed_count(),
        3,
        "the torn line must be rejected, the whole lines replayed"
    );
    let after_resume = chaos_csv(1, Some(&resumed));
    assert_eq!(
        after_resume, reference,
        "resume after a torn tail must reproduce the sweep byte for byte"
    );

    // The resumed run healed the journal: a second resume replays every
    // point and recomputes nothing.
    drop(resumed);
    let healed = ChaosJournal::open(&dir, &grid, true);
    assert_eq!(healed.replayed_count(), points);
    assert_eq!(chaos_csv(3, Some(&healed)), reference);

    fs::remove_dir_all(&dir).expect("remove journal dir");
}

#[test]
fn a_chaos_journal_for_a_different_grid_is_never_replayed() {
    let grid = suite_grid();
    let other = ChaosGrid::new(suite_config(), vec![0.0, 0.5]);
    assert_ne!(grid.fingerprint(), other.fingerprint());
    let dir = std::env::temp_dir().join(format!(
        "chaos-determinism-xgrid-{}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).expect("create journal dir");
    assert_ne!(
        chaos_journal_path(&dir, grid.fingerprint()),
        chaos_journal_path(&dir, other.fingerprint()),
        "fingerprinted filenames keep grids apart"
    );

    let other_journal = ChaosJournal::open(&dir, &other, false);
    let outcomes = chaos_comparison_with(2, &other, Some(&other_journal));
    assert_eq!(outcomes.len(), other.points().len());
    drop(other_journal);

    let mine = ChaosJournal::open(&dir, &grid, true);
    assert_eq!(mine.replayed_count(), 0, "a different grid must not replay");

    fs::remove_dir_all(&dir).expect("remove journal dir");
}

/// The *standard* fleet comparison with a non-empty chaos plan in its
/// config journals under a chaos-aware fingerprint and resumes byte for
/// byte — crashing machines do not weaken the resume contract of the
/// pre-existing journal format.
#[test]
fn planned_chaos_comparison_resumes_byte_identically() {
    let mut config = suite_config();
    config.chaos = FleetFaultPlan::new()
        .with(
            SimTime::ZERO + SimDuration::from_secs(3),
            FleetTarget::Machine(5),
            FleetFaultKind::Crash,
            Some(SimDuration::from_secs(4)),
        )
        .with(
            SimTime::ZERO + SimDuration::from_secs(6),
            FleetTarget::Rack(1),
            FleetFaultKind::Crac { recirc_scale: 2.0, inlet_delta_celsius: 3.0 },
            Some(SimDuration::from_secs(5)),
        );
    assert_ne!(
        config.fingerprint(),
        suite_config().fingerprint(),
        "a scheduled plan must move the fingerprint"
    );
    const { assert!(RECOVERY_HYSTERESIS_EPOCHS > 0, "sanity: hysteresis configured") };

    let dir = std::env::temp_dir().join(format!(
        "chaos-determinism-plan-{}-{:016x}",
        std::process::id(),
        config.fingerprint()
    ));
    fs::create_dir_all(&dir).expect("create journal dir");

    let journal = FleetJournal::open(&dir, config.fingerprint(), false);
    let reference = fleet_table(&fleet_comparison_with(1, &config, Some(&journal))).render_csv();
    let path = journal.path().to_path_buf();
    drop(journal);

    // Kill shape again: whole-line prefix plus a torn tail.
    let full = fs::read_to_string(&path).expect("read journal");
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), 1 + PolicyKind::ALL.len());
    let torn = format!("{}\n{}\n{}", lines[0], lines[1], &lines[2][..lines[2].len() / 2]);
    fs::write(&path, &torn).expect("write torn journal");

    let resumed = FleetJournal::open(&dir, config.fingerprint(), true);
    assert_eq!(resumed.replayed_count(), 1);
    let after = fleet_table(&fleet_comparison_with(3, &config, Some(&resumed))).render_csv();
    assert_eq!(after, reference, "chaos-planned comparison must resume byte for byte");

    fs::remove_dir_all(&dir).expect("remove journal dir");
}
