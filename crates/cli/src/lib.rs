//! Library behind the `dimetrodon-sim` CLI: argument parsing
//! ([`Options`]) and scenario execution ([`run_scenario`] → [`Report`]).
//!
//! Split from the binary so the parsing and the scenario runner are unit-
//! and property-testable.
//!
//! # Examples
//!
//! ```
//! use dimetrodon_cli::Options;
//!
//! let options = Options::parse(["--workload", "astar", "--p", "0.25"])?;
//! assert_eq!(options.p, Some(0.25));
//! # Ok::<(), dimetrodon_cli::ParseArgsError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod args;
mod fleet;
mod report;

pub use args::{Options, ParseArgsError, SchedulerChoice, WorkloadChoice, USAGE};
pub use fleet::{compared_policies, fleet_checkpoint_spec, fleet_config, run_fleet_scenario};
pub use report::{run_scenario, supervisor_config, Report, ScenarioError};
