//! The `--fleet` path: run the cluster comparison from the CLI.

use dimetrodon_faults::FleetFaultPlan;
use dimetrodon_fleet::{
    fleet_comparison_checkpointed, fleet_table, run_fleet, run_fleet_checkpointed, ChaosMetrics,
    CheckpointSpec, Fleet, FleetConfig, FleetOutcome, PolicyKind,
};

use crate::args::Options;
use crate::report::ScenarioError;

/// Builds the fleet configuration a `--fleet` run uses: the rack-scale
/// preset at the requested machine count, with the CLI's duration, seed,
/// and (when `--chaos-plan` is passed) fleet fault plan applied.
///
/// # Errors
///
/// Returns [`ScenarioError::Chaos`] when the chaos-plan file is missing,
/// malformed, or names machines/racks outside the fleet.
pub fn fleet_config(options: &Options) -> Result<FleetConfig, ScenarioError> {
    let machines = options
        .fleet
        .expect("fleet_config is only called for --fleet runs");
    let mut config = FleetConfig::rack_scale(machines, options.seed);
    config.duration = options.duration;
    if let Some(path) = options.chaos_plan_path.as_deref() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Chaos(format!("read {path}: {e}")))?;
        let plan: FleetFaultPlan = text
            .parse()
            .map_err(|e| ScenarioError::Chaos(format!("{path}: {e}")))?;
        if let Some(m) = plan.max_machine() {
            if m >= config.machines {
                return Err(ScenarioError::Chaos(format!(
                    "{path}: machine {m} is outside the {}-machine fleet",
                    config.machines
                )));
            }
        }
        if let Some(r) = plan.max_rack() {
            if r >= config.racks() {
                return Err(ScenarioError::Chaos(format!(
                    "{path}: rack {r} is outside the {}-rack fleet",
                    config.racks()
                )));
            }
        }
        config.chaos = plan;
    }
    Ok(config)
}

/// The durable-checkpoint spec a `--fleet` run uses, or `None` when
/// checkpointing is off. The CLI checkpoints only on request —
/// `--checkpoint-every` or `--restore` turns it on, `--no-checkpoint`
/// forces it off — so plain scenario invocations leave no state behind.
pub fn fleet_checkpoint_spec(options: &Options) -> Option<CheckpointSpec> {
    if options.no_checkpoint || (options.checkpoint_every.is_none() && !options.restore) {
        return None;
    }
    let mut spec = CheckpointSpec::new(std::path::Path::new("results/.ckpt"));
    if let Some(every) = options.checkpoint_every {
        spec.every_epochs = every;
    }
    spec.restore = options.restore;
    Some(spec)
}

/// One availability summary line for a policy's chaos run.
fn chaos_line(name: &str, metrics: &ChaosMetrics) -> String {
    let ttr = if metrics.recoveries > 0 {
        format!(
            ", recovered {}x (mean {:.0} s, max {:.0} s)",
            metrics.recoveries,
            metrics.recovery_mean_s.unwrap_or(0.0),
            metrics.recovery_max_s.unwrap_or(0.0)
        )
    } else {
        String::new()
    };
    format!(
        "  {name}: shed {:.2}% ({}/{} requests), capacity mean {:.3} min {:.3}, \
         {} degraded epoch(s){ttr}",
        100.0 * metrics.shed_fraction,
        metrics.shed_requests,
        metrics.arrived_requests,
        metrics.capacity_mean,
        metrics.capacity_min,
        metrics.degraded_epochs,
    )
}

/// Runs the fleet comparison (or a single `--fleet-policy` variant) and
/// renders the per-rack table plus a one-line summary; chaos runs append
/// an availability block per policy.
///
/// # Errors
///
/// Returns [`ScenarioError::Chaos`] when `--chaos-plan` names an
/// unreadable or invalid plan, and [`ScenarioError::Checkpoint`] when
/// `--restore` finds checkpoint files but none verifies.
pub fn run_fleet_scenario(options: &Options) -> Result<String, ScenarioError> {
    let config = fleet_config(options)?;
    let kinds: Vec<PolicyKind> = match options.fleet_policy {
        Some(kind) => vec![kind],
        None => PolicyKind::ALL.to_vec(),
    };
    let mut chaos_lines = Vec::new();
    let outcomes: Vec<FleetOutcome> = if config.chaos.is_empty() {
        // Chaos runs never checkpoint: their availability metrics live
        // outside the fleet state the checkpoint captures.
        let spec = fleet_checkpoint_spec(options);
        match options.fleet_policy {
            Some(kind) => {
                let mut policy = kind.build(&config);
                let reports = match spec.as_ref() {
                    Some(spec) => run_fleet_checkpointed(&config, policy.as_mut(), spec)
                        .map_err(|e| ScenarioError::Checkpoint(e.to_string()))?,
                    None => run_fleet(&config, policy.as_mut()),
                };
                vec![FleetOutcome {
                    policy: kind,
                    reports,
                    replayed: false,
                }]
            }
            None => fleet_comparison_checkpointed(
                dimetrodon_harness::sweep::jobs(),
                &config,
                None,
                spec.as_ref(),
            )
            .map_err(|e| ScenarioError::Checkpoint(e.to_string()))?,
        }
    } else {
        // Chaos runs drive the fleet directly so the availability metrics
        // are in hand when the table is rendered.
        kinds
            .iter()
            .map(|&kind| {
                let mut policy = kind.build(&config);
                let mut fleet = Fleet::new(config.clone());
                fleet.run(policy.as_mut());
                // A non-empty plan implies collection, so the metrics
                // are always present.
                let metrics = fleet.chaos_metrics().expect("chaos plan implies metrics");
                chaos_lines.push(chaos_line(kind.name(), &metrics));
                FleetOutcome {
                    policy: kind,
                    reports: fleet.reports(),
                    replayed: false,
                }
            })
            .collect()
    };
    let mut rendered = fleet_table(&outcomes).render();
    let trips: u64 = outcomes
        .iter()
        .flat_map(|o| o.reports.iter().map(|r| r.trips))
        .sum();
    let peak = outcomes
        .iter()
        .flat_map(|o| o.reports.iter().map(|r| r.peak_celsius))
        .fold(f64::NEG_INFINITY, f64::max);
    rendered.push_str(&format!(
        "\n{} machines in {} racks over {} epochs; fleet peak {:.2} C, {} trip(s).\n",
        config.machines,
        config.racks(),
        config.epochs(),
        peak,
        trips,
    ));
    if !chaos_lines.is_empty() {
        rendered.push_str(&format!(
            "availability under chaos ({} event(s), on-crash {}):\n",
            config.chaos.events().len(),
            config.chaos.on_crash().name(),
        ));
        for line in &chaos_lines {
            rendered.push_str(line);
            rendered.push('\n');
        }
    }
    Ok(rendered)
}

/// The policy set a `--fleet` run compares (for the report header).
pub fn compared_policies(options: &Options) -> Vec<&'static str> {
    match options.fleet_policy {
        Some(kind) => vec![kind.name()],
        None => PolicyKind::ALL.map(PolicyKind::name).to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimetrodon_sim_core::SimDuration;

    fn fleet_options(extra: &[&str]) -> Options {
        let mut args = vec!["--fleet", "4", "--duration-secs", "5"];
        args.extend_from_slice(extra);
        Options::parse(args).expect("valid fleet options")
    }

    fn scratch_plan(name: &str, text: &str) -> String {
        let dir = std::env::temp_dir().join("dimetrodon_cli_chaos");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn config_honours_duration_seed_and_count() {
        let options = fleet_options(&["--seed", "77"]);
        let config = fleet_config(&options).unwrap();
        assert_eq!(config.machines, 4);
        assert_eq!(config.seed, 77);
        assert_eq!(config.duration, SimDuration::from_secs(5));
        assert!(config.chaos.is_empty());
    }

    #[test]
    fn single_policy_run_renders_one_policy() {
        let options = fleet_options(&["--fleet-policy", "coolest-first"]);
        assert_eq!(compared_policies(&options), ["coolest-first"]);
        let rendered = run_fleet_scenario(&options).unwrap();
        assert!(rendered.contains("coolest-first"));
        assert!(!rendered.contains("round-robin"));
        assert!(rendered.contains("4 machines in 1 racks"));
        assert!(!rendered.contains("availability under chaos"));
    }

    #[test]
    fn comparison_run_renders_every_policy() {
        let options = fleet_options(&[]);
        let rendered = run_fleet_scenario(&options).unwrap();
        for name in compared_policies(&options) {
            assert!(rendered.contains(name), "{name} missing from report");
        }
    }

    #[test]
    fn chaos_plan_adds_the_availability_block() {
        let path = scratch_plan("crash.plan", "at 1s machine 0 crash for 2s\n");
        let options = fleet_options(&["--chaos-plan", &path]);
        let config = fleet_config(&options).unwrap();
        assert_eq!(config.chaos.events().len(), 1);
        let rendered = run_fleet_scenario(&options).unwrap();
        assert!(rendered.contains("availability under chaos (1 event(s)"));
        for name in compared_policies(&options) {
            assert!(
                rendered.contains(&format!("  {name}: shed")),
                "{name} missing an availability line"
            );
        }
    }

    #[test]
    fn bad_chaos_plans_error_cleanly() {
        let options = fleet_options(&["--chaos-plan", "/definitely/not/here.plan"]);
        assert!(matches!(
            fleet_config(&options),
            Err(ScenarioError::Chaos(_))
        ));

        let malformed = scratch_plan("bad.plan", "at 1s machine 0 explode\n");
        let options = fleet_options(&["--chaos-plan", &malformed]);
        assert!(matches!(
            fleet_config(&options),
            Err(ScenarioError::Chaos(_))
        ));

        let out_of_range = scratch_plan("far.plan", "at 1s machine 99 crash\n");
        let options = fleet_options(&["--chaos-plan", &out_of_range]);
        let err = fleet_config(&options).unwrap_err();
        assert!(err.to_string().contains("outside"), "got: {err}");
    }
}
