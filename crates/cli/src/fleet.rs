//! The `--fleet` path: run the cluster comparison from the CLI.

use dimetrodon_fleet::{
    fleet_comparison, fleet_table, run_fleet, FleetConfig, FleetOutcome, PolicyKind,
};

use crate::args::Options;

/// Builds the fleet configuration a `--fleet` run uses: the rack-scale
/// preset at the requested machine count, with the CLI's duration and
/// seed applied.
pub fn fleet_config(options: &Options) -> FleetConfig {
    let machines = options
        .fleet
        .expect("fleet_config is only called for --fleet runs");
    let mut config = FleetConfig::rack_scale(machines, options.seed);
    config.duration = options.duration;
    config
}

/// Runs the fleet comparison (or a single `--fleet-policy` variant) and
/// renders the per-rack table plus a one-line summary.
pub fn run_fleet_scenario(options: &Options) -> String {
    let config = fleet_config(options);
    let outcomes: Vec<FleetOutcome> = match options.fleet_policy {
        Some(kind) => {
            let mut policy = kind.build(&config);
            vec![FleetOutcome {
                policy: kind,
                reports: run_fleet(&config, policy.as_mut()),
                replayed: false,
            }]
        }
        None => fleet_comparison(&config, None),
    };
    let mut rendered = fleet_table(&outcomes).render();
    let trips: u64 = outcomes
        .iter()
        .flat_map(|o| o.reports.iter().map(|r| r.trips))
        .sum();
    let peak = outcomes
        .iter()
        .flat_map(|o| o.reports.iter().map(|r| r.peak_celsius))
        .fold(f64::NEG_INFINITY, f64::max);
    rendered.push_str(&format!(
        "\n{} machines in {} racks over {} epochs; fleet peak {:.2} C, {} trip(s).\n",
        config.machines,
        config.racks(),
        config.epochs(),
        peak,
        trips,
    ));
    rendered
}

/// The policy set a `--fleet` run compares (for the report header).
pub fn compared_policies(options: &Options) -> Vec<&'static str> {
    match options.fleet_policy {
        Some(kind) => vec![kind.name()],
        None => PolicyKind::ALL.map(PolicyKind::name).to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimetrodon_sim_core::SimDuration;

    fn fleet_options(extra: &[&str]) -> Options {
        let mut args = vec!["--fleet", "4", "--duration-secs", "5"];
        args.extend_from_slice(extra);
        Options::parse(args).expect("valid fleet options")
    }

    #[test]
    fn config_honours_duration_seed_and_count() {
        let options = fleet_options(&["--seed", "77"]);
        let config = fleet_config(&options);
        assert_eq!(config.machines, 4);
        assert_eq!(config.seed, 77);
        assert_eq!(config.duration, SimDuration::from_secs(5));
    }

    #[test]
    fn single_policy_run_renders_one_policy() {
        let options = fleet_options(&["--fleet-policy", "coolest-first"]);
        assert_eq!(compared_policies(&options), ["coolest-first"]);
        let rendered = run_fleet_scenario(&options);
        assert!(rendered.contains("coolest-first"));
        assert!(!rendered.contains("round-robin"));
        assert!(rendered.contains("4 machines in 1 racks"));
    }

    #[test]
    fn comparison_run_renders_every_policy() {
        let options = fleet_options(&[]);
        let rendered = run_fleet_scenario(&options);
        for name in compared_policies(&options) {
            assert!(rendered.contains(name), "{name} missing from report");
        }
    }
}
