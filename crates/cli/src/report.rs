//! Scenario execution and the end-of-run report.

use dimetrodon::{
    DimetrodonHook, InjectionModel, InjectionParams, PolicyHandle, SetpointController,
    SmtCoScheduler, TelemetryFilter,
};
use dimetrodon_analysis::Table;
use dimetrodon_faults::{FaultPlan, FaultyHook, FaultyTelemetry, SensorSpec};
use dimetrodon_machine::{CoreId, Machine, MachineConfig, MachineError, ThermalTrip};
use dimetrodon_sched::{
    BsdScheduler, SchedConfig, SchedHook, Scheduler, System, ThreadId, ThreadKind, UleScheduler,
};
use dimetrodon_sim_core::{SimRng, SimTime};
use dimetrodon_workload::{
    spawn_web_workload, CpuBurn, CycleCounter, PeriodicBurn, QosHandle, SpecBenchmark, WebConfig,
    WorkloadProfile,
};

use crate::args::{Options, SchedulerChoice, WorkloadChoice};

/// What a scenario run produced, ready for printing.
#[derive(Debug)]
pub struct Report {
    /// The options that produced it.
    pub options: Options,
    /// Idle temperature of the configured machine, °C.
    pub idle_temp: f64,
    /// Observed (dispatch-sampled sensor) temperature over the final
    /// fifth of the run, °C.
    pub observed_temp: f64,
    /// Physical mean die temperature over the same window, °C.
    pub physical_temp: f64,
    /// Total CPU time executed across threads, seconds.
    pub cpu_executed: f64,
    /// Total idle quanta injected.
    pub injected_idles: u64,
    /// Final package power, W.
    pub package_power: f64,
    /// Total energy drawn, J.
    pub energy_joules: f64,
    /// Times the reactive thermal trip latched (`--trip` runs).
    pub trips: u64,
    /// Telemetry reads lost to sensor faults (`--faults`/`--sensor-noise`
    /// runs).
    pub dropped_reads: u64,
    /// Web QoS statistics, when the web workload ran.
    pub qos: Option<dimetrodon_workload::QosStats>,
    /// Cool-process completed cycles, when the mix ran.
    pub cool_cycles: Option<u64>,
    /// Rendered decision trace, when `--trace` was requested.
    pub trace_dump: Option<String>,
}

/// Errors running a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// The machine configuration was invalid.
    Machine(MachineError),
    /// `--workload profile` was selected without a readable, valid
    /// profile.
    Profile(String),
    /// `--faults` was passed without a readable, valid fault plan.
    Faults(String),
    /// `--chaos-plan` was passed without a readable, valid fleet fault
    /// plan (or one that names machines/racks outside the fleet).
    Chaos(String),
    /// `--restore` found checkpoint files but none verified, or replay
    /// validation caught state divergence; the wrapped message is the
    /// typed [`CkptError`](dimetrodon_ckpt::CkptError) rendering.
    Checkpoint(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Machine(e) => write!(f, "{e}"),
            ScenarioError::Profile(reason) => write!(f, "profile: {reason}"),
            ScenarioError::Faults(reason) => write!(f, "faults: {reason}"),
            ScenarioError::Chaos(reason) => write!(f, "chaos plan: {reason}"),
            ScenarioError::Checkpoint(reason) => write!(f, "checkpoint: {reason}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<MachineError> for ScenarioError {
    fn from(e: MachineError) -> Self {
        ScenarioError::Machine(e)
    }
}

/// Runs the scenario described by `options`.
///
/// # Errors
///
/// Returns a [`ScenarioError`] if the machine configuration is invalid
/// (not reachable through the CLI's own flags), the profile file is
/// missing or malformed, or `--restore` finds checkpoint files but none
/// verifies.
pub fn run_scenario(options: &Options) -> Result<Report, ScenarioError> {
    let mut machine_config = if options.smt {
        MachineConfig::xeon_e5520_smt()
    } else {
        MachineConfig::xeon_e5520()
    };
    if let Some(critical) = options.trip {
        machine_config.thermal_trip = Some(ThermalTrip::prochot_at(critical));
    }
    let mut machine = Machine::new(machine_config)?;
    machine.settle_idle();
    let idle_temp = machine.idle_temperature();
    let cpus = machine.num_cores();

    let scheduler: Box<dyn Scheduler> = match options.scheduler {
        SchedulerChoice::Bsd => Box::new(BsdScheduler::new()),
        SchedulerChoice::Ule => Box::new(UleScheduler::new(cpus)),
    };
    let sched_config = SchedConfig {
        thermal_aware_placement: options.placement,
        ..SchedConfig::default()
    };

    let policy = PolicyHandle::new();
    if let Some(p) = options.p {
        if p > 0.0 {
            policy.set_global(Some(InjectionParams::new(p, options.quantum)));
        }
    }
    let model = if options.deterministic {
        InjectionModel::Deterministic
    } else {
        InjectionModel::Probabilistic
    };
    let plan = match options.faults_path.as_deref() {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ScenarioError::Faults(format!("read {path}: {e}")))?;
            text.parse::<FaultPlan>()
                .map_err(|e| ScenarioError::Faults(format!("{path}: {e}")))?
        }
        None => FaultPlan::new(),
    };
    let faults_requested = options.faults_path.is_some() || options.sensor_noise.is_some();

    let base_hook = DimetrodonHook::with_model(policy.clone(), model, options.seed);
    let mut hook: Box<dyn SchedHook> = match (options.setpoint, options.smt) {
        (Some(setpoint), _) => {
            let mut controller =
                SetpointController::new(base_hook, setpoint, options.quantum);
            if faults_requested {
                // Degraded telemetry: per-core DTS reads (noisy,
                // droppable) instead of the exact die mean, conditioned
                // by the hardened filter.
                let spec = SensorSpec {
                    noise_sigma: options
                        .sensor_noise
                        .unwrap_or(SensorSpec::dts().noise_sigma),
                    ..SensorSpec::dts()
                };
                controller = controller
                    .with_telemetry(Box::new(FaultyTelemetry::new(
                        spec,
                        plan.clone(),
                        options.seed ^ 0x5E45,
                    )))
                    .with_filter(TelemetryFilter::hardened());
            }
            Box::new(controller)
        }
        (None, true) => Box::new(SmtCoScheduler::new(base_hook)),
        (None, false) => Box::new(base_hook),
    };
    if plan.has_scheduler_faults() {
        hook = Box::new(FaultyHook::new(hook, plan, options.seed ^ 0xFA17));
    }

    let mut system = System::with_parts(machine, scheduler, hook, sched_config);
    if let Some(capacity) = options.trace {
        system.enable_trace(capacity);
    }

    let mut qos: Option<QosHandle> = None;
    let mut cool: Option<CycleCounter> = None;
    let ids: Vec<ThreadId> = match options.workload {
        WorkloadChoice::CpuBurn => (0..cpus)
            .map(|_| system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite())))
            .collect(),
        WorkloadChoice::Spec(bench) => (0..cpus)
            .map(|_| system.spawn(ThreadKind::User, Box::new(bench.body())))
            .collect(),
        WorkloadChoice::Web => {
            let mut rng = SimRng::new(options.seed ^ 0x3EB);
            let (ids, handle) = spawn_web_workload(&mut system, WebConfig::paper_setup(), &mut rng);
            qos = Some(handle);
            ids
        }
        WorkloadChoice::Profile => {
            let path = options
                .profile_path
                .as_deref()
                .ok_or_else(|| ScenarioError::Profile("--profile <file> required".into()))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| ScenarioError::Profile(format!("read {path}: {e}")))?;
            let profile: WorkloadProfile = text
                .parse()
                .map_err(|e| ScenarioError::Profile(format!("{path}: {e}")))?;
            (0..cpus)
                .map(|_| system.spawn(ThreadKind::User, Box::new(profile.looped())))
                .collect()
        }
        WorkloadChoice::Mix => {
            let mut ids: Vec<ThreadId> = (0..4)
                .map(|_| {
                    system.spawn(
                        ThreadKind::User,
                        Box::new(SpecBenchmark::Calculix.body()),
                    )
                })
                .collect();
            let (body, counter) = PeriodicBurn::paper_cool_process();
            ids.push(system.spawn(ThreadKind::User, Box::new(body)));
            cool = Some(counter);
            ids
        }
    };

    let end = SimTime::ZERO + options.duration;
    match scenario_checkpoint_spec(options) {
        Some(spec) => {
            let report = dimetrodon_harness::ckpt::run_until_checkpointed(
                &mut system,
                end,
                scenario_key(options),
                "cli",
                &spec,
            )
            .map_err(|e| ScenarioError::Checkpoint(e.to_string()))?;
            if report.verified_events > 0 {
                eprintln!(
                    "[restore: verified {} replayed event(s) against the checkpoint]",
                    report.verified_events
                );
            }
        }
        None => system.run_until(end),
    }

    let window_start = SimTime::ZERO + options.duration.mul_f64(0.8);
    let observed_temp = system
        .observed_temp_over(window_start)
        .unwrap_or_else(|| system.machine().mean_sensor_temperature());
    let physical_temp = system
        .mean_temp_series()
        .mean_over(window_start)
        .expect("temperature sampled");
    let cpu_executed = ids
        .iter()
        .map(|&id| system.thread_stats(id).cpu_executed.as_secs_f64())
        .sum();

    let trace_dump = system.trace().map(|t| t.render());
    Ok(Report {
        options: options.clone(),
        trace_dump,
        idle_temp,
        observed_temp,
        physical_temp,
        cpu_executed,
        trips: system.machine().trip_count(),
        dropped_reads: telemetry_losses(system.hook()),
        injected_idles: system.total_injected_idles(),
        package_power: system.machine().package_power(),
        energy_joules: system.machine().energy().joules(),
        qos: qos.map(|h| h.snapshot()),
        cool_cycles: cool.map(|c| c.completed()),
    })
}

/// The durable-checkpoint spec a scenario run uses, or `None` when
/// checkpointing is off. Mirrors the `--fleet` rule: checkpointing is
/// opt-in (`--checkpoint-every` / `--restore`) so plain CLI runs write
/// nothing under `results/.ckpt/`.
fn scenario_checkpoint_spec(
    options: &Options,
) -> Option<dimetrodon_harness::ckpt::RunCheckpointSpec> {
    if options.no_checkpoint || (options.checkpoint_every.is_none() && !options.restore) {
        return None;
    }
    let mut spec = dimetrodon_harness::ckpt::RunCheckpointSpec::new("results/.ckpt".into());
    if let Some(every) = options.checkpoint_every {
        spec.every_events = every;
    }
    spec.restore = options.restore;
    Some(spec)
}

/// The checkpoint fingerprint of a scenario: a hash over every option
/// that shapes the simulated event stream (workload, actuation,
/// scheduler, faults, seed, duration — not runtime knobs like `--jobs`).
/// A checkpoint written under one scenario is invisible to any other.
fn scenario_key(options: &Options) -> u64 {
    let determinants = format!(
        "{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{}",
        options.workload,
        options.p,
        options.quantum,
        options.deterministic,
        options.setpoint,
        options.duration,
        options.scheduler,
        options.smt,
        options.placement,
        options.profile_path,
        options.faults_path,
        options.sensor_noise,
        options.trip,
        options.seed,
    );
    dimetrodon_ckpt::fnv1a64(determinants.as_bytes())
}

/// Telemetry reads lost by the installed controller, if one is present
/// (directly or behind a [`FaultyHook`] wrapper).
fn telemetry_losses(hook: &dyn SchedHook) -> u64 {
    let Some(any) = hook.as_any() else { return 0 };
    if let Some(controller) = any.downcast_ref::<SetpointController>() {
        return controller.telemetry().dropped_reads();
    }
    if let Some(faulty) = any.downcast_ref::<FaultyHook>() {
        return faulty
            .inner()
            .as_any()
            .and_then(|inner| inner.downcast_ref::<SetpointController>())
            .map_or(0, |controller| controller.telemetry().dropped_reads());
    }
    0
}

/// Builds the sweep-supervisor configuration the CLI installs from its
/// flags: `--strict`, `--retries`, `--point-deadline`. Scenario runs are
/// single points, so the CLI neither journals nor resumes; the flags
/// give sweep-shaped code reached from the CLI the same supervision
/// switchboard as the bench binaries.
pub fn supervisor_config(options: &Options) -> dimetrodon_harness::supervise::SupervisorConfig {
    use dimetrodon_harness::supervise::{PanicPolicy, SupervisorConfig};
    SupervisorConfig {
        policy: if options.strict {
            PanicPolicy::Strict
        } else {
            PanicPolicy::Quarantine
        },
        point_deadline: options
            .point_deadline
            .map(std::time::Duration::from_secs_f64),
        sweep_budget: None,
        retries: options.retries,
        journal_dir: None,
        resume: false,
        backoff: true,
    }
}

impl Report {
    /// Renders the report as an aligned table plus workload-specific
    /// lines.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec!["metric", "value"]);
        let secs = self.options.duration.as_secs_f64();
        let mut row = |metric: &str, value: String| {
            table.row(vec![metric.to_string(), value]);
        };
        row("idle temperature", format!("{:.1} C", self.idle_temp));
        row(
            "observed temperature (tail)",
            format!("{:.1} C (+{:.1} over idle)", self.observed_temp, self.observed_temp - self.idle_temp),
        );
        row(
            "physical mean die temperature (tail)",
            format!("{:.1} C", self.physical_temp),
        );
        row(
            "CPU executed",
            format!("{:.1} s over {secs:.0} s", self.cpu_executed),
        );
        row("idle quanta injected", format!("{}", self.injected_idles));
        row("package power (final)", format!("{:.1} W", self.package_power));
        row("energy", format!("{:.0} J", self.energy_joules));
        if self.options.trip.is_some() {
            row("thermal trips", format!("{}", self.trips));
        }
        if self.options.faults_path.is_some() || self.options.sensor_noise.is_some() {
            row("sensor reads dropped", format!("{}", self.dropped_reads));
        }
        if self.options.strict || self.options.retries > 0 || self.options.point_deadline.is_some()
        {
            let mut supervision = String::from(if self.options.strict {
                "strict"
            } else {
                "quarantine"
            });
            if self.options.retries > 0 {
                supervision.push_str(&format!(", retries {}", self.options.retries));
            }
            if let Some(deadline) = self.options.point_deadline {
                supervision.push_str(&format!(", point deadline {deadline} s"));
            }
            row("sweep supervision", supervision);
        }
        let mut out = table.render();
        if let Some(qos) = &self.qos {
            out.push_str(&format!(
                "web: {} requests, {:.1}% good, {:.1}% tolerable, mean latency {:.2} s\n",
                qos.total(),
                qos.good_fraction() * 100.0,
                qos.tolerable_fraction() * 100.0,
                qos.mean_latency().unwrap_or(0.0),
            ));
        }
        if let Some(cycles) = self.cool_cycles {
            out.push_str(&format!("mix: cool process completed {cycles} cycles\n"));
        }
        if let Some(trace) = &self.trace_dump {
            out.push_str("\nlast scheduling decisions:\n");
            out.push_str(trace);
        }
        out
    }

    /// Per-core final coretemp line (diagnostic).
    pub fn coretemp_line(system: &System) -> String {
        let temps: Vec<String> = (0..system.machine().num_physical_cores())
            .map(|i| format!("cpu{i}={}C", system.machine().coretemp(CoreId(i))))
            .collect();
        temps.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimetrodon_sim_core::SimDuration;

    fn quick_options(workload: WorkloadChoice) -> Options {
        Options {
            workload,
            duration: SimDuration::from_secs(20),
            ..Options::default()
        }
    }

    #[test]
    fn cpuburn_scenario_runs() {
        let mut options = quick_options(WorkloadChoice::CpuBurn);
        options.p = Some(0.5);
        let report = run_scenario(&options).unwrap();
        assert!(report.injected_idles > 0);
        assert!(report.observed_temp > report.idle_temp);
        assert!(report.cpu_executed > 10.0);
        let text = report.render();
        assert!(text.contains("idle quanta injected"));
    }

    #[test]
    fn web_scenario_reports_qos() {
        let report = run_scenario(&quick_options(WorkloadChoice::Web)).unwrap();
        let qos = report.qos.as_ref().expect("web stats");
        assert!(qos.total() > 100);
        assert!(report.render().contains("web:"));
    }

    #[test]
    fn mix_scenario_reports_cycles() {
        let mut options = quick_options(WorkloadChoice::Mix);
        options.duration = SimDuration::from_secs(80);
        let report = run_scenario(&options).unwrap();
        assert!(report.cool_cycles.expect("counter") >= 1);
    }

    #[test]
    fn smt_scenario_uses_co_scheduler() {
        let mut options = quick_options(WorkloadChoice::CpuBurn);
        options.smt = true;
        options.p = Some(0.5);
        let report = run_scenario(&options).unwrap();
        assert!(report.injected_idles > 0);
    }

    #[test]
    fn setpoint_scenario_controls_temperature() {
        let mut options = quick_options(WorkloadChoice::CpuBurn);
        options.setpoint = Some(40.0);
        options.duration = SimDuration::from_secs(150);
        let report = run_scenario(&options).unwrap();
        assert!(
            (36.0..44.0).contains(&report.physical_temp),
            "controller should hold near 40C: {}",
            report.physical_temp
        );
    }

    #[test]
    fn profile_scenario_replays_file() {
        let dir = std::env::temp_dir().join("dimetrodon_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.profile");
        std::fs::write(&path, "compute 30 0.9\nwait 20\n").unwrap();
        let mut options = quick_options(WorkloadChoice::Profile);
        options.profile_path = Some(path.to_string_lossy().into_owned());
        options.trace = Some(32);
        let report = run_scenario(&options).unwrap();
        assert!(report.cpu_executed > 5.0, "replay should burn CPU");
        let dump = report.trace_dump.as_ref().expect("trace requested");
        assert!(dump.contains("dispatch"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn faulty_setpoint_scenario_reports_losses_and_trips() {
        let dir = std::env::temp_dir().join("dimetrodon_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("burst.faults");
        std::fs::write(&path, "at 5s all dropout for 10s\nat 5s all drop-hooks 0.2 for 10s\n")
            .unwrap();
        let mut options = quick_options(WorkloadChoice::CpuBurn);
        options.duration = SimDuration::from_secs(120);
        options.setpoint = Some(45.0);
        options.sensor_noise = Some(1.0);
        options.trip = Some(51.0);
        options.faults_path = Some(path.to_string_lossy().into_owned());
        let report = run_scenario(&options).unwrap();
        assert!(report.dropped_reads > 0, "dropout window must lose reads");
        let text = report.render();
        assert!(text.contains("thermal trips"));
        assert!(text.contains("sensor reads dropped"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trip_alone_is_reported_and_clean_runs_never_trip() {
        let mut options = quick_options(WorkloadChoice::CpuBurn);
        options.trip = Some(90.0); // far above anything the platform reaches
        let report = run_scenario(&options).unwrap();
        assert_eq!(report.trips, 0);
        assert!(report.render().contains("thermal trips"));
    }

    #[test]
    fn bad_fault_plans_error_cleanly() {
        let mut options = quick_options(WorkloadChoice::CpuBurn);
        options.faults_path = Some("/definitely/not/here.faults".into());
        assert!(matches!(run_scenario(&options), Err(ScenarioError::Faults(_))));

        let dir = std::env::temp_dir().join("dimetrodon_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.faults");
        std::fs::write(&path, "at 5s all explode\n").unwrap();
        let mut options = quick_options(WorkloadChoice::CpuBurn);
        options.faults_path = Some(path.to_string_lossy().into_owned());
        assert!(matches!(run_scenario(&options), Err(ScenarioError::Faults(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_profile_errors() {
        let mut options = quick_options(WorkloadChoice::Profile);
        options.profile_path = Some("/definitely/not/here.profile".into());
        assert!(matches!(
            run_scenario(&options),
            Err(ScenarioError::Profile(_))
        ));
        let mut none = quick_options(WorkloadChoice::Profile);
        none.profile_path = None;
        assert!(matches!(run_scenario(&none), Err(ScenarioError::Profile(_))));
    }

    #[test]
    fn checkpointed_scenario_restores_bit_identically() {
        let mut options = quick_options(WorkloadChoice::CpuBurn);
        options.p = Some(0.5);
        options.seed = 4242;
        options.checkpoint_every = Some(100);
        let baseline = {
            let mut plain = options.clone();
            plain.checkpoint_every = None;
            run_scenario(&plain).unwrap()
        };
        let checkpointed = run_scenario(&options).unwrap();
        let key = scenario_key(&options);
        let stamp = format!("{key:016x}");
        let dir = std::path::Path::new("results/.ckpt");
        let mine = |entry: &std::fs::DirEntry| entry.file_name().to_string_lossy().contains(&stamp);
        let written = std::fs::read_dir(dir)
            .map(|entries| entries.filter_map(Result::ok).filter(mine).count())
            .unwrap_or(0);
        assert!(written > 0, "the checkpointed run must leave checkpoints");
        options.restore = true;
        let restored = run_scenario(&options).unwrap();
        for report in [&checkpointed, &restored] {
            assert_eq!(report.injected_idles, baseline.injected_idles);
            assert_eq!(report.cpu_executed.to_bits(), baseline.cpu_executed.to_bits());
            assert_eq!(
                report.energy_joules.to_bits(),
                baseline.energy_joules.to_bits()
            );
            assert_eq!(
                report.physical_temp.to_bits(),
                baseline.physical_temp.to_bits()
            );
        }
        for entry in std::fs::read_dir(dir).unwrap().filter_map(Result::ok) {
            if mine(&entry) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    #[test]
    fn ule_scenario_runs() {
        let mut options = quick_options(WorkloadChoice::Spec(SpecBenchmark::Astar));
        options.scheduler = SchedulerChoice::Ule;
        let report = run_scenario(&options).unwrap();
        assert!(report.cpu_executed > 10.0);
    }
}
