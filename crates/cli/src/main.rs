//! `dimetrodon-sim`: run a custom scenario on the simulated platform.
//!
//! ```text
//! cargo run --release -p dimetrodon-cli -- --workload cpuburn --p 0.5 --l-ms 25
//! cargo run --release -p dimetrodon-cli -- --workload web --p 0.75 --l-ms 50
//! cargo run --release -p dimetrodon-cli -- --setpoint 45 --duration-secs 300
//! cargo run --release -p dimetrodon-cli -- --workload cpuburn --p 0.5 --smt
//! ```

use std::process::ExitCode;

use dimetrodon_cli::{run_scenario, Options, ParseArgsError, USAGE};

fn main() -> ExitCode {
    let options = match Options::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(ParseArgsError::HelpRequested) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(jobs) = options.jobs {
        dimetrodon_harness::sweep::set_jobs(jobs);
    }
    if options.no_snapshot {
        dimetrodon_harness::snapshot::set_enabled(false);
    }
    dimetrodon_harness::supervise::install(dimetrodon_cli::supervisor_config(&options));

    if options.fleet.is_some() {
        println!(
            "running fleet comparison ({}) for {} (seed {})...",
            dimetrodon_cli::compared_policies(&options).join(", "),
            options.duration,
            options.seed
        );
        return match dimetrodon_cli::run_fleet_scenario(&options) {
            Ok(rendered) => {
                print!("{rendered}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "running {:?} for {} (seed {})...",
        options.workload, options.duration, options.seed
    );
    match run_scenario(&options) {
        Ok(report) => {
            println!("{}", report.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
