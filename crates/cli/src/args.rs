//! Argument parsing for `dimetrodon-sim` — hand-rolled, dependency-free.

use std::fmt;

use dimetrodon_fleet::PolicyKind;
use dimetrodon_sim_core::SimDuration;
use dimetrodon_workload::SpecBenchmark;

/// The workload families the CLI can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadChoice {
    /// One infinite cpuburn per logical CPU.
    CpuBurn,
    /// One SPEC-like profile instance per logical CPU.
    Spec(SpecBenchmark),
    /// The 440-connection web workload.
    Web,
    /// The Figure 5 mix: four calculix + the periodic cool process.
    Mix,
    /// Replay a recorded workload profile file (one instance per logical
    /// CPU); see [`WorkloadProfile`](dimetrodon_workload::WorkloadProfile)
    /// for the format.
    Profile,
}

impl WorkloadChoice {
    fn parse(value: &str) -> Result<Self, ParseArgsError> {
        match value {
            "cpuburn" => Ok(WorkloadChoice::CpuBurn),
            "web" => Ok(WorkloadChoice::Web),
            "mix" => Ok(WorkloadChoice::Mix),
            "profile" => Ok(WorkloadChoice::Profile),
            other => SpecBenchmark::ALL
                .iter()
                .find(|b| b.name() == other)
                .map(|&b| WorkloadChoice::Spec(b))
                .ok_or_else(|| ParseArgsError::BadValue {
                    flag: "--workload",
                    value: other.to_string(),
                    expected:
                        "cpuburn | calculix | namd | dealII | bzip2 | gcc | astar | web | mix | profile",
                }),
        }
    }
}

/// Which scheduler to install.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerChoice {
    /// 4.4BSD multi-level feedback queue (the paper's).
    #[default]
    Bsd,
    /// ULE-lite per-CPU queues.
    Ule,
}

/// Fully parsed CLI options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Workload to drive.
    pub workload: WorkloadChoice,
    /// Injection probability; `None` disables injection.
    pub p: Option<f64>,
    /// Idle quantum length.
    pub quantum: SimDuration,
    /// Deterministic (error-diffusion) injection instead of Bernoulli.
    pub deterministic: bool,
    /// Closed-loop temperature setpoint (°C); overrides `p`.
    pub setpoint: Option<f64>,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Scheduler choice.
    pub scheduler: SchedulerChoice,
    /// Enable SMT (8 logical CPUs) with co-scheduled idle quanta.
    pub smt: bool,
    /// Enable thermal-aware wake placement.
    pub placement: bool,
    /// Dump the last N scheduling decisions after the run.
    pub trace: Option<usize>,
    /// Path of the profile file for `--workload profile` / `--profile`.
    pub profile_path: Option<String>,
    /// Path of a fault-plan file (`at <t>s <target> <fault> ...` lines)
    /// injected into the telemetry/scheduler path.
    pub faults_path: Option<String>,
    /// Gaussian sensor-noise sigma (°C) applied to every telemetry read;
    /// implies degraded (DTS-style) telemetry for closed-loop runs.
    pub sensor_noise: Option<f64>,
    /// Critical hotspot temperature (°C) arming the reactive thermal
    /// trip.
    pub trip: Option<f64>,
    /// Simulation seed.
    pub seed: u64,
    /// Worker threads for sweep-shaped runs; `None` means one per
    /// available core. Results are identical at every worker count.
    pub jobs: Option<usize>,
    /// Abort sweep-shaped runs on a panicking point (the pre-supervisor
    /// behaviour) instead of quarantining it.
    pub strict: bool,
    /// Extra attempts for a failed sweep point; retry seeds are derived
    /// from the grid, so results stay deterministic.
    pub retries: u32,
    /// Wall-clock watchdog per sweep-point attempt, seconds.
    pub point_deadline: Option<f64>,
    /// Disable warm-prefix snapshot reuse in sweep-shaped runs (identical
    /// results, cold-path timing).
    pub no_snapshot: bool,
    /// Run the fleet comparison over this many rack-coupled machines
    /// instead of a single-machine scenario.
    pub fleet: Option<usize>,
    /// Restrict a `--fleet` run to one routing policy (default: compare
    /// all of them).
    pub fleet_policy: Option<PolicyKind>,
    /// Path of a fleet fault-plan file (`at <t>s machine <m>|rack <r>|all
    /// crash|crac <s> <d>|wedge` lines) injected into a `--fleet` run.
    pub chaos_plan_path: Option<String>,
    /// Durable-checkpoint cadence: control epochs between saves for
    /// `--fleet` runs, simulated events for scenario runs. Checkpointing
    /// is off by default in the CLI; this flag (or `--restore`) turns it
    /// on.
    pub checkpoint_every: Option<u64>,
    /// Never write checkpoints (excludes `--checkpoint-every`).
    pub no_checkpoint: bool,
    /// Resume from the newest verifiable checkpoint under
    /// `results/.ckpt/`, falling back past corrupt files; the run fails
    /// with a typed error when files exist but none verifies.
    pub restore: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: WorkloadChoice::CpuBurn,
            p: None,
            quantum: SimDuration::from_millis(25),
            deterministic: false,
            setpoint: None,
            duration: SimDuration::from_secs(150),
            scheduler: SchedulerChoice::Bsd,
            smt: false,
            placement: false,
            trace: None,
            profile_path: None,
            faults_path: None,
            sensor_noise: None,
            trip: None,
            seed: 42,
            jobs: None,
            strict: false,
            retries: 0,
            point_deadline: None,
            no_snapshot: false,
            fleet: None,
            fleet_policy: None,
            chaos_plan_path: None,
            checkpoint_every: None,
            no_checkpoint: false,
            restore: false,
        }
    }
}

/// Errors from [`Options::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseArgsError {
    /// A flag that takes a value was passed without one.
    MissingValue {
        /// The flag.
        flag: &'static str,
    },
    /// A value failed to parse or is out of range.
    BadValue {
        /// The flag.
        flag: &'static str,
        /// The offending value.
        value: String,
        /// What would have been accepted.
        expected: &'static str,
    },
    /// An unrecognised argument.
    UnknownFlag(String),
    /// `--help` was requested.
    HelpRequested,
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseArgsError::MissingValue { flag } => write!(f, "{flag} requires a value"),
            ParseArgsError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "bad value `{value}` for {flag} (expected {expected})"),
            ParseArgsError::UnknownFlag(flag) => write!(f, "unknown argument `{flag}`"),
            ParseArgsError::HelpRequested => write!(f, "help requested"),
        }
    }
}

impl std::error::Error for ParseArgsError {}

/// Usage text for `--help`.
pub const USAGE: &str = "\
dimetrodon-sim: run a custom scenario on the simulated platform

USAGE:
    dimetrodon-sim [OPTIONS]

OPTIONS:
    --workload <w>     cpuburn | calculix | namd | dealII | bzip2 | gcc |
                       astar | web | mix | profile        [default: cpuburn]
    --profile <file>   replay a workload profile (implies --workload profile);
                       format: `compute <ms> <activity>` / `wait <ms>` lines
    --p <0..1>         injection probability              [default: off]
    --l-ms <ms>        idle quantum length in ms          [default: 25]
    --deterministic    error-diffusion injection instead of Bernoulli
    --setpoint <C>     closed-loop temperature target (overrides --p)
    --duration-secs <s> simulated run length              [default: 150]
    --scheduler <s>    bsd | ule                          [default: bsd]
    --smt              enable SMT (co-scheduled idle quanta)
    --placement        thermal-aware wake placement
    --trace <n>        print the last n scheduling decisions
    --faults <file>    inject a fault plan (`at <t>s <core N|all> <fault> ...`
                       lines: stuck <C> | dropout | noise <sigma> |
                       drop-hooks <p> | drop-ticks | wakeup-jitter <span>,
                       optionally `for <span>`)
    --sensor-noise <C> gaussian sigma on telemetry reads (implies degraded
                       DTS telemetry for --setpoint runs)
    --trip <C>         arm the reactive thermal trip at this hotspot
                       temperature
    --seed <n>         simulation seed                    [default: 42]
    --jobs <n>         worker threads for sweep runs      [default: all cores]
    --strict           abort sweep runs on a panicking point instead of
                       quarantining it and finishing the grid
    --retries <n>      extra attempts for a failed sweep point (seeds are
                       re-derived from the grid; deterministic)  [default: 0]
    --point-deadline <s> wall-clock watchdog per sweep-point attempt
    --no-snapshot      recompute every warmup prefix instead of forking a
                       cached snapshot (identical results, slower)
    --fleet <n>        run the cluster comparison over n rack-coupled
                       machines instead of a single-machine scenario
                       (honours --duration-secs, --seed, --jobs)
    --fleet-policy <p> restrict --fleet to one routing policy:
                       round-robin | least-loaded | coolest-first |
                       pinned-migrate          [default: compare all]
    --chaos-plan <file> inject a fleet fault plan into a --fleet run
                       (`at <t>s machine <m>|rack <r>|all crash |
                       crac <scale> <delta> | wedge`, optionally
                       `for <span>`; directive `on-crash drop|redistribute`)
    --checkpoint-every <n> write a durable checkpoint to results/.ckpt/
                       every n control epochs (--fleet) or n simulated
                       events (scenario runs); corrupt files are detected
                       by checksum on restore            [default: off]
    --no-checkpoint    never write checkpoints (excludes --checkpoint-every)
    --restore          resume from the newest verifiable checkpoint,
                       falling back past corrupt files; fails with a typed
                       error when checkpoints exist but none verifies
    --help             print this text
";

impl Options {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseArgsError`] describing the first problem, or
    /// [`ParseArgsError::HelpRequested`] for `--help`.
    pub fn parse<I, S>(args: I) -> Result<Options, ParseArgsError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut options = Options::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let arg = arg.as_ref();
            let mut value_for = |flag: &'static str| {
                iter.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or(ParseArgsError::MissingValue { flag })
            };
            match arg {
                "--workload" => {
                    options.workload = WorkloadChoice::parse(&value_for("--workload")?)?;
                }
                "--p" => {
                    let raw = value_for("--p")?;
                    let p: f64 = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--p",
                        value: raw.clone(),
                        expected: "a number in [0, 1)",
                    })?;
                    if !(0.0..1.0).contains(&p) {
                        return Err(ParseArgsError::BadValue {
                            flag: "--p",
                            value: raw,
                            expected: "a number in [0, 1)",
                        });
                    }
                    options.p = Some(p);
                }
                "--l-ms" => {
                    let raw = value_for("--l-ms")?;
                    let ms: f64 = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--l-ms",
                        value: raw.clone(),
                        expected: "a positive number of milliseconds",
                    })?;
                    if !(ms > 0.0 && ms.is_finite()) {
                        return Err(ParseArgsError::BadValue {
                            flag: "--l-ms",
                            value: raw,
                            expected: "a positive number of milliseconds",
                        });
                    }
                    options.quantum = SimDuration::from_millis_f64(ms);
                }
                "--deterministic" => options.deterministic = true,
                "--setpoint" => {
                    let raw = value_for("--setpoint")?;
                    let c: f64 = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--setpoint",
                        value: raw.clone(),
                        expected: "a temperature in celsius",
                    })?;
                    options.setpoint = Some(c);
                }
                "--duration-secs" => {
                    let raw = value_for("--duration-secs")?;
                    let s: u64 = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--duration-secs",
                        value: raw.clone(),
                        expected: "a positive integer",
                    })?;
                    if s == 0 {
                        return Err(ParseArgsError::BadValue {
                            flag: "--duration-secs",
                            value: raw,
                            expected: "a positive integer",
                        });
                    }
                    options.duration = SimDuration::from_secs(s);
                }
                "--scheduler" => {
                    let raw = value_for("--scheduler")?;
                    options.scheduler = match raw.as_str() {
                        "bsd" => SchedulerChoice::Bsd,
                        "ule" => SchedulerChoice::Ule,
                        _ => {
                            return Err(ParseArgsError::BadValue {
                                flag: "--scheduler",
                                value: raw,
                                expected: "bsd | ule",
                            })
                        }
                    };
                }
                "--smt" => options.smt = true,
                "--placement" => options.placement = true,
                "--trace" => {
                    let raw = value_for("--trace")?;
                    let n: usize = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--trace",
                        value: raw.clone(),
                        expected: "a positive record count",
                    })?;
                    if n == 0 {
                        return Err(ParseArgsError::BadValue {
                            flag: "--trace",
                            value: raw,
                            expected: "a positive record count",
                        });
                    }
                    options.trace = Some(n);
                }
                "--profile" => {
                    options.profile_path = Some(value_for("--profile")?);
                    options.workload = WorkloadChoice::Profile;
                }
                "--faults" => {
                    options.faults_path = Some(value_for("--faults")?);
                }
                "--sensor-noise" => {
                    let raw = value_for("--sensor-noise")?;
                    let sigma: f64 = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--sensor-noise",
                        value: raw.clone(),
                        expected: "a non-negative sigma in celsius",
                    })?;
                    if !(sigma >= 0.0 && sigma.is_finite()) {
                        return Err(ParseArgsError::BadValue {
                            flag: "--sensor-noise",
                            value: raw,
                            expected: "a non-negative sigma in celsius",
                        });
                    }
                    options.sensor_noise = Some(sigma);
                }
                "--trip" => {
                    let raw = value_for("--trip")?;
                    let c: f64 = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--trip",
                        value: raw.clone(),
                        expected: "a finite temperature in celsius",
                    })?;
                    if !c.is_finite() {
                        return Err(ParseArgsError::BadValue {
                            flag: "--trip",
                            value: raw,
                            expected: "a finite temperature in celsius",
                        });
                    }
                    options.trip = Some(c);
                }
                "--seed" => {
                    let raw = value_for("--seed")?;
                    options.seed = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--seed",
                        value: raw,
                        expected: "an unsigned integer",
                    })?;
                }
                "--jobs" => {
                    let raw = value_for("--jobs")?;
                    let n: usize = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--jobs",
                        value: raw.clone(),
                        expected: "a positive worker count",
                    })?;
                    if n == 0 {
                        return Err(ParseArgsError::BadValue {
                            flag: "--jobs",
                            value: raw,
                            expected: "a positive worker count",
                        });
                    }
                    options.jobs = Some(n);
                }
                "--strict" => options.strict = true,
                "--retries" => {
                    let raw = value_for("--retries")?;
                    options.retries = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--retries",
                        value: raw,
                        expected: "a non-negative attempt count",
                    })?;
                }
                "--point-deadline" => {
                    let raw = value_for("--point-deadline")?;
                    let secs: f64 = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--point-deadline",
                        value: raw.clone(),
                        expected: "a positive number of seconds",
                    })?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err(ParseArgsError::BadValue {
                            flag: "--point-deadline",
                            value: raw,
                            expected: "a positive number of seconds",
                        });
                    }
                    options.point_deadline = Some(secs);
                }
                "--no-snapshot" => options.no_snapshot = true,
                "--fleet" => {
                    let raw = value_for("--fleet")?;
                    let n: usize = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--fleet",
                        value: raw.clone(),
                        expected: "a positive machine count",
                    })?;
                    if n == 0 {
                        return Err(ParseArgsError::BadValue {
                            flag: "--fleet",
                            value: raw,
                            expected: "a positive machine count",
                        });
                    }
                    options.fleet = Some(n);
                }
                "--fleet-policy" => {
                    let raw = value_for("--fleet-policy")?;
                    options.fleet_policy =
                        Some(PolicyKind::parse(&raw).ok_or(ParseArgsError::BadValue {
                            flag: "--fleet-policy",
                            value: raw,
                            expected: "round-robin | least-loaded | coolest-first | pinned-migrate",
                        })?);
                }
                "--chaos-plan" => {
                    options.chaos_plan_path = Some(value_for("--chaos-plan")?);
                }
                "--checkpoint-every" => {
                    let raw = value_for("--checkpoint-every")?;
                    let n: u64 = raw.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: "--checkpoint-every",
                        value: raw.clone(),
                        expected: "a positive cadence",
                    })?;
                    if n == 0 {
                        return Err(ParseArgsError::BadValue {
                            flag: "--checkpoint-every",
                            value: raw,
                            expected: "a positive cadence",
                        });
                    }
                    options.checkpoint_every = Some(n);
                }
                "--no-checkpoint" => options.no_checkpoint = true,
                "--restore" => options.restore = true,
                "--help" | "-h" => return Err(ParseArgsError::HelpRequested),
                other => return Err(ParseArgsError::UnknownFlag(other.to_string())),
            }
        }
        if options.no_checkpoint && options.checkpoint_every.is_some() {
            return Err(ParseArgsError::BadValue {
                flag: "--no-checkpoint",
                value: "--checkpoint-every".into(),
                expected: "at most one of the two flags",
            });
        }
        Ok(options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults() {
        let o = Options::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn full_command_line() {
        let o = Options::parse([
            "--workload", "gcc", "--p", "0.5", "--l-ms", "10", "--deterministic",
            "--duration-secs", "60", "--scheduler", "ule", "--smt", "--placement",
            "--seed", "7",
        ])
        .unwrap();
        assert_eq!(o.workload, WorkloadChoice::Spec(SpecBenchmark::Gcc));
        assert_eq!(o.p, Some(0.5));
        assert_eq!(o.quantum, SimDuration::from_millis(10));
        assert!(o.deterministic);
        assert_eq!(o.duration, SimDuration::from_secs(60));
        assert_eq!(o.scheduler, SchedulerChoice::Ule);
        assert!(o.smt && o.placement);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn workload_names() {
        assert_eq!(
            Options::parse(["--workload", "web"]).unwrap().workload,
            WorkloadChoice::Web
        );
        assert_eq!(
            Options::parse(["--workload", "mix"]).unwrap().workload,
            WorkloadChoice::Mix
        );
        assert!(matches!(
            Options::parse(["--workload", "nope"]),
            Err(ParseArgsError::BadValue { flag: "--workload", .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_p() {
        assert!(matches!(
            Options::parse(["--p", "1.0"]),
            Err(ParseArgsError::BadValue { flag: "--p", .. })
        ));
        assert!(matches!(
            Options::parse(["--p", "-0.1"]),
            Err(ParseArgsError::BadValue { flag: "--p", .. })
        ));
    }

    #[test]
    fn rejects_missing_values_and_unknown_flags() {
        assert_eq!(
            Options::parse(["--p"]),
            Err(ParseArgsError::MissingValue { flag: "--p" })
        );
        assert_eq!(
            Options::parse(["--frobnicate"]),
            Err(ParseArgsError::UnknownFlag("--frobnicate".into()))
        );
    }

    #[test]
    fn help_is_reported() {
        assert_eq!(Options::parse(["--help"]), Err(ParseArgsError::HelpRequested));
        assert_eq!(Options::parse(["-h"]), Err(ParseArgsError::HelpRequested));
        assert!(USAGE.contains("--workload"));
    }

    #[test]
    fn trace_and_profile_parse() {
        let o = Options::parse(["--trace", "50"]).unwrap();
        assert_eq!(o.trace, Some(50));
        assert!(matches!(
            Options::parse(["--trace", "0"]),
            Err(ParseArgsError::BadValue { flag: "--trace", .. })
        ));
        let o = Options::parse(["--profile", "app.profile"]).unwrap();
        assert_eq!(o.workload, WorkloadChoice::Profile);
        assert_eq!(o.profile_path.as_deref(), Some("app.profile"));
    }

    #[test]
    fn setpoint_parses() {
        let o = Options::parse(["--setpoint", "45.5"]).unwrap();
        assert_eq!(o.setpoint, Some(45.5));
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let o = Options::parse([
            "--faults", "plan.txt", "--sensor-noise", "1.5", "--trip", "70",
        ])
        .unwrap();
        assert_eq!(o.faults_path.as_deref(), Some("plan.txt"));
        assert_eq!(o.sensor_noise, Some(1.5));
        assert_eq!(o.trip, Some(70.0));
        assert!(matches!(
            Options::parse(["--sensor-noise", "-1"]),
            Err(ParseArgsError::BadValue { flag: "--sensor-noise", .. })
        ));
        assert!(matches!(
            Options::parse(["--sensor-noise", "inf"]),
            Err(ParseArgsError::BadValue { flag: "--sensor-noise", .. })
        ));
        assert!(matches!(
            Options::parse(["--trip", "nan"]),
            Err(ParseArgsError::BadValue { flag: "--trip", .. })
        ));
        assert!(USAGE.contains("--faults") && USAGE.contains("--trip"));
    }

    #[test]
    fn jobs_parses_and_rejects_zero() {
        let o = Options::parse(["--jobs", "8"]).unwrap();
        assert_eq!(o.jobs, Some(8));
        assert!(matches!(
            Options::parse(["--jobs", "0"]),
            Err(ParseArgsError::BadValue { flag: "--jobs", .. })
        ));
        assert!(USAGE.contains("--jobs"));
    }

    #[test]
    fn supervisor_flags_parse_and_validate() {
        let o = Options::parse(["--strict", "--retries", "3", "--point-deadline", "2.5"]).unwrap();
        assert!(o.strict);
        assert_eq!(o.retries, 3);
        assert_eq!(o.point_deadline, Some(2.5));
        assert!(matches!(
            Options::parse(["--retries", "-1"]),
            Err(ParseArgsError::BadValue { flag: "--retries", .. })
        ));
        assert!(matches!(
            Options::parse(["--point-deadline", "0"]),
            Err(ParseArgsError::BadValue { flag: "--point-deadline", .. })
        ));
        assert!(matches!(
            Options::parse(["--point-deadline", "inf"]),
            Err(ParseArgsError::BadValue { flag: "--point-deadline", .. })
        ));
        assert!(USAGE.contains("--strict") && USAGE.contains("--point-deadline"));
    }

    #[test]
    fn fleet_flags_parse_and_validate() {
        let o = Options::parse(["--fleet", "64", "--fleet-policy", "coolest-first"]).unwrap();
        assert_eq!(o.fleet, Some(64));
        assert_eq!(o.fleet_policy, Some(PolicyKind::CoolestFirst));
        assert_eq!(Options::parse(Vec::<String>::new()).unwrap().fleet, None);
        assert!(matches!(
            Options::parse(["--fleet", "0"]),
            Err(ParseArgsError::BadValue { flag: "--fleet", .. })
        ));
        assert!(matches!(
            Options::parse(["--fleet-policy", "hottest-first"]),
            Err(ParseArgsError::BadValue { flag: "--fleet-policy", .. })
        ));
        assert!(USAGE.contains("--fleet") && USAGE.contains("--fleet-policy"));
    }

    #[test]
    fn chaos_plan_parses() {
        let o = Options::parse(["--fleet", "8", "--chaos-plan", "chaos.txt"]).unwrap();
        assert_eq!(o.chaos_plan_path.as_deref(), Some("chaos.txt"));
        assert_eq!(
            Options::parse(Vec::<String>::new()).unwrap().chaos_plan_path,
            None
        );
        assert_eq!(
            Options::parse(["--chaos-plan"]),
            Err(ParseArgsError::MissingValue { flag: "--chaos-plan" })
        );
        assert!(USAGE.contains("--chaos-plan"));
    }

    #[test]
    fn checkpoint_flags_parse_and_validate() {
        let o = Options::parse(["--checkpoint-every", "25", "--restore"]).unwrap();
        assert_eq!(o.checkpoint_every, Some(25));
        assert!(o.restore && !o.no_checkpoint);
        let o = Options::parse(["--no-checkpoint"]).unwrap();
        assert!(o.no_checkpoint && o.checkpoint_every.is_none());
        assert!(matches!(
            Options::parse(["--checkpoint-every", "0"]),
            Err(ParseArgsError::BadValue { flag: "--checkpoint-every", .. })
        ));
        assert!(matches!(
            Options::parse(["--checkpoint-every", "5", "--no-checkpoint"]),
            Err(ParseArgsError::BadValue { flag: "--no-checkpoint", .. })
        ));
        assert!(USAGE.contains("--checkpoint-every") && USAGE.contains("--restore"));
    }

    #[test]
    fn no_snapshot_parses() {
        assert!(!Options::parse(Vec::<String>::new()).unwrap().no_snapshot);
        assert!(Options::parse(["--no-snapshot"]).unwrap().no_snapshot);
        assert!(USAGE.contains("--no-snapshot"));
    }

    #[test]
    fn error_display() {
        let e = ParseArgsError::BadValue {
            flag: "--p",
            value: "2".into(),
            expected: "a number in [0, 1)",
        };
        assert!(e.to_string().contains("--p"));
        assert!(ParseArgsError::MissingValue { flag: "--seed" }
            .to_string()
            .contains("--seed"));
    }

    proptest! {
        /// Any valid p round-trips through parsing.
        #[test]
        fn prop_p_roundtrip(p in 0.0f64..0.999) {
            let o = Options::parse(["--p", &p.to_string()]).unwrap();
            prop_assert!((o.p.unwrap() - p).abs() < 1e-12);
        }

        /// Any seed round-trips.
        #[test]
        fn prop_seed_roundtrip(seed in any::<u64>()) {
            let o = Options::parse(["--seed", &seed.to_string()]).unwrap();
            prop_assert_eq!(o.seed, seed);
        }
    }
}
