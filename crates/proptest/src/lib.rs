//! A minimal, self-contained property-testing shim.
//!
//! The workspace's tests are written against the `proptest` 1.x API, but
//! the build environment is fully offline, so this crate provides the
//! subset of that API the tests actually use: the [`proptest!`] macro with
//! an optional `proptest_config` attribute, numeric range strategies,
//! `any::<T>()`, tuple, [`prop_oneof!`], `prop::option::of`, and
//! `prop::collection::vec` combinators, [`strategy::Just`], `.prop_map`,
//! and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Semantics are simplified relative to upstream: inputs are drawn
//! uniformly from the strategies (no edge-case bias) and failing cases are
//! reported but not shrunk. Generation is deterministic per test (seeded
//! from the test name), so failures reproduce run-to-run.

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    /// Controls how many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion, produced by `prop_assert!` and
    /// friends.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic source of randomness behind every strategy:
    /// a SplitMix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded deterministically from `name` (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform integer in `[0, n)`; `n = 0` means the full 64-bit
        /// range.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return self.next_u64();
            }
            // Widening multiply maps 64 uniform bits onto [0, n) with
            // negligible bias for the small ranges tests use.
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// One boxed alternative of a [`OneOf`] choice: a generator drawing
    /// a value from the arm's underlying strategy.
    pub type OneOfArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// A uniform choice between boxed alternatives, built by the
    /// [`prop_oneof!`](crate::prop_oneof) macro. Unlike upstream, arms
    /// are unweighted.
    pub struct OneOf<V> {
        arms: Vec<OneOfArm<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds a choice over `arms`; at least one is required.
        pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> std::fmt::Debug for OneOf<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("OneOf").field("arms", &self.arms.len()).finish()
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    /// Boxes one [`prop_oneof!`](crate::prop_oneof) arm. A function
    /// rather than an `as` cast so the arms' value types unify cleanly.
    pub fn one_of_arm<S>(s: S) -> OneOfArm<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span =
                        (*self.end() as u64).wrapping_sub(*self.start() as u64).wrapping_add(1);
                    self.start().wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let x = self.start + (self.end - self.start) * rng.unit_f64();
            // Guard against rounding up to the excluded endpoint.
            if x >= self.end {
                self.start
            } else {
                x
            }
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start() <= self.end(), "empty range strategy");
            // The exact upper endpoint is drawn with negligible (not
            // upstream-faithful) probability; tests only rely on bounds.
            self.start() + (self.end() - self.start()) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let x = self.start + (self.end - self.start) * rng.unit_f64() as f32;
            if x >= self.end {
                self.start
            } else {
                x
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A range of collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Optional-value strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // `None` one time in four, roughly matching upstream's
            // default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// A strategy producing `Some` of `inner` most of the time, `None`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// A strategy choosing uniformly among its arms each draw. All arms must
/// generate the same value type. Unlike upstream, arms cannot carry
/// weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::one_of_arm($strat)),+
        ])
    }};
}

/// Defines property tests: each `fn` runs its body over `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let described = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        described
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("{}: {:?} != {:?}", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2.0f64..2.0, k in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(k <= 4);
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn prop_map_composes(s in (1u8..5, 0.0f64..1.0).prop_map(|(n, f)| n as f64 + f)) {
            prop_assert!((1.0..5.0).contains(&s));
        }

        #[test]
        fn oneof_draws_every_arm_type(
            v in prop_oneof![Just(-1i64), 10i64..20, (0i64..3).prop_map(|x| x * 100)]
        ) {
            prop_assert!(
                v == -1 || (10..20).contains(&v) || [0, 100, 200].contains(&v),
                "unexpected value {v}"
            );
        }

        #[test]
        fn option_of_respects_inner_bounds(o in prop::option::of(5u32..8)) {
            if let Some(v) = o {
                prop_assert!((5..8).contains(&v));
            }
        }

        #[test]
        fn inclusive_f64_range_stays_in_bounds(x in 0.0f64..=1.0) {
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }
}
