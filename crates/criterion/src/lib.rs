//! A minimal, self-contained benchmark harness.
//!
//! The workspace's benches are written against the `criterion` 0.5 API,
//! but the build environment is fully offline, so this crate provides the
//! subset of that API the benches use: [`Criterion`], benchmark groups
//! with [`sample_size`](BenchmarkGroup::sample_size), [`Bencher::iter`]
//! and [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are simplified relative to upstream: each benchmark runs one
//! warm-up pass and then `sample_size` timed samples, reporting the mean
//! time per iteration and the iteration rate to stdout. Every result is
//! also recorded in `target/criterion-summary.json` (best-effort) so
//! scripts can scrape machine-readable numbers.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmark's result.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost. The shim re-runs setup for
/// every iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times the body of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

#[derive(Debug)]
struct Record {
    name: String,
    mean_ns: f64,
    iters_per_sec: f64,
}

/// The benchmark runner.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10, records: Vec::new() }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark at the default sample size.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    /// Starts a named group of benchmarks sharing a sample size.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: String, sample_size: usize, mut f: F) {
        // One warm-up pass, untimed.
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut bencher);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..sample_size.max(1) {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            total += bencher.elapsed;
            iters += bencher.iters;
        }
        let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        let iters_per_sec = if mean_ns > 0.0 { 1e9 / mean_ns } else { f64::INFINITY };
        println!("{name:<48} {:>12.1} ns/iter {:>14.2} iter/s", mean_ns, iters_per_sec);
        self.records.push(Record { name, mean_ns, iters_per_sec });
    }

    /// Writes the collected results to `target/criterion-summary.json`
    /// (best-effort) for machine consumption.
    pub fn final_summary(&self) {
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"name\": {:?}, \"mean_ns\": {:.1}, \"iters_per_sec\": {:.3}}}{}\n",
                r.name,
                r.mean_ns,
                r.iters_per_sec,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        let _ = std::fs::create_dir_all("target");
        let _ = std::fs::write("target/criterion-summary.json", out);
    }
}

/// A set of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size;
        self.criterion.run_one(full, sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_records() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].mean_ns >= 0.0);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).bench_function("count", |b| {
            b.iter_batched(|| 21, |x| black_box(x * 2), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].name, "g/count");
    }
}
