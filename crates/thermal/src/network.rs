//! The lumped RC thermal network and its integrator.
//!
//! A network is a set of thermal nodes — each with a heat capacity in J/K —
//! joined by thermal conductances in W/K, plus conductances to a shared
//! boundary (ambient) node. The boundary temperature defaults to the
//! builder's ambient and can be moved between steps with
//! [`ThermalNetwork::set_boundary_celsius`] — the hook a rack model uses to
//! couple machines through their common inlet air. Power (heat) in watts is
//! injected at nodes; temperatures evolve by
//!
//! ```text
//! C_i dT_i/dt = P_i − Σ_j G_ij (T_i − T_j) − G_i,amb (T_i − T_amb)
//! ```
//!
//! The integrator is an *exponential Euler* scheme: within a step, each
//! node relaxes exactly toward the equilibrium implied by its neighbours'
//! frozen temperatures. This is unconditionally stable, exact for a single
//! node, and second-order accurate for networks at the sub-time-constant
//! steps used here — which matters because the scheduler calls the model
//! with irregular, event-driven step sizes.
//!
//! # Layout
//!
//! The immutable description of the network — node names, capacitances,
//! the conductance structure, and everything derived from it — lives in a
//! [`Topology`] behind an `Arc`. The [`ThermalNetwork`] itself carries only
//! the mutable state (temperatures, powers, integrator workspace), so
//! cloning a network for a forked simulation copies a few small `Vec<f64>`s
//! and bumps a reference count instead of duplicating the matrix.
//!
//! The conductance matrix is stored packed (compressed sparse rows, columns
//! ascending) because realistic die/hotspot/package topologies are sparse:
//! the substep cost scales with the number of edges, not `n²`. A padded
//! slot-major copy of the same structure feeds the optional SIMD kernel
//! (`simd` cargo feature); the scalar path never reads it.

use std::fmt;
use std::sync::Arc;

use dimetrodon_sim_core::SimDuration;

use crate::linalg::Matrix;

/// Identifies a node in a [`ThermalNetwork`].
///
/// Node ids are dense indices assigned by
/// [`ThermalNetworkBuilder::add_node`] in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Errors from building or using a thermal network.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// A node parameter was not positive and finite.
    BadNodeParameter {
        /// The offending node's name.
        name: String,
        /// Explanation of the violation.
        reason: &'static str,
    },
    /// A conductance was not positive and finite.
    BadConductance {
        /// Explanation of the violation.
        reason: &'static str,
    },
    /// Some node has no conduction path to ambient, so its temperature
    /// would diverge under sustained power.
    NotGroundedToAmbient {
        /// Names of the unreachable nodes.
        nodes: Vec<String>,
    },
    /// The network has no nodes.
    Empty,
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::BadNodeParameter { name, reason } => {
                write!(f, "bad parameter for thermal node `{name}`: {reason}")
            }
            ThermalError::BadConductance { reason } => {
                write!(f, "bad thermal conductance: {reason}")
            }
            ThermalError::NotGroundedToAmbient { nodes } => {
                write!(f, "thermal nodes not connected to ambient: {}", nodes.join(", "))
            }
            ThermalError::Empty => write!(f, "thermal network has no nodes"),
        }
    }
}

impl std::error::Error for ThermalError {}

/// The immutable part of a thermal network, shared between forks via `Arc`.
///
/// Everything in here is a pure function of the builder's inputs: the
/// packed conductance structure, the per-node totals, the substep bound and
/// its precomputed decay factors, and the assembled steady-state matrix.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Topology {
    pub(crate) names: Vec<String>,
    pub(crate) capacitances: Vec<f64>,
    /// Packed symmetric conductance matrix (CSR). Row `i`'s entries live at
    /// `row_offsets[i]..row_offsets[i + 1]`, columns strictly ascending.
    pub(crate) row_offsets: Vec<u32>,
    pub(crate) cols: Vec<u32>,
    pub(crate) vals: Vec<f64>,
    pub(crate) ambient_conductance: Vec<f64>,
    /// Cached per-node sum of incident conductances.
    pub(crate) total_conductance: Vec<f64>,
    pub(crate) ambient_celsius: f64,
    pub(crate) max_substep: SimDuration,
    /// `max_substep` in seconds, exactly as `advance` will pass it down.
    pub(crate) max_substep_s: f64,
    /// Per-node decay factors for a full-length substep, precomputed once;
    /// nearly every substep is `max_substep` long.
    pub(crate) decay_max: Vec<f64>,
    /// The assembled steady-state conductance matrix `G` of `G·T = rhs`.
    /// Assembly order matches the historical per-call construction, so
    /// solves produce bit-identical results.
    pub(crate) steady_matrix: Matrix,
    /// Slot-major padded copy of the CSR structure for the SIMD kernel:
    /// slot `k` of node `i` is at `k * n + i`. Padding slots carry the
    /// node's own column and a zero conductance, so gathers stay in bounds
    /// and contribute exactly `±0.0`.
    pub(crate) ell_slots: usize,
    pub(crate) ell_cols: Vec<i64>,
    pub(crate) ell_vals: Vec<f64>,
}

/// Builder for a [`ThermalNetwork`].
///
/// # Examples
///
/// A die–package–ambient chain:
///
/// ```
/// use dimetrodon_thermal::ThermalNetworkBuilder;
/// use dimetrodon_sim_core::SimDuration;
///
/// # fn main() -> Result<(), dimetrodon_thermal::ThermalError> {
/// let mut builder = ThermalNetworkBuilder::new(25.0);
/// let die = builder.add_node("die", 1.0);
/// let pkg = builder.add_node("package", 50.0);
/// builder.connect(die, pkg, 0.5);
/// builder.connect_ambient(pkg, 0.4);
/// let mut network = builder.build()?;
///
/// network.set_power(die, 10.0);
/// network.advance(SimDuration::from_secs(600));
/// // After a long time the die sits well above ambient.
/// assert!(network.temperature(die) > 40.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThermalNetworkBuilder {
    ambient_celsius: f64,
    names: Vec<String>,
    capacitances: Vec<f64>,
    edges: Vec<(usize, usize, f64)>,
    ambient_edges: Vec<(usize, f64)>,
}

impl ThermalNetworkBuilder {
    /// Starts a network with the given fixed ambient temperature in °C.
    pub fn new(ambient_celsius: f64) -> Self {
        ThermalNetworkBuilder {
            ambient_celsius,
            names: Vec::new(),
            capacitances: Vec::new(),
            edges: Vec::new(),
            ambient_edges: Vec::new(),
        }
    }

    /// Adds a node with heat capacity in J/K and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, capacitance_j_per_k: f64) -> NodeId {
        self.names.push(name.into());
        self.capacitances.push(capacitance_j_per_k);
        NodeId(self.names.len() - 1)
    }

    /// Connects two nodes with a thermal conductance in W/K. Multiple
    /// connections between the same pair sum.
    pub fn connect(&mut self, a: NodeId, b: NodeId, conductance_w_per_k: f64) -> &mut Self {
        self.edges.push((a.0, b.0, conductance_w_per_k));
        self
    }

    /// Connects a node to the fixed ambient with a conductance in W/K.
    pub fn connect_ambient(&mut self, node: NodeId, conductance_w_per_k: f64) -> &mut Self {
        self.ambient_edges.push((node.0, conductance_w_per_k));
        self
    }

    /// Validates and builds the network, with all node temperatures
    /// initialised to ambient.
    ///
    /// # Errors
    ///
    /// Returns an error if the network is empty, any capacitance or
    /// conductance is non-positive or non-finite, or any node lacks a
    /// conduction path to ambient.
    pub fn build(&self) -> Result<ThermalNetwork, ThermalError> {
        let n = self.names.len();
        if n == 0 {
            return Err(ThermalError::Empty);
        }
        for (name, &c) in self.names.iter().zip(&self.capacitances) {
            if !(c > 0.0 && c.is_finite()) {
                return Err(ThermalError::BadNodeParameter {
                    name: name.clone(),
                    reason: "heat capacity must be positive and finite",
                });
            }
        }
        for &(a, b, g) in &self.edges {
            if !(g > 0.0 && g.is_finite()) {
                return Err(ThermalError::BadConductance {
                    reason: "node-to-node conductance must be positive and finite",
                });
            }
            if a == b {
                return Err(ThermalError::BadConductance {
                    reason: "self-loops are meaningless",
                });
            }
        }
        for &(_, g) in &self.ambient_edges {
            if !(g > 0.0 && g.is_finite()) {
                return Err(ThermalError::BadConductance {
                    reason: "ambient conductance must be positive and finite",
                });
            }
        }

        // Dense adjacency with summed conductances, used only at build time
        // to validate and to derive the packed structure.
        let mut conductance = vec![0.0f64; n * n];
        for &(a, b, g) in &self.edges {
            conductance[a * n + b] += g;
            conductance[b * n + a] += g;
        }
        let mut ambient_conductance = vec![0.0f64; n];
        for &(node, g) in &self.ambient_edges {
            ambient_conductance[node] += g;
        }

        // Reachability from ambient: every node must be able to shed heat.
        let mut reachable = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| ambient_conductance[i] > 0.0).collect();
        for &s in &stack {
            reachable[s] = true;
        }
        while let Some(i) = stack.pop() {
            for j in 0..n {
                if conductance[i * n + j] > 0.0 && !reachable[j] {
                    reachable[j] = true;
                    stack.push(j);
                }
            }
        }
        let unreachable: Vec<String> = (0..n)
            .filter(|&i| !reachable[i])
            .map(|i| self.names[i].clone())
            .collect();
        if !unreachable.is_empty() {
            return Err(ThermalError::NotGroundedToAmbient { nodes: unreachable });
        }

        let total_conductance: Vec<f64> = (0..n)
            .map(|i| conductance[i * n..(i + 1) * n].iter().sum::<f64>() + ambient_conductance[i])
            .collect();

        // Pack the dense adjacency into CSR with ascending columns. The
        // substep accumulates a row's products in the same left-to-right
        // order as the old dense walk; the skipped entries were exact zeros
        // whose products contribute `±0.0`, so the packed sum is
        // bit-identical for any physical temperature vector.
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_offsets.push(0u32);
        for i in 0..n {
            for j in 0..n {
                let g = conductance[i * n + j];
                // simlint::allow(D4): exact zero-skip on purpose — only
                // entries whose product is exactly ±0.0 are dropped, which
                // keeps the packed sum bit-identical to the dense walk.
                if g != 0.0 {
                    cols.push(j as u32);
                    vals.push(g);
                }
            }
            row_offsets.push(cols.len() as u32);
        }

        // Slot-major padded (ELLPACK) mirror of the CSR structure for the
        // SIMD kernel: lane = node, slot = neighbour rank. Padding repeats
        // the node's own index with zero conductance.
        let ell_slots = (0..n)
            .map(|i| (row_offsets[i + 1] - row_offsets[i]) as usize)
            .max()
            .unwrap_or(0);
        let mut ell_cols = vec![0i64; ell_slots * n];
        let mut ell_vals = vec![0.0f64; ell_slots * n];
        for i in 0..n {
            let (start, end) = (row_offsets[i] as usize, row_offsets[i + 1] as usize);
            for k in 0..ell_slots {
                let (c, v) = if start + k < end {
                    (cols[start + k] as i64, vals[start + k])
                } else {
                    (i as i64, 0.0)
                };
                ell_cols[k * n + i] = c;
                ell_vals[k * n + i] = v;
            }
        }

        // The shortest local time constant bounds the internal substep.
        // Exponential Euler is unconditionally stable and exact per node;
        // a quarter of the fastest time constant keeps the coupling error
        // negligible at the temperatures we care about.
        let min_tau = (0..n)
            .map(|i| self.capacitances[i] / total_conductance[i])
            .fold(f64::INFINITY, f64::min);
        let max_substep = SimDuration::from_secs_f64(min_tau / 4.0);
        let max_substep_s = max_substep.as_secs_f64();
        let decay_max: Vec<f64> = (0..n)
            .map(|i| (-total_conductance[i] * max_substep_s / self.capacitances[i]).exp())
            .collect();

        // Assemble the steady-state matrix once; only the right-hand side
        // depends on the powers. Same element order as the historical
        // per-call assembly, so solves stay bit-identical.
        let mut steady_matrix = Matrix::zeros(n);
        for i in 0..n {
            steady_matrix.set(i, i, total_conductance[i]);
            for k in row_offsets[i] as usize..row_offsets[i + 1] as usize {
                steady_matrix.add_to(i, cols[k] as usize, -vals[k]);
            }
        }

        let topology = Topology {
            names: self.names.clone(),
            capacitances: self.capacitances.clone(),
            row_offsets,
            cols,
            vals,
            ambient_conductance,
            total_conductance,
            ambient_celsius: self.ambient_celsius,
            max_substep,
            max_substep_s,
            decay_max,
            steady_matrix,
            ell_slots,
            ell_cols,
            ell_vals,
        };
        Ok(ThermalNetwork {
            topo: Arc::new(topology),
            temperatures: vec![self.ambient_celsius; n],
            powers: vec![0.0; n],
            boundary_celsius: self.ambient_celsius,
            scratch: vec![self.ambient_celsius; n],
            decay: vec![0.0; n],
            decay_dt_s: f64::NAN,
        })
    }
}

/// A lumped RC thermal network with a fixed-temperature ambient.
///
/// Construct with [`ThermalNetworkBuilder`]. Inject power with
/// [`set_power`](ThermalNetwork::set_power), then
/// [`advance`](ThermalNetwork::advance) the network through time; power is treated as
/// constant for the duration of each `advance` call, matching the
/// piecewise-constant power profile of a discrete-event machine model.
///
/// Cloning is cheap: the topology (names, conductance structure, derived
/// caches) is shared via `Arc`, and only the mutable state — temperatures,
/// powers, integrator workspace — is deep-copied. For an even lighter
/// checkpoint of just the observable state, see
/// [`snapshot`](ThermalNetwork::snapshot) / [`restore`](ThermalNetwork::restore).
#[derive(Debug, Clone)]
pub struct ThermalNetwork {
    // simlint::shared: Arc-shared immutable topology.
    pub(crate) topo: Arc<Topology>,
    temperatures: Vec<f64>,
    powers: Vec<f64>,
    /// The boundary (ambient/inlet) node's temperature in °C. Starts at the
    /// builder's ambient and may be moved between steps — the rack model's
    /// coupling knob. Observable state: snapshotted, restored, compared.
    boundary_celsius: f64,
    /// Integrator workspace: the previous substep's temperatures.
    // simlint::shared: scratch, fully overwritten before every use.
    scratch: Vec<f64>,
    /// Per-node decay factors for an *irregular* substep of `decay_dt_s`
    /// seconds (a remainder shorter than `max_substep`); the common
    /// full-length factors live precomputed in the topology.
    // simlint::shared: pure cache keyed by `decay_dt_s`, rebuilt on use.
    decay: Vec<f64>,
    // simlint::shared: cache key for `decay`; not observable state.
    decay_dt_s: f64,
}

impl PartialEq for ThermalNetwork {
    fn eq(&self, other: &Self) -> bool {
        // The integrator workspace (`scratch`, `decay`, `decay_dt_s`) is
        // not part of the network's observable state. Topologies compare
        // by value, so independently built identical networks are equal.
        (Arc::ptr_eq(&self.topo, &other.topo) || self.topo == other.topo)
            && self.temperatures == other.temperatures
            && self.powers == other.powers
            && self.boundary_celsius.to_bits() == other.boundary_celsius.to_bits()
    }
}

/// A checkpoint of a [`ThermalNetwork`]'s observable state: temperatures,
/// powers, and the boundary temperature. Pair with
/// [`ThermalNetwork::restore`] to rewind a network to a recorded instant
/// without rebuilding its topology.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalSnapshot {
    temperatures: Vec<f64>,
    powers: Vec<f64>,
    boundary_celsius: f64,
}

impl ThermalSnapshot {
    /// Serializes the snapshot for a durable checkpoint: every float as
    /// its IEEE-754 bit pattern, so decode is bit-exact.
    pub fn encode_state(&self, enc: &mut dimetrodon_ckpt::Enc) {
        enc.f64_slice(&self.temperatures);
        enc.f64_slice(&self.powers);
        enc.f64(self.boundary_celsius);
    }

    /// Rebuilds a snapshot from [`encode_state`](Self::encode_state)
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`dimetrodon_ckpt::CkptError`] on a short or malformed
    /// payload, and when the two node vectors disagree in length (a
    /// snapshot that could never have been encoded).
    pub fn decode_state(
        dec: &mut dimetrodon_ckpt::Dec<'_>,
    ) -> Result<Self, dimetrodon_ckpt::CkptError> {
        let temperatures = dec.f64_vec()?;
        let powers = dec.f64_vec()?;
        let boundary_celsius = dec.f64()?;
        if temperatures.len() != powers.len() {
            return Err(dimetrodon_ckpt::CkptError::Malformed(format!(
                "thermal snapshot with {} temperatures but {} powers",
                temperatures.len(),
                powers.len()
            )));
        }
        Ok(ThermalSnapshot {
            temperatures,
            powers,
            boundary_celsius,
        })
    }

    /// Number of nodes the snapshot covers (restore requires it to match
    /// the target network).
    pub fn node_count(&self) -> usize {
        self.temperatures.len()
    }
}

impl ThermalNetwork {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.topo.names.len()
    }

    /// The name a node was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from this network.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.topo.names[node.0]
    }

    /// Node ids in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.topo.names.len()).map(NodeId)
    }

    /// The ambient temperature the network was built with, in °C — the
    /// boundary temperature's initial value.
    pub fn ambient_celsius(&self) -> f64 {
        self.topo.ambient_celsius
    }

    /// The current boundary (ambient/inlet) temperature in °C.
    ///
    /// Equals [`ambient_celsius`](ThermalNetwork::ambient_celsius) unless
    /// moved with [`set_boundary_celsius`](ThermalNetwork::set_boundary_celsius).
    pub fn boundary_celsius(&self) -> f64 {
        self.boundary_celsius
    }

    /// Moves the boundary (ambient/inlet) node to a new temperature in °C.
    ///
    /// Takes effect from the next `advance`; ambient conductances are
    /// unchanged, only the temperature they pull toward moves. Setting the
    /// built ambient back is bit-identical to never having called this.
    ///
    /// # Panics
    ///
    /// Panics if `celsius` is not finite.
    pub fn set_boundary_celsius(&mut self, celsius: f64) {
        assert!(celsius.is_finite(), "boundary temperature must be finite, got {celsius}");
        self.boundary_celsius = celsius;
    }

    /// Current temperature of a node in °C.
    pub fn temperature(&self, node: NodeId) -> f64 {
        self.temperatures[node.0]
    }

    /// All node temperatures, indexed by [`NodeId::index`].
    pub fn temperatures(&self) -> &[f64] {
        &self.temperatures
    }

    /// Sets the heat injected at a node, in watts, until changed again.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or not finite.
    pub fn set_power(&mut self, node: NodeId, watts: f64) {
        assert!(
            watts >= 0.0 && watts.is_finite(),
            "power must be non-negative and finite, got {watts}"
        );
        self.powers[node.0] = watts;
    }

    /// Current power injection at a node, in watts.
    pub fn power(&self, node: NodeId) -> f64 {
        self.powers[node.0]
    }

    /// The integrator's internal substep bound: a quarter of the fastest
    /// local time constant.
    pub fn max_substep(&self) -> SimDuration {
        self.topo.max_substep
    }

    /// Whether two networks share one topology allocation (i.e. one was
    /// cloned or forked from the other). Value-equal but independently
    /// built networks return `false`.
    pub fn shares_topology(&self, other: &ThermalNetwork) -> bool {
        Arc::ptr_eq(&self.topo, &other.topo)
    }

    /// Captures the observable state (temperatures, powers, boundary).
    pub fn snapshot(&self) -> ThermalSnapshot {
        ThermalSnapshot {
            temperatures: self.temperatures.clone(),
            powers: self.powers.clone(),
            boundary_celsius: self.boundary_celsius,
        }
    }

    /// Rewinds the network to a previously captured snapshot.
    ///
    /// The integrator's decay cache is keyed only by substep length, never
    /// by temperatures or powers, so restoring state mid-flight cannot
    /// stale it — advancing after a restore is bit-identical to advancing
    /// a fresh network from the same state.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's node count differs from this network's.
    pub fn restore(&mut self, snapshot: &ThermalSnapshot) {
        assert_eq!(
            snapshot.temperatures.len(),
            self.temperatures.len(),
            "snapshot node count mismatch"
        );
        self.temperatures.copy_from_slice(&snapshot.temperatures);
        self.powers.copy_from_slice(&snapshot.powers);
        self.boundary_celsius = snapshot.boundary_celsius;
    }

    /// Advances the network by `dt` under the currently set powers.
    ///
    /// Internally sub-steps at a quarter of the fastest local time constant
    /// so accuracy does not depend on the caller's event granularity.
    pub fn advance(&mut self, dt: SimDuration) {
        if dt.is_zero() {
            return;
        }
        // Each substep moves every node toward an equilibrium that is at
        // least the coldest of (ambient, its neighbours), so the network
        // minimum can never drop below min(pre-step minimum, ambient) —
        // modulo float rounding, hence the tolerance. The pre-step minimum
        // matters because set_temperature may legitimately start a node
        // below ambient.
        let floor = if cfg!(feature = "invariants") {
            self.temperatures
                .iter()
                .copied()
                .fold(self.boundary_celsius, f64::min)
                - 1e-6
        } else {
            f64::NEG_INFINITY
        };
        let mut remaining = dt;
        while !remaining.is_zero() {
            let step = remaining.min(self.topo.max_substep);
            self.substep(step.as_secs_f64());
            remaining = remaining.saturating_sub(step);
        }
        if cfg!(feature = "invariants") {
            for (i, &t) in self.temperatures.iter().enumerate() {
                assert!(
                    t.is_finite() && t >= floor,
                    "thermal invariant violated: node {i} at {t} °C \
                     (finite, >= {floor} °C expected)"
                );
            }
        }
    }

    /// One exponential-Euler substep of `dt_s` seconds.
    ///
    /// Allocation-free: the previous temperatures live in a swapped
    /// scratch buffer. Full-length substeps use the decay factors
    /// precomputed in the topology; irregular remainders fall back to a
    /// per-network cache keyed by the substep length.
    fn substep(&mut self, dt_s: f64) {
        let n = self.temperatures.len();
        let full_step = dt_s == self.topo.max_substep_s;
        if !full_step && dt_s != self.decay_dt_s {
            for i in 0..n {
                self.decay[i] =
                    (-self.topo.total_conductance[i] * dt_s / self.topo.capacitances[i]).exp();
            }
            self.decay_dt_s = dt_s;
        }
        std::mem::swap(&mut self.temperatures, &mut self.scratch);
        let topo = &*self.topo;
        let decay: &[f64] = if full_step { &topo.decay_max } else { &self.decay };
        let old: &[f64] = &self.scratch;
        let new: &mut [f64] = &mut self.temperatures;

        let boundary = self.boundary_celsius;

        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::simd::substep_vector(topo, boundary, old, &self.powers, decay, new) {
            return;
        }

        scalar_substep(topo, boundary, old, &self.powers, decay, new);
    }

    /// Total power currently injected across all nodes, in watts.
    ///
    /// Lets callers audit energy conservation: whatever a machine model
    /// splits across hotspot/die/package nodes must sum back to the power
    /// it drew.
    pub fn total_power(&self) -> f64 {
        self.powers.iter().sum()
    }

    /// The steady-state temperatures under the currently set powers,
    /// computed directly from the conductance matrix (no time stepping).
    ///
    /// The matrix itself depends only on the topology and is assembled once
    /// at build time; each call builds the power-dependent right-hand side
    /// and solves.
    ///
    /// # Panics
    ///
    /// Panics if the conductance matrix is singular, which
    /// [`ThermalNetworkBuilder::build`] makes impossible (every node is
    /// grounded to ambient).
    pub fn steady_state(&self) -> Vec<f64> {
        let topo = &*self.topo;
        let rhs: Vec<f64> = self
            .powers
            .iter()
            .zip(&topo.ambient_conductance)
            .map(|(&p, &g)| p + g * self.boundary_celsius)
            .collect();
        topo.steady_matrix
            .solve(&rhs)
            // simlint::allow(R1): documented panic — the builder grounds
            // every node to ambient, making the matrix diagonally dominant
            // and therefore non-singular.
            .expect("grounded thermal network has a non-singular conductance matrix")
    }

    /// Jumps the network directly to the steady state of the current
    /// powers. Used to start experiments from a settled condition (e.g.
    /// the idle temperature).
    pub fn settle(&mut self) {
        self.temperatures = self.steady_state();
    }

    /// Resets every node to the built ambient temperature, clears all
    /// powers, and returns the boundary to the built ambient.
    pub fn reset(&mut self) {
        for t in &mut self.temperatures {
            *t = self.topo.ambient_celsius;
        }
        for p in &mut self.powers {
            *p = 0.0;
        }
        self.boundary_celsius = self.topo.ambient_celsius;
    }

    /// Overrides a node's temperature (for tests and checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if `celsius` is not finite.
    pub fn set_temperature(&mut self, node: NodeId, celsius: f64) {
        assert!(celsius.is_finite(), "temperature must be finite");
        self.temperatures[node.0] = celsius;
    }

    /// The local time constant `C_i / G_i,total` of a node in seconds: how
    /// fast the node relaxes toward its neighbours. The die nodes' short
    /// time constant is what makes short idle quanta disproportionately
    /// effective (paper §3.4, Figure 3).
    pub fn local_time_constant(&self, node: NodeId) -> f64 {
        self.topo.capacitances[node.0] / self.topo.total_conductance[node.0]
    }

    /// The temperature derivative `dT/dt = C⁻¹(P − G·ΔT)` evaluated at an
    /// arbitrary temperature vector (K/s per node). Exposed for reference
    /// integrators and verification tooling.
    ///
    /// # Panics
    ///
    /// Panics if `temps` does not have one entry per node.
    pub fn heat_flow_derivative(&self, temps: &[f64]) -> Vec<f64> {
        let topo = &*self.topo;
        let n = self.temperatures.len();
        assert_eq!(temps.len(), n, "temperature vector length mismatch");
        (0..n)
            .map(|i| {
                let neighbour: f64 = (topo.row_offsets[i] as usize
                    ..topo.row_offsets[i + 1] as usize)
                    .map(|k| topo.vals[k] * (temps[topo.cols[k] as usize] - temps[i]))
                    .sum();
                let ambient = topo.ambient_conductance[i] * (self.boundary_celsius - temps[i]);
                (self.powers[i] + neighbour + ambient) / topo.capacitances[i]
            })
            .collect()
    }

    /// Net heat flow out of the network into the boundary right now, in
    /// watts.
    pub fn heat_to_ambient(&self) -> f64 {
        self.temperatures
            .iter()
            .zip(&self.topo.ambient_conductance)
            .map(|(&t, &g)| g * (t - self.boundary_celsius))
            .sum()
    }

    /// Total stored thermal energy relative to the boundary, in joules.
    pub fn stored_energy(&self) -> f64 {
        self.temperatures
            .iter()
            .zip(&self.topo.capacitances)
            .map(|(&t, &c)| c * (t - self.boundary_celsius))
            .sum()
    }
}

/// The packed-row scalar kernel: one exponential-Euler substep over CSR.
///
/// Accumulates each row's neighbour products left to right, exactly as the
/// historical dense walk did minus its `±0.0` products, so results are
/// bit-identical for physical temperatures. Shared by the default build and
/// the SIMD build's fallback/remainder paths.
pub(crate) fn scalar_substep(
    topo: &Topology,
    boundary: f64,
    old: &[f64],
    powers: &[f64],
    decay: &[f64],
    new: &mut [f64],
) {
    for (i, out) in new.iter_mut().enumerate() {
        let g_tot = topo.total_conductance[i];
        let mut neighbour_heat = 0.0;
        for k in topo.row_offsets[i] as usize..topo.row_offsets[i + 1] as usize {
            neighbour_heat += topo.vals[k] * old[topo.cols[k] as usize];
        }
        let neighbour_heat = neighbour_heat + topo.ambient_conductance[i] * boundary;
        let t_eq = (powers[i] + neighbour_heat) / g_tot;
        *out = t_eq + (old[i] - t_eq) * decay[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Under the `invariants` feature, advance() checks its physical
    /// envelope (finite temperatures, no dips below the pre-step floor)
    /// on every call; heat-up and cool-down paths both cross it.
    #[cfg(feature = "invariants")]
    #[test]
    fn envelope_check_passes_through_transients() {
        let (mut net, die) = single_node();
        net.set_power(die, 40.0);
        for _ in 0..200 {
            net.advance(SimDuration::from_millis(500));
        }
        net.set_power(die, 0.0);
        for _ in 0..200 {
            net.advance(SimDuration::from_millis(500));
        }
        assert!((net.temperature(die) - 25.0).abs() < 0.5);
    }

    /// die(1 J/K) --0.5 W/K-- ambient, a pure single-pole system.
    fn single_node() -> (ThermalNetwork, NodeId) {
        let mut b = ThermalNetworkBuilder::new(25.0);
        let die = b.add_node("die", 1.0);
        b.connect_ambient(die, 0.5);
        (b.build().unwrap(), die)
    }

    fn two_pole() -> (ThermalNetwork, NodeId, NodeId) {
        let mut b = ThermalNetworkBuilder::new(25.0);
        let die = b.add_node("die", 0.5);
        let pkg = b.add_node("pkg", 100.0);
        b.connect(die, pkg, 2.0);
        b.connect_ambient(pkg, 1.0);
        (b.build().unwrap(), die, pkg)
    }

    #[test]
    fn single_node_matches_analytic_solution() {
        let (mut net, die) = single_node();
        net.set_power(die, 10.0);
        // T(t) = T_amb + P/G * (1 - e^{-tG/C}); tau = C/G = 2 s.
        for &t_s in &[0.1, 0.5, 1.0, 2.0, 5.0, 20.0] {
            let mut n = net.clone();
            n.advance(SimDuration::from_secs_f64(t_s));
            let expected = 25.0 + 20.0 * (1.0 - (-t_s / 2.0).exp());
            let got = n.temperature(die);
            assert!(
                (got - expected).abs() < 0.02,
                "t={t_s}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_node_steady_state() {
        let (mut net, die) = single_node();
        net.set_power(die, 10.0);
        let ss = net.steady_state();
        assert!((ss[0] - 45.0).abs() < 1e-9); // 25 + 10/0.5
    }

    #[test]
    fn advance_converges_to_steady_state() {
        let (mut net, die, pkg) = two_pole();
        net.set_power(die, 40.0);
        let ss = net.steady_state();
        net.advance(SimDuration::from_secs(2000));
        assert!((net.temperature(die) - ss[0]).abs() < 0.05);
        assert!((net.temperature(pkg) - ss[1]).abs() < 0.05);
    }

    #[test]
    fn settle_equals_steady_state() {
        let (mut net, die, _) = two_pole();
        net.set_power(die, 40.0);
        let ss = net.steady_state();
        net.settle();
        assert_eq!(net.temperatures(), ss.as_slice());
    }

    #[test]
    fn die_cools_fast_package_cools_slow() {
        // The two-time-constant structure behind Figure 3: after a short
        // idle window the die has shed most of its excess over the package,
        // while the package has barely moved.
        let (mut net, die, pkg) = two_pole();
        net.set_power(die, 40.0);
        net.settle();
        let die_hot = net.temperature(die);
        let pkg_hot = net.temperature(pkg);
        net.set_power(die, 0.0);
        net.advance(SimDuration::from_millis(800)); // several die taus (0.2 s)
        let die_drop = die_hot - net.temperature(die);
        let pkg_drop = pkg_hot - net.temperature(pkg);
        assert!(die_drop > 15.0, "die should cool fast, dropped {die_drop}");
        assert!(pkg_drop < 1.0, "package should cool slowly, dropped {pkg_drop}");
    }

    #[test]
    fn cooling_has_diminishing_returns_in_window_length() {
        // Temperature drop per unit idle time decreases with window length:
        // the physical basis of the paper's diminishing marginal benefit.
        let (mut net, die, _) = two_pole();
        net.set_power(die, 40.0);
        net.settle();
        let hot = net.temperature(die);
        let drop_for = |ms: u64| {
            let mut n = net.clone();
            n.set_power(die, 0.0);
            n.advance(SimDuration::from_millis(ms));
            (hot - n.temperature(die)) / ms as f64
        };
        let per_ms_short = drop_for(50);
        let per_ms_long = drop_for(1000);
        assert!(
            per_ms_short > 2.0 * per_ms_long,
            "short windows should cool more per ms: {per_ms_short} vs {per_ms_long}"
        );
    }

    #[test]
    fn local_time_constants() {
        let (net, die, pkg) = two_pole();
        assert!((net.local_time_constant(die) - 0.25).abs() < 1e-12); // 0.5/2.0
        assert!((net.local_time_constant(pkg) - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn heat_balance_at_steady_state() {
        let (mut net, die, _) = two_pole();
        net.set_power(die, 40.0);
        net.settle();
        // At steady state all injected heat leaves to ambient.
        assert!((net.heat_to_ambient() - 40.0).abs() < 1e-6);
    }

    #[test]
    fn energy_conservation_during_transient() {
        // Injected energy = stored energy change + energy shed to ambient.
        let (mut net, die, _) = two_pole();
        net.set_power(die, 40.0);
        let dt = SimDuration::from_millis(10);
        let mut shed = 0.0;
        let e0 = net.stored_energy();
        for _ in 0..1000 {
            // Trapezoid on the ambient flow across the step.
            let flow_before = net.heat_to_ambient();
            net.advance(dt);
            let flow_after = net.heat_to_ambient();
            shed += 0.5 * (flow_before + flow_after) * dt.as_secs_f64();
        }
        let injected = 40.0 * 10.0; // 40 W for 10 s
        let delta_stored = net.stored_energy() - e0;
        let balance = injected - delta_stored - shed;
        assert!(
            balance.abs() < injected * 0.01,
            "energy imbalance {balance} of {injected}"
        );
    }

    #[test]
    fn reset_returns_to_ambient() {
        let (mut net, die, _) = two_pole();
        net.set_power(die, 40.0);
        net.advance(SimDuration::from_secs(10));
        net.reset();
        assert!(net.temperatures().iter().all(|&t| t == 25.0));
        assert_eq!(net.power(die), 0.0);
    }

    #[test]
    fn boundary_moves_the_equilibrium() {
        // Raising the boundary shifts every equilibrium up by the same
        // amount in a linear network: T_ss = boundary + P/G.
        let (mut net, die) = single_node();
        net.set_power(die, 10.0);
        net.set_boundary_celsius(35.0);
        assert_eq!(net.boundary_celsius(), 35.0);
        assert_eq!(net.ambient_celsius(), 25.0);
        assert!((net.steady_state()[0] - 55.0).abs() < 1e-9); // 35 + 10/0.5
        net.advance(SimDuration::from_secs(60));
        assert!((net.temperature(die) - 55.0).abs() < 0.01);
    }

    #[test]
    fn boundary_at_built_ambient_is_bit_identical() {
        // Setting the boundary to the value it already has must not change
        // a single bit of the trajectory — the whole-repo determinism
        // baseline depends on this.
        let (reference, die) = single_node();
        let mut touched = reference.clone();
        let mut reference = reference;
        reference.set_power(die, 10.0);
        touched.set_power(die, 10.0);
        touched.set_boundary_celsius(25.0);
        for _ in 0..50 {
            reference.advance(SimDuration::from_millis(73));
            touched.advance(SimDuration::from_millis(73));
        }
        assert_eq!(
            reference.temperature(die).to_bits(),
            touched.temperature(die).to_bits()
        );
    }

    #[test]
    fn snapshot_round_trips_the_boundary() {
        let (mut net, die) = single_node();
        net.set_power(die, 10.0);
        net.set_boundary_celsius(31.5);
        net.advance(SimDuration::from_secs(2));
        let checkpoint = net.snapshot();
        let at_checkpoint = net.clone();
        net.set_boundary_celsius(18.0);
        net.advance(SimDuration::from_secs(2));
        assert_ne!(net, at_checkpoint);
        net.restore(&checkpoint);
        assert_eq!(net, at_checkpoint);
        assert_eq!(net.boundary_celsius(), 31.5);
        // Advancing after the restore follows the checkpointed boundary.
        let mut replay = at_checkpoint;
        replay.advance(SimDuration::from_secs(2));
        net.advance(SimDuration::from_secs(2));
        assert_eq!(net.temperature(die).to_bits(), replay.temperature(die).to_bits());
    }

    #[test]
    fn reset_returns_the_boundary_to_built_ambient() {
        let (mut net, die) = single_node();
        net.set_power(die, 10.0);
        net.set_boundary_celsius(40.0);
        net.reset();
        assert_eq!(net.boundary_celsius(), 25.0);
        assert_eq!(net.temperature(die), 25.0);
    }

    #[test]
    #[should_panic(expected = "boundary temperature must be finite")]
    fn boundary_rejects_non_finite() {
        let (mut net, _) = single_node();
        net.set_boundary_celsius(f64::NAN);
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(ThermalNetworkBuilder::new(25.0).build(), Err(ThermalError::Empty));
    }

    #[test]
    fn build_rejects_bad_capacitance() {
        let mut b = ThermalNetworkBuilder::new(25.0);
        b.add_node("die", 0.0);
        assert!(matches!(
            b.build(),
            Err(ThermalError::BadNodeParameter { .. })
        ));
    }

    #[test]
    fn build_rejects_ungrounded_node() {
        let mut b = ThermalNetworkBuilder::new(25.0);
        let a = b.add_node("a", 1.0);
        let c = b.add_node("floating", 1.0);
        b.connect_ambient(a, 1.0);
        let _ = c;
        match b.build() {
            Err(ThermalError::NotGroundedToAmbient { nodes }) => {
                assert_eq!(nodes, vec!["floating".to_string()]);
            }
            other => panic!("expected NotGroundedToAmbient, got {other:?}"),
        }
    }

    #[test]
    fn build_rejects_self_loop() {
        let mut b = ThermalNetworkBuilder::new(25.0);
        let a = b.add_node("a", 1.0);
        b.connect(a, a, 1.0);
        b.connect_ambient(a, 1.0);
        assert!(matches!(b.build(), Err(ThermalError::BadConductance { .. })));
    }

    #[test]
    fn build_rejects_nonpositive_conductance() {
        let mut b = ThermalNetworkBuilder::new(25.0);
        let a = b.add_node("a", 1.0);
        b.connect_ambient(a, -1.0);
        assert!(matches!(b.build(), Err(ThermalError::BadConductance { .. })));
    }

    #[test]
    fn error_display_is_informative() {
        let err = ThermalError::NotGroundedToAmbient {
            nodes: vec!["die0".into()],
        };
        assert!(err.to_string().contains("die0"));
    }

    #[test]
    fn advance_zero_is_noop() {
        let (mut net, die, _) = two_pole();
        net.set_power(die, 40.0);
        let before = net.temperatures().to_vec();
        net.advance(SimDuration::ZERO);
        assert_eq!(net.temperatures(), before.as_slice());
    }

    #[test]
    fn step_size_independence() {
        // Advancing 10 s in one call or in 1000 calls must agree (the
        // scheduler produces irregular event-driven step sizes).
        let (mut a, die, _) = two_pole();
        a.set_power(die, 40.0);
        let mut b = a.clone();
        a.advance(SimDuration::from_secs(10));
        for _ in 0..1000 {
            b.advance(SimDuration::from_millis(10));
        }
        // The exponential-Euler coupling error differs slightly between
        // step patterns; a few hundredths of a degree on a ~25 degree rise
        // is far below anything the experiments resolve.
        for (x, y) in a.temperatures().iter().zip(b.temperatures()) {
            assert!((x - y).abs() < 0.05, "{x} vs {y}");
        }
    }

    #[test]
    fn clone_shares_topology() {
        let (net, _, _) = two_pole();
        let fork = net.clone();
        assert!(net.shares_topology(&fork));
        assert_eq!(net, fork);
        // Independently built twins are value-equal but not shared.
        let (twin, _, _) = two_pole();
        assert!(!net.shares_topology(&twin));
        assert_eq!(net, twin);
    }

    #[test]
    fn packed_rows_mirror_dense_structure() {
        // two_pole: die--pkg edge only => each row has exactly one entry.
        let (net, _, _) = two_pole();
        let topo = &*net.topo;
        assert_eq!(topo.row_offsets, vec![0, 1, 2]);
        assert_eq!(topo.cols, vec![1, 0]);
        assert_eq!(topo.vals, vec![2.0, 2.0]);
        assert_eq!(topo.ell_slots, 1);
        assert_eq!(topo.ell_cols, vec![1, 0]);
        assert_eq!(topo.ell_vals, vec![2.0, 2.0]);
    }

    #[test]
    fn snapshot_restore_roundtrip_is_bit_exact() {
        let (mut net, die, _) = two_pole();
        net.set_power(die, 40.0);
        net.advance(SimDuration::from_secs(3));
        let snap = net.snapshot();

        // Run forward from the snapshot and record the trajectory.
        let mut first = net.clone();
        first.advance(SimDuration::from_secs(5));

        // Diverge (different power, different substep remainders, which
        // also pollutes the decay cache), then rewind and replay.
        net.set_power(die, 5.0);
        net.advance(SimDuration::from_secs_f64(1.2345));
        net.restore(&snap);
        net.advance(SimDuration::from_secs(5));

        for (a, b) in net.temperatures().iter().zip(first.temperatures()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn decay_cache_invalidated_across_substep_lengths() {
        // Interleave advances whose remainders require different decay
        // factors; a stale cache would reuse the wrong exp(). Compare
        // against fresh clones that compute each length cold.
        let (mut warm, die, _) = two_pole();
        warm.set_power(die, 40.0);
        let base = warm.clone();
        let durations = [0.017, 0.003, 0.017, 0.0501, 0.003];
        let mut elapsed = Vec::new();
        for &secs in &durations {
            elapsed.push(secs);
            warm.advance(SimDuration::from_secs_f64(secs));
            // A cold network replaying the same sequence from scratch must
            // land on identical bits even though its cache history differs.
            let mut cold = base.clone();
            for &s in &elapsed {
                cold.advance(SimDuration::from_secs_f64(s));
            }
            for (a, b) in warm.temperatures().iter().zip(cold.temperatures()) {
                assert_eq!(a.to_bits(), b.to_bits(), "after {elapsed:?}: {a} vs {b}");
            }
        }
    }

    proptest! {
        // The integration proptests advance hundreds of simulated seconds
        // per case; a few dozen cases give the coverage without minutes of
        // wall clock.
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Temperatures never escape the [ambient, max steady state]
        /// envelope when heating from ambient.
        #[test]
        fn prop_temperatures_bounded(power in 0.0f64..200.0, secs in 0u64..500) {
            let (mut net, die, _) = two_pole();
            net.set_power(die, power);
            let ss_max = net.steady_state().iter().copied().fold(f64::MIN, f64::max);
            net.advance(SimDuration::from_secs(secs));
            for &t in net.temperatures() {
                prop_assert!(t >= 25.0 - 1e-9);
                prop_assert!(t <= ss_max + 1e-6);
            }
        }

        /// More power never produces lower temperatures (monotonicity).
        #[test]
        fn prop_monotone_in_power(p1 in 0.0f64..100.0, extra in 0.1f64..100.0, secs in 1u64..200) {
            let (mut low, die, _) = two_pole();
            let mut high = low.clone();
            low.set_power(die, p1);
            high.set_power(die, p1 + extra);
            low.advance(SimDuration::from_secs(secs));
            high.advance(SimDuration::from_secs(secs));
            for (&l, &h) in low.temperatures().iter().zip(high.temperatures()) {
                prop_assert!(h >= l - 1e-9, "power monotonicity violated: {} vs {}", l, h);
            }
        }

        /// Steady state is invariant to how you reach it.
        #[test]
        fn prop_steady_state_is_attractor(power in 1.0f64..100.0, init in -20.0f64..150.0) {
            let (mut net, die, pkg) = two_pole();
            net.set_power(die, power);
            net.set_temperature(die, init);
            net.set_temperature(pkg, init);
            let ss = net.steady_state();
            net.advance(SimDuration::from_secs(3000));
            prop_assert!((net.temperature(die) - ss[0]).abs() < 0.1);
            prop_assert!((net.temperature(pkg) - ss[1]).abs() < 0.1);
        }

        /// Snapshot → restore → advance matches an uninterrupted run
        /// bit-for-bit for arbitrary power/duration splits.
        #[test]
        fn prop_restore_then_advance_is_bit_identical(
            power in 0.0f64..150.0,
            pre_ms in 1u64..5_000,
            post_ms in 1u64..5_000,
            detour_ms in 1u64..5_000,
        ) {
            let (mut net, die, _) = two_pole();
            net.set_power(die, power);
            net.advance(SimDuration::from_millis(pre_ms));
            let snap = net.snapshot();

            let mut straight = net.clone();
            straight.advance(SimDuration::from_millis(post_ms));

            net.set_power(die, power * 0.5);
            net.advance(SimDuration::from_millis(detour_ms));
            net.restore(&snap);
            net.advance(SimDuration::from_millis(post_ms));

            for (a, b) in net.temperatures().iter().zip(straight.temperatures()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
