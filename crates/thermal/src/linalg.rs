//! Minimal dense linear algebra for small thermal networks.
//!
#![allow(clippy::needless_range_loop)] // dense small-matrix kernels index by design
//! Thermal networks in this workspace have a handful of nodes (four dies, a
//! package, a heatsink), so a straightforward Gaussian elimination with
//! partial pivoting is both sufficient and dependency-free.

/// A small dense square matrix stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n x n` zero matrix.
    pub(crate) fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    #[cfg(test)]
    pub(crate) fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    pub(crate) fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    pub(crate) fn add_to(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Returns `None` if the matrix is (numerically) singular.
    pub(crate) fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot: largest magnitude in this column at or below
            // the diagonal.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[r1 * n + col].abs().total_cmp(&a[r2 * n + col].abs()))
                .unwrap_or(col);
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-30 {
                return None;
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                x.swap(col, pivot_row);
            }
            for row in (col + 1)..n {
                let factor = a[row * n + col] / pivot;
                // simlint::allow(D4): exact zero-skip on purpose — this is a
                // no-op fast path, and any nonzero factor (however tiny)
                // must still be eliminated for correctness.
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }

        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for k in (col + 1)..n {
                sum -= a[col * n + k] * x[k];
            }
            x[col] = sum / a[col * n + col];
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_identity() {
        let mut m = Matrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // 0x + y = 2; x + 0y = 3 -> needs a row swap.
        let mut m = Matrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 2.0);
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    proptest! {
        /// For diagonally dominant matrices (which conductance matrices
        /// are), solve() residual is tiny.
        #[test]
        fn prop_residual_small(
            n in 2usize..6,
            seed in any::<u64>(),
        ) {
            let mut rng = dimetrodon_sim_core::SimRng::new(seed);
            let mut m = Matrix::zeros(n);
            for i in 0..n {
                let mut off_sum = 0.0;
                for j in 0..n {
                    if i != j {
                        let v = rng.uniform();
                        m.set(i, j, -v);
                        off_sum += v;
                    }
                }
                m.set(i, i, off_sum + rng.uniform_range(0.1, 2.0));
            }
            let b: Vec<f64> = (0..n).map(|_| rng.uniform_range(-10.0, 10.0)).collect();
            let x = m.solve(&b).expect("diagonally dominant => solvable");
            for i in 0..n {
                let mut ax = 0.0;
                for j in 0..n {
                    ax += m.get(i, j) * x[j];
                }
                prop_assert!((ax - b[i]).abs() < 1e-8, "row {} residual {}", i, ax - b[i]);
            }
        }
    }
}
