//! AVX2 substep kernel (`simd` cargo feature, x86_64 only).
//!
//! The vector kernel processes four nodes per iteration over the
//! topology's slot-major padded neighbour list: lane = node, slot =
//! neighbour rank. Each slot gathers four neighbour temperatures, forms
//! the products with separate multiply and add (no FMA — fusing would
//! change rounding versus the scalar kernel), and accumulates into a
//! per-node register. Because every node's products are summed in the same
//! neighbour order as the packed scalar walk, and the padding slots
//! contribute exact `±0.0`, the vector result matches the scalar kernel
//! bit-for-bit for physical temperatures; the property tests bound any
//! residual divergence at one ULP per substep.
//!
//! Dispatch is at runtime: [`avx2_active`] consults the CPU once (the
//! detection macro caches) and honours a process-wide override so tests
//! and benchmarks can pin the scalar path inside a `simd`-enabled build.

use std::arch::x86_64::{
    __m256i, _mm256_add_pd, _mm256_div_pd, _mm256_i64gather_pd, _mm256_loadu_pd,
    _mm256_loadu_si256, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd, _mm256_sub_pd,
};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::network::Topology;

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Pins the integrator to the scalar kernel even when AVX2 is available.
///
/// For benchmarks and differential tests that want both paths in one
/// process. Process-wide; affects every network.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether the next substep will take the vector path: AVX2 present and
/// not overridden by [`force_scalar`].
pub fn avx2_active() -> bool {
    !FORCE_SCALAR.load(Ordering::Relaxed) && is_x86_feature_detected!("avx2")
}

/// Safe entry point for the vector substep: runs the AVX2 kernel when the
/// dispatch check passes and reports whether it did. Keeps the one
/// `unsafe` call in this module, next to the kernel it guards — callers
/// (the integrator in `network.rs`) stay entirely safe code.
pub(crate) fn substep_vector(
    topo: &Topology,
    boundary: f64,
    old: &[f64],
    powers: &[f64],
    decay: &[f64],
    new: &mut [f64],
) -> bool {
    if !avx2_active() {
        return false;
    }
    // SAFETY: avx2_active() just verified the CPU supports AVX2, which is
    // the only precondition of the target_feature kernel; all slices come
    // from the same network, so the topology's padded indices are in
    // bounds for `old`.
    unsafe { substep_avx2(topo, boundary, old, powers, decay, new) };
    true
}

/// One exponential-Euler substep over the padded slot-major structure.
///
/// # Safety
///
/// The CPU must support AVX2 (guard with [`avx2_active`]).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn substep_avx2(
    topo: &Topology,
    boundary: f64,
    old: &[f64],
    powers: &[f64],
    decay: &[f64],
    new: &mut [f64],
) {
    let n = new.len();
    let blocks = n / 4;
    let amb = _mm256_set1_pd(boundary);
    for b in 0..blocks {
        let i = b * 4;
        let mut acc = _mm256_set1_pd(0.0);
        for k in 0..topo.ell_slots {
            let slot = k * n + i;
            let g = _mm256_loadu_pd(topo.ell_vals.as_ptr().add(slot));
            let idx = _mm256_loadu_si256(topo.ell_cols.as_ptr().add(slot) as *const __m256i);
            let t = _mm256_i64gather_pd::<8>(old.as_ptr(), idx);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(g, t));
        }
        let amb_g = _mm256_loadu_pd(topo.ambient_conductance.as_ptr().add(i));
        let neighbour_heat = _mm256_add_pd(acc, _mm256_mul_pd(amb_g, amb));
        let p = _mm256_loadu_pd(powers.as_ptr().add(i));
        let g_tot = _mm256_loadu_pd(topo.total_conductance.as_ptr().add(i));
        let t_eq = _mm256_div_pd(_mm256_add_pd(p, neighbour_heat), g_tot);
        let t_old = _mm256_loadu_pd(old.as_ptr().add(i));
        let d = _mm256_loadu_pd(decay.as_ptr().add(i));
        let t_new = _mm256_add_pd(t_eq, _mm256_mul_pd(_mm256_sub_pd(t_old, t_eq), d));
        _mm256_storeu_pd(new.as_mut_ptr().add(i), t_new);
    }
    // Remainder nodes take the scalar expression over the packed rows,
    // which is the identical sum.
    let tail = blocks * 4;
    if tail < n {
        scalar_tail(topo, boundary, old, powers, decay, new, tail);
    }
}

/// Scalar kernel over nodes `start..n` (the sub-4 remainder of a block).
fn scalar_tail(
    topo: &Topology,
    boundary: f64,
    old: &[f64],
    powers: &[f64],
    decay: &[f64],
    new: &mut [f64],
    start: usize,
) {
    for (i, out) in new.iter_mut().enumerate().skip(start) {
        let g_tot = topo.total_conductance[i];
        let mut neighbour_heat = 0.0;
        for k in topo.row_offsets[i] as usize..topo.row_offsets[i + 1] as usize {
            neighbour_heat += topo.vals[k] * old[topo.cols[k] as usize];
        }
        let neighbour_heat = neighbour_heat + topo.ambient_conductance[i] * boundary;
        let t_eq = (powers[i] + neighbour_heat) / g_tot;
        *out = t_eq + (old[i] - t_eq) * decay[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, ThermalNetwork, ThermalNetworkBuilder};
    use dimetrodon_sim_core::{SimDuration, SimRng};
    use proptest::prelude::*;

    /// Distance in representable doubles between two finite values of the
    /// same sign (0 when bit-identical).
    fn ulp_diff(a: f64, b: f64) -> u64 {
        if a.to_bits() == b.to_bits() {
            return 0;
        }
        let to_ordered = |x: f64| {
            let bits = x.to_bits() as i64;
            if bits < 0 { i64::MIN.wrapping_sub(bits) } else { bits }
        };
        to_ordered(a).abs_diff(to_ordered(b))
    }

    /// A random grounded network: a spanning tree to node 0 (which touches
    /// ambient) plus extra edges, random capacitances and powers.
    fn random_network(seed: u64, n: usize) -> (ThermalNetwork, Vec<NodeId>) {
        let mut rng = SimRng::new(seed);
        let mut b = ThermalNetworkBuilder::new(rng.uniform_range(15.0, 35.0));
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(format!("n{i}"), rng.uniform_range(0.1, 50.0)))
            .collect();
        b.connect_ambient(nodes[0], rng.uniform_range(0.05, 2.0));
        for i in 1..n {
            let j = ((rng.uniform() * i as f64) as usize).min(i - 1);
            b.connect(nodes[i], nodes[j], rng.uniform_range(0.05, 5.0));
            if rng.uniform() < 0.3 {
                b.connect_ambient(nodes[i], rng.uniform_range(0.05, 2.0));
            }
        }
        for _ in 0..n {
            let a = ((rng.uniform() * n as f64) as usize).min(n - 1);
            let c = ((rng.uniform() * n as f64) as usize).min(n - 1);
            if a != c {
                b.connect(nodes[a], nodes[c], rng.uniform_range(0.05, 5.0));
            }
        }
        let mut net = b.build().unwrap();
        for &node in &nodes {
            net.set_power(node, rng.uniform_range(0.0, 80.0));
        }
        (net, nodes)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The vector kernel matches the scalar kernel within 1 ULP per
        /// node per advance on randomized networks (in practice: exactly,
        /// because both sum each row's products in the same order).
        #[test]
        fn prop_simd_matches_scalar_within_one_ulp(
            seed in any::<u64>(),
            n in 2usize..24,
            steps in 1usize..30,
            dt_ms in 1u64..400,
        ) {
            if !is_x86_feature_detected!("avx2") {
                return Ok(());
            }
            let (net, _) = random_network(seed, n);
            let mut scalar = net.clone();
            let mut vector = net;
            let dt = SimDuration::from_millis(dt_ms);
            for _ in 0..steps {
                force_scalar(true);
                scalar.advance(dt);
                force_scalar(false);
                vector.advance(dt);
                for (a, b) in scalar.temperatures().iter().zip(vector.temperatures()) {
                    prop_assert!(
                        ulp_diff(*a, *b) <= 1,
                        "scalar {a} vs simd {b} ({} ULP)", ulp_diff(*a, *b)
                    );
                }
                // Resync so the bound stays per-advance, not cumulative.
                vector.restore(&scalar.snapshot());
            }
            force_scalar(false);
        }
    }
}
