//! Step-response characterisation helpers.
//!
//! These utilities probe a [`ThermalNetwork`](crate::ThermalNetwork) the way
//! the paper probes hardware: drive it with a power step and record the
//! trajectory, or measure how much a hot node cools during an idle window
//! of a given length. The latter is the physical quantity behind Figure 3's
//! efficiency curves.

use dimetrodon_sim_core::{SimDuration, SimTime, TimeSeries};

use crate::network::{NodeId, ThermalNetwork};

/// Records a node's temperature trajectory while a constant power is
/// applied to it, sampling every `sample_every`.
///
/// The network is cloned; the caller's instance is not modified.
///
/// # Panics
///
/// Panics if `sample_every` is zero.
pub fn step_response(
    network: &ThermalNetwork,
    node: NodeId,
    power_w: f64,
    duration: SimDuration,
    sample_every: SimDuration,
) -> TimeSeries {
    assert!(!sample_every.is_zero(), "sample interval must be positive");
    let mut net = network.clone();
    net.set_power(node, power_w);
    let mut series = TimeSeries::new(format!("{}_step", net.node_name(node)));
    let mut now = SimTime::ZERO;
    let end = SimTime::ZERO + duration;
    series.push(now, net.temperature(node));
    while now < end {
        net.advance(sample_every);
        now += sample_every;
        series.push(now, net.temperature(node));
    }
    series
}

/// How far a node's temperature falls during an idle window of length
/// `window`, starting from the steady state of `hot_power_w` applied at the
/// node, in °C.
///
/// The network is cloned; the caller's instance is not modified.
pub fn cooling_drop(
    network: &ThermalNetwork,
    node: NodeId,
    hot_power_w: f64,
    idle_power_w: f64,
    window: SimDuration,
) -> f64 {
    let mut net = network.clone();
    net.set_power(node, hot_power_w);
    net.settle();
    let hot = net.temperature(node);
    net.set_power(node, idle_power_w);
    net.advance(window);
    hot - net.temperature(node)
}

/// Cooling efficiency of an idle window: temperature drop per second of
/// idle time (°C/s). Short windows score higher on a network with a fast
/// die pole — the paper's central observation.
pub fn cooling_efficiency(
    network: &ThermalNetwork,
    node: NodeId,
    hot_power_w: f64,
    idle_power_w: f64,
    window: SimDuration,
) -> f64 {
    cooling_drop(network, node, hot_power_w, idle_power_w, window) / window.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ThermalNetworkBuilder;

    fn die_pkg() -> (ThermalNetwork, NodeId) {
        let mut b = ThermalNetworkBuilder::new(25.0);
        let die = b.add_node("die", 0.5);
        let pkg = b.add_node("pkg", 100.0);
        b.connect(die, pkg, 2.0);
        b.connect_ambient(pkg, 1.0);
        (b.build().unwrap(), die)
    }

    #[test]
    fn step_response_rises_monotonically() {
        let (net, die) = die_pkg();
        let series = step_response(
            &net,
            die,
            40.0,
            SimDuration::from_secs(10),
            SimDuration::from_millis(100),
        );
        let values: Vec<f64> = series.iter().map(|(_, v)| v).collect();
        assert!(values.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        assert!(values[0] == 25.0);
        assert!(*values.last().unwrap() > 40.0);
    }

    #[test]
    fn step_response_sample_count() {
        let (net, die) = die_pkg();
        let series = step_response(
            &net,
            die,
            10.0,
            SimDuration::from_secs(1),
            SimDuration::from_millis(100),
        );
        assert_eq!(series.len(), 11); // t=0 plus 10 samples
    }

    #[test]
    fn cooling_drop_increases_with_window() {
        let (net, die) = die_pkg();
        let short = cooling_drop(&net, die, 40.0, 0.0, SimDuration::from_millis(25));
        let long = cooling_drop(&net, die, 40.0, 0.0, SimDuration::from_millis(500));
        assert!(long > short);
    }

    #[test]
    fn cooling_efficiency_favours_short_windows() {
        // Figure 3's physical basis: °C of cooling per idle second falls
        // as the window grows.
        let (net, die) = die_pkg();
        let e_short = cooling_efficiency(&net, die, 40.0, 0.0, SimDuration::from_millis(10));
        let e_mid = cooling_efficiency(&net, die, 40.0, 0.0, SimDuration::from_millis(100));
        let e_long = cooling_efficiency(&net, die, 40.0, 0.0, SimDuration::from_millis(1000));
        assert!(e_short > e_mid && e_mid > e_long, "{e_short} > {e_mid} > {e_long}");
    }

    #[test]
    fn probes_do_not_mutate_input() {
        let (mut net, die) = die_pkg();
        net.set_power(die, 40.0);
        net.settle();
        let before = net.temperatures().to_vec();
        let _ = step_response(&net, die, 80.0, SimDuration::from_secs(1), SimDuration::from_millis(100));
        let _ = cooling_drop(&net, die, 40.0, 0.0, SimDuration::from_millis(100));
        assert_eq!(net.temperatures(), before.as_slice());
    }

    #[test]
    fn idle_power_reduces_cooling() {
        let (net, die) = die_pkg();
        let full = cooling_drop(&net, die, 40.0, 0.0, SimDuration::from_millis(200));
        let partial = cooling_drop(&net, die, 40.0, 20.0, SimDuration::from_millis(200));
        assert!(full > partial);
    }
}
