//! Lumped RC thermal modelling for the Dimetrodon reproduction.
//!
//! The original paper measured die temperatures on a physical Xeon E5520
//! with FreeBSD's `coretemp`. This crate supplies the substitute: a lumped
//! resistance–capacitance thermal network in the HotSpot tradition, small
//! enough to integrate inside a discrete-event scheduler simulation but
//! structured enough to reproduce the paper's central thermal phenomenon —
//! *silicon cools exponentially fast over short windows, while the package
//! and heatsink respond over seconds to minutes*, which is why short
//! injected idle quanta are so much more efficient than long ones
//! (paper §3.4, Figure 3).
//!
//! A network is built with [`ThermalNetworkBuilder`]: nodes carry heat
//! capacities (J/K), edges carry conductances (W/K), and one distinguished
//! ambient node holds a fixed temperature (the paper's 25.2 °C thermostat
//! setpoint). Heat is injected at nodes in watts and the network is
//! advanced through time with an unconditionally stable exponential-Euler
//! integrator, so the event-driven caller may use arbitrary step sizes.
//!
//! # Examples
//!
//! ```
//! use dimetrodon_sim_core::SimDuration;
//! use dimetrodon_thermal::ThermalNetworkBuilder;
//!
//! # fn main() -> Result<(), dimetrodon_thermal::ThermalError> {
//! // A die with a fast time constant behind a slow package.
//! let mut builder = ThermalNetworkBuilder::new(25.2);
//! let die = builder.add_node("die", 0.5);
//! let pkg = builder.add_node("package", 120.0);
//! builder.connect(die, pkg, 2.0);
//! builder.connect_ambient(pkg, 1.2);
//! let mut network = builder.build()?;
//!
//! network.set_power(die, 20.0);
//! network.advance(SimDuration::from_secs(2));
//! assert!(network.temperature(die) > network.temperature(pkg));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod linalg;
mod network;
mod response;
mod rk4;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod simd;

pub use network::{NodeId, ThermalError, ThermalNetwork, ThermalNetworkBuilder, ThermalSnapshot};
pub use response::{cooling_drop, cooling_efficiency, step_response};
pub use rk4::rk4_reference;
