//! A classical Runge–Kutta (RK4) reference integrator.
//!
//! The production path integrates with exponential Euler (unconditionally
//! stable, exact per node). RK4 is kept as an *independent* high-order
//! reference: the cross-validation tests integrate the same network both
//! ways and require agreement, which guards against bugs in either
//! scheme's assembly of the conductance terms — the classic way a thermal
//! simulator silently goes wrong.

use dimetrodon_sim_core::SimDuration;

use crate::network::ThermalNetwork;

/// Integrates a copy of `network` for `dt` using classical RK4 with the
/// given fixed step, returning the final temperatures.
///
/// This is a verification tool, not the production integrator: explicit
/// RK4 is only stable for steps well below the fastest time constant, so
/// `step` must be chosen accordingly (the tests use τ/20).
///
/// # Panics
///
/// Panics if `step` is zero.
pub fn rk4_reference(network: &ThermalNetwork, dt: SimDuration, step: SimDuration) -> Vec<f64> {
    assert!(!step.is_zero(), "RK4 step must be positive");
    let n = network.node_count();
    let mut temps: Vec<f64> = network.temperatures().to_vec();
    let h = step.as_secs_f64();
    let total = dt.as_secs_f64();

    // dT/dt = C⁻¹ (P − G·ΔT), evaluated from the network's topology.
    let derivative = |temps: &[f64]| -> Vec<f64> { network.heat_flow_derivative(temps) };

    let mut t = 0.0;
    while t < total {
        let h_eff = h.min(total - t);
        let k1 = derivative(&temps);
        let k2 = derivative(&add_scaled(&temps, &k1, h_eff / 2.0));
        let k3 = derivative(&add_scaled(&temps, &k2, h_eff / 2.0));
        let k4 = derivative(&add_scaled(&temps, &k3, h_eff));
        for i in 0..n {
            temps[i] += h_eff / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h_eff;
    }
    temps
}

fn add_scaled(base: &[f64], delta: &[f64], factor: f64) -> Vec<f64> {
    base.iter()
        .zip(delta)
        .map(|(&b, &d)| b + d * factor)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ThermalNetworkBuilder;

    fn network() -> ThermalNetwork {
        let mut b = ThermalNetworkBuilder::new(25.0);
        let hotspot = b.add_node("hotspot", 0.002);
        let die = b.add_node("die", 0.15);
        let pkg = b.add_node("pkg", 100.0);
        b.connect(hotspot, die, 1.3);
        b.connect(die, pkg, 5.0);
        b.connect_ambient(pkg, 5.0);
        let mut net = b.build().unwrap();
        net.set_power(hotspot, 7.0);
        net.set_power(die, 8.0);
        net
    }

    #[test]
    fn exponential_euler_matches_rk4() {
        // Integrate one second both ways; the schemes are independent, so
        // agreement validates the conductance assembly.
        let net = network();
        // RK4 with a step well under the hotspot tau (~1.5 ms).
        let reference = rk4_reference(
            &net,
            SimDuration::from_secs(1),
            SimDuration::from_micros(75),
        );
        let mut euler = net.clone();
        euler.advance(SimDuration::from_secs(1));
        for (i, (&r, &e)) in reference.iter().zip(euler.temperatures()).enumerate() {
            assert!(
                (r - e).abs() < 0.05,
                "node {i}: RK4 {r} vs exponential Euler {e}"
            );
        }
    }

    #[test]
    fn rk4_reaches_the_same_steady_state() {
        let net = network();
        let ss = net.steady_state();
        let reference = rk4_reference(
            &net,
            SimDuration::from_secs(400),
            SimDuration::from_micros(150),
        );
        for (i, (&r, &s)) in reference.iter().zip(&ss).enumerate() {
            assert!((r - s).abs() < 0.05, "node {i}: RK4 {r} vs steady state {s}");
        }
    }

    #[test]
    #[should_panic(expected = "RK4 step must be positive")]
    fn zero_step_panics() {
        rk4_reference(&network(), SimDuration::from_secs(1), SimDuration::ZERO);
    }
}
