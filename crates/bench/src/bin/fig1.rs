//! Regenerates Figure 1: race-to-idle versus Dimetrodon power traces.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin fig1
//! ```

use dimetrodon_analysis::Table;
use dimetrodon_bench::{banner, run_config_from_args, write_csv};
use dimetrodon_harness::experiments::fig1::{self, Fig1Data};

fn main() -> std::process::ExitCode {
    banner(
        "Figure 1",
        "race-to-idle vs Dimetrodon power consumption (4-thread cpuburn burst)",
    );
    let config = run_config_from_args(101);
    let data = fig1::run(config.seed);

    println!(
        "window: {:.1} s | energy: race-to-idle {:.1} J, dimetrodon {:.1} J (ratio {:.3})",
        data.window_secs,
        data.race_to_idle_joules,
        data.dimetrodon_joules,
        data.dimetrodon_joules / data.race_to_idle_joules,
    );
    println!(
        "mean power while computing: race-to-idle {:.1} W, dimetrodon {:.1} W",
        Fig1Data::mean_active_power(&data.race_to_idle, 20.0),
        Fig1Data::mean_active_power(&data.dimetrodon, 20.0),
    );
    println!(
        "distinct power levels (8 W buckets): race-to-idle {}, dimetrodon {} \
         (the paper's four intermediate plateaus)",
        Fig1Data::plateau_count(&data.race_to_idle, 8.0),
        Fig1Data::plateau_count(&data.dimetrodon, 8.0),
    );

    // Decimated trace for the CSV (full traces are ~3800 samples each).
    let mut table = Table::new(vec!["time_s", "race_to_idle_w", "dimetrodon_w"]);
    let stride = 10;
    for i in (0..data.race_to_idle.len().min(data.dimetrodon.len())).step_by(stride) {
        table.row(vec![
            format!("{:.3}", data.race_to_idle[i].0),
            format!("{:.2}", data.race_to_idle[i].1),
            format!("{:.2}", data.dimetrodon[i].1),
        ]);
    }
    write_csv("fig1_power_traces", &table);

    dimetrodon_bench::supervision_epilogue()
}
