//! Regenerates the fleet comparison: every cluster routing policy over
//! the same rack-coupled fleet and the same offered load, reporting
//! per-rack peak/RMS temperature, trip counts, and tail latency.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin fleet            # 256 machines
//! cargo run --release -p dimetrodon-bench --bin fleet -- --quick # 32 machines
//! cargo run --release -p dimetrodon-bench --bin fleet -- --machines 1024 --jobs 4
//! cargo run --release -p dimetrodon-bench --bin fleet -- --chaos-plan plan.txt
//! cargo run --release -p dimetrodon-bench --bin fleet -- --chaos # failure sweep
//! ```
//!
//! `--chaos-plan FILE` injects a fleet fault plan (machine crashes, rack
//! CRAC failures, controller wedges) into the standard comparison;
//! `--chaos` instead sweeps synthetic failure intensity × routing policy
//! and writes the availability table to `results/fleet_chaos.csv`. Like
//! every sweep-shaped binary, output is bit-identical at every `--jobs`
//! count, and a killed run resumes from its journal with `--resume`
//! (disable journaling with `--no-journal`; prune old journals with
//! `--journal-gc K`).
//!
//! The standard comparison also writes durable mid-run checkpoints
//! under `results/.ckpt/` every 50 control epochs (`--checkpoint-every
//! N` to change, `--no-checkpoint` to disable). After a kill,
//! `--restore` resumes each unfinished policy variant from its newest
//! verifiable checkpoint — corrupt files are skipped, and the restored
//! run's remaining epochs produce byte-identical CSV to an
//! uninterrupted run.

use dimetrodon_bench::{
    apply_common_args, apply_journal_gc_from_args, banner, checkpoint_args, ckpt_dir,
    quick_requested, results_dir, write_csv,
};
use dimetrodon_fleet::{
    chaos_comparison, chaos_table, fleet_comparison_checkpointed, fleet_table, ChaosGrid,
    ChaosJournal, CheckpointSpec, FleetConfig, FleetJournal, DEFAULT_INTENSITIES,
    QUICK_INTENSITIES, RECOVERY_HYSTERESIS_EPOCHS,
};

fn main() -> std::process::ExitCode {
    banner(
        "fleet",
        "cluster routing policies over a rack-coupled fleet; placement as a thermal knob",
    );
    apply_common_args();
    let args: Vec<String> = std::env::args().collect();
    let seed = match args.iter().position(|a| a == "--seed") {
        Some(pos) => args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--seed requires an integer"),
        None => 211,
    };
    let quick = quick_requested();
    let machines = match args.iter().position(|a| a == "--machines") {
        Some(pos) => {
            let n: usize = args
                .get(pos + 1)
                .and_then(|s| s.parse().ok())
                .expect("--machines requires a positive integer");
            assert!(n > 0, "--machines requires a positive integer");
            n
        }
        None if quick => 32,
        None => 256,
    };
    let mut config = FleetConfig::rack_scale(machines, seed);
    if quick {
        config.duration = FleetConfig::quick(seed).duration;
    }
    let chaos_sweep = args.iter().any(|a| a == "--chaos");
    if let Some(pos) = args.iter().position(|a| a == "--chaos-plan") {
        assert!(
            !chaos_sweep,
            "--chaos-plan and --chaos are mutually exclusive"
        );
        let path = args.get(pos + 1).expect("--chaos-plan requires a file path");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--chaos-plan: read {path}: {e}"));
        config.chaos = text
            .parse()
            .unwrap_or_else(|e| panic!("--chaos-plan: {path}: {e}"));
        println!(
            "chaos plan: {} event(s) from {path}, on-crash {}",
            config.chaos.events().len(),
            config.chaos.on_crash().name()
        );
    }
    println!(
        "{} machines in {} racks, {} tenants, {} epochs per policy",
        config.machines,
        config.racks(),
        config.tenants,
        config.epochs()
    );

    let no_journal = args.iter().any(|a| a == "--no-journal");
    let resume = args.iter().any(|a| a == "--resume");
    if chaos_sweep {
        let intensities = if quick {
            QUICK_INTENSITIES.to_vec()
        } else {
            DEFAULT_INTENSITIES.to_vec()
        };
        println!(
            "chaos sweep: {} failure intensities x {} routing policies (failover hysteresis {} epochs)",
            intensities.len(),
            dimetrodon_fleet::PolicyKind::ALL.len(),
            RECOVERY_HYSTERESIS_EPOCHS
        );
        let grid = ChaosGrid::new(config, intensities);
        let journal = if no_journal {
            None
        } else {
            Some(ChaosJournal::open(
                &results_dir().join(".journal"),
                &grid,
                resume,
            ))
        };
        let outcomes = chaos_comparison(&grid, journal.as_ref());
        let replayed = outcomes.iter().filter(|o| o.replayed).count();
        if replayed > 0 {
            println!("[resume: {replayed} chaos point(s) replayed from journal]");
        }
        let table = chaos_table(&outcomes);
        println!("{}", table.render());
        write_csv("fleet_chaos", &table);
        let worst_shed = outcomes
            .iter()
            .map(|o| o.metrics.shed_fraction)
            .fold(0.0f64, f64::max);
        println!(
            "\nWorst shed fraction {:.2}% across the grid; intensity 0 rows are the \
             no-failure control.",
            100.0 * worst_shed
        );
        return dimetrodon_bench::supervision_epilogue();
    }

    let journal = if no_journal {
        None
    } else {
        Some(FleetJournal::open(
            &results_dir().join(".journal"),
            config.fingerprint(),
            resume,
        ))
    };
    let ckpt = checkpoint_args(&args);
    let spec = if ckpt.disabled {
        None
    } else {
        let mut spec = CheckpointSpec::new(&ckpt_dir());
        if let Some(every) = ckpt.every {
            spec.every_epochs = every;
        }
        spec.restore = ckpt.restore;
        Some(spec)
    };
    let outcomes = match fleet_comparison_checkpointed(
        dimetrodon_harness::sweep::jobs(),
        &config,
        journal.as_ref(),
        spec.as_ref(),
    ) {
        Ok(outcomes) => outcomes,
        Err(err) => {
            eprintln!("checkpoint restore failed: {err}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let replayed = outcomes.iter().filter(|o| o.replayed).count();
    if replayed > 0 {
        println!("[resume: {replayed} policy variant(s) replayed from journal]");
    }
    apply_journal_gc_from_args(&args, &[config.fingerprint()]);

    let table = fleet_table(&outcomes);
    println!("{}", table.render());
    write_csv("fleet", &table);

    let fleet_peak = |outcome: &dimetrodon_fleet::FleetOutcome| {
        outcome
            .reports
            .iter()
            .map(|r| r.peak_celsius)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    if let Some(coolest) = outcomes
        .iter()
        .min_by(|a, b| fleet_peak(a).total_cmp(&fleet_peak(b)))
    {
        println!(
            "\nCoolest peak: {} at {:.2} C; total trips per policy: {}.",
            coolest.policy.name(),
            fleet_peak(coolest),
            outcomes
                .iter()
                .map(|o| format!(
                    "{} {}",
                    o.policy.name(),
                    o.reports.iter().map(|r| r.trips).sum::<u64>()
                ))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    println!(
        "Thermal-aware placement flattens rack temperature at some queueing \
         cost; the per-rack p99 column prices that trade."
    );

    dimetrodon_bench::supervision_epilogue()
}
