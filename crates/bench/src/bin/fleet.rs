//! Regenerates the fleet comparison: every cluster routing policy over
//! the same rack-coupled fleet and the same offered load, reporting
//! per-rack peak/RMS temperature, trip counts, and tail latency.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin fleet            # 256 machines
//! cargo run --release -p dimetrodon-bench --bin fleet -- --quick # 32 machines
//! cargo run --release -p dimetrodon-bench --bin fleet -- --machines 1024 --jobs 4
//! ```
//!
//! Like every sweep-shaped binary, output is bit-identical at every
//! `--jobs` count, and a killed run resumes from its journal with
//! `--resume` (disable journaling with `--no-journal`).

use dimetrodon_bench::{apply_common_args, banner, quick_requested, results_dir, write_csv};
use dimetrodon_fleet::{fleet_comparison, fleet_table, FleetConfig, FleetJournal};

fn main() -> std::process::ExitCode {
    banner(
        "fleet",
        "cluster routing policies over a rack-coupled fleet; placement as a thermal knob",
    );
    apply_common_args();
    let args: Vec<String> = std::env::args().collect();
    let seed = match args.iter().position(|a| a == "--seed") {
        Some(pos) => args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--seed requires an integer"),
        None => 211,
    };
    let quick = quick_requested();
    let machines = match args.iter().position(|a| a == "--machines") {
        Some(pos) => {
            let n: usize = args
                .get(pos + 1)
                .and_then(|s| s.parse().ok())
                .expect("--machines requires a positive integer");
            assert!(n > 0, "--machines requires a positive integer");
            n
        }
        None if quick => 32,
        None => 256,
    };
    let mut config = FleetConfig::rack_scale(machines, seed);
    if quick {
        config.duration = FleetConfig::quick(seed).duration;
    }
    println!(
        "{} machines in {} racks, {} tenants, {} epochs per policy",
        config.machines,
        config.racks(),
        config.tenants,
        config.epochs()
    );

    let journal = if args.iter().any(|a| a == "--no-journal") {
        None
    } else {
        let resume = args.iter().any(|a| a == "--resume");
        Some(FleetJournal::open(
            &results_dir().join(".journal"),
            config.fingerprint(),
            resume,
        ))
    };
    let outcomes = fleet_comparison(&config, journal.as_ref());
    let replayed = outcomes.iter().filter(|o| o.replayed).count();
    if replayed > 0 {
        println!("[resume: {replayed} policy variant(s) replayed from journal]");
    }

    let table = fleet_table(&outcomes);
    println!("{}", table.render());
    write_csv("fleet", &table);

    let fleet_peak = |outcome: &dimetrodon_fleet::FleetOutcome| {
        outcome
            .reports
            .iter()
            .map(|r| r.peak_celsius)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    if let Some(coolest) = outcomes
        .iter()
        .min_by(|a, b| fleet_peak(a).total_cmp(&fleet_peak(b)))
    {
        println!(
            "\nCoolest peak: {} at {:.2} C; total trips per policy: {}.",
            coolest.policy.name(),
            fleet_peak(coolest),
            outcomes
                .iter()
                .map(|o| format!(
                    "{} {}",
                    o.policy.name(),
                    o.reports.iter().map(|r| r.trips).sum::<u64>()
                ))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    println!(
        "Thermal-aware placement flattens rack temperature at some queueing \
         cost; the per-rack p99 column prices that trade."
    );

    dimetrodon_bench::supervision_epilogue()
}
