//! Regenerates the reproduction's sensitivity study: the Figure 3
//! efficiency knee as a function of the hotspot time constant.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin sensitivity
//! ```

use dimetrodon_analysis::Table;
use dimetrodon_bench::{banner, run_config_from_args, write_csv};
use dimetrodon_harness::experiments::sensitivity;

fn main() -> std::process::ExitCode {
    banner(
        "sensitivity",
        "efficiency-vs-L knee location as the hotspot time constant varies",
    );
    let config = run_config_from_args(112);
    let rows = sensitivity::run(config);

    let mut table = Table::new(vec!["tau_ms", "L_ms", "efficiency"]);
    for row in &rows {
        for &(l_ms, eff) in &row.curve {
            table.row(vec![
                format!("{:.1}", row.tau_ms),
                format!("{l_ms}"),
                format!("{eff:.2}"),
            ]);
        }
    }
    println!("{}", table.render());
    write_csv("sensitivity_hotspot_tau", &table);

    for row in &rows {
        match row.half_efficiency_l_ms() {
            Some(l) => println!(
                "tau = {:.1} ms: efficiency halves by L = {l} ms",
                row.tau_ms
            ),
            None => println!(
                "tau = {:.1} ms: efficiency never halves within the sweep",
                row.tau_ms
            ),
        }
    }
    println!(
        "\nThe knee tracks the hotspot pole — the model-level content of \
         S3.4's \"the optimal idle period appears closer to the order of \
         one ms\"."
    );

    dimetrodon_bench::supervision_epilogue()
}
