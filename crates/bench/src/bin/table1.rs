//! Regenerates Table 1: per-workload temperature rise (as a percentage of
//! cpuburn's) and best-fit `T(r) = α·r^β` trade-off parameters.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin table1
//! ```

use dimetrodon_analysis::Table;
use dimetrodon_bench::{banner, run_config_from_args, write_csv};
use dimetrodon_harness::experiments::table1;

fn main() -> std::process::ExitCode {
    banner(
        "Table 1",
        "real-workload results: rise over idle (% of cpuburn) and T(r) = a*r^b fits",
    );
    let config = run_config_from_args(107);
    let rows = table1::run(config);

    let mut table = Table::new(vec![
        "workload",
        "rise % (measured)",
        "rise % (paper)",
        "alpha (measured)",
        "alpha (paper)",
        "beta (measured)",
        "beta (paper)",
        "fit R^2",
    ]);
    for row in &rows {
        table.row(vec![
            row.workload.clone(),
            format!("{:.1}", row.rise_pct),
            format!("{:.1}", row.paper_rise_pct),
            format!("{:.3}", row.fit.alpha),
            format!("{:.3}", row.paper_alpha_beta.0),
            format!("{:.3}", row.fit.beta),
            format!("{:.3}", row.paper_alpha_beta.1),
            format!("{:.3}", row.fit.r_squared),
        ]);
    }
    println!("{}", table.render());
    write_csv("table1_workloads", &table);

    let convex = rows.iter().filter(|r| r.fit.beta > 1.0).count();
    println!(
        "{}/{} workloads fit a convex (beta > 1) power law, as in the paper; \
         rise ordering matches Table 1.",
        convex,
        rows.len()
    );

    dimetrodon_bench::supervision_epilogue()
}
