//! Regenerates every table and figure in sequence by invoking the
//! sibling binaries' experiment code directly (no subprocesses), printing
//! a compact summary (with per-experiment wall-clock times) at the end.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin run_all -- --quick --jobs 8
//! ```

use std::process::ExitCode;
use std::time::Instant;

use dimetrodon_analysis::Table;
use dimetrodon_bench::{
    banner, fig3_table, quick_requested, results_dir, run_config_from_args,
    supervision_epilogue, write_csv,
};
use dimetrodon_harness::experiments::{fig1, fig2, fig3, fig4, fig5, fig6, table1, validation};

fn main() -> ExitCode {
    let config = run_config_from_args(110);
    let quick = quick_requested();
    let mut summary: Vec<String> = Vec::new();
    let mut flushed: Vec<(String, String)> = Vec::new();
    let total_start = Instant::now();

    banner("run_all", "regenerating every table and figure");

    // Appends an experiment's summary line tagged with its wall-clock
    // time, and flushes the timing-free summary rows to
    // `results/run_all_summary.csv` after every experiment so a killed
    // run leaves its completed results on disk (and a resumed run
    // regenerates the identical file).
    let timed = |summary: &mut Vec<String>,
                 flushed: &mut Vec<(String, String)>,
                 name: &str,
                 line: String,
                 start: Instant| {
        summary.push(format!(
            "{line}   [{name}: {:.1}s]",
            start.elapsed().as_secs_f64()
        ));
        flushed.push((name.to_string(), line));
        let mut table = Table::new(vec!["experiment", "summary"]);
        for (experiment, text) in flushed.iter() {
            table.row(vec![experiment.clone(), text.clone()]);
        }
        std::fs::write(
            results_dir().join("run_all_summary.csv"),
            table.render_csv(),
        )
        .expect("write run_all summary csv");
    };

    let start = Instant::now();
    let f1 = fig1::run(config.seed);
    timed(
        &mut summary,
        &mut flushed,
        "fig1",
        format!(
            "fig1: energy ratio {:.3}, dimetrodon computes at {:.1} W vs {:.1} W",
            f1.dimetrodon_joules / f1.race_to_idle_joules,
            fig1::Fig1Data::mean_active_power(&f1.dimetrodon, 20.0),
            fig1::Fig1Data::mean_active_power(&f1.race_to_idle, 20.0),
        ),
        start,
    );

    let start = Instant::now();
    let f2 = fig2::run(config);
    let rises: Vec<String> = f2
        .curves
        .iter()
        .map(|c| format!("p={:.2}:{:.1}C", c.p, c.tail_rise))
        .collect();
    timed(
        &mut summary,
        &mut flushed,
        "fig2",
        format!("fig2: tail rises {}", rises.join(" ")),
        start,
    );

    let start = Instant::now();
    let f3 = if quick {
        fig3::run_subset(config, &[0.25, 0.5], &[1, 25, 100])
    } else {
        fig3::run(config)
    };
    write_csv("fig3_efficiency", &fig3_table(&f3));
    let best = f3
        .points
        .iter()
        .filter(|p| p.temp_reduction > 0.01)
        .map(|p| p.efficiency())
        .fold(f64::NEG_INFINITY, f64::max);
    timed(
        &mut summary,
        &mut flushed,
        "fig3",
        format!("fig3: best efficiency {best:.1}:1"),
        start,
    );

    let start = Instant::now();
    let f4 = if quick {
        fig4::run_subset(config, &[0.25, 0.75], &[5, 100], true)
    } else {
        fig4::run(config)
    };
    timed(
        &mut summary,
        &mut flushed,
        "fig4",
        match fig4::crossover_temp_reduction(&f4) {
            Some(r) => format!("fig4: dimetrodon/VFS crossover ~{:.0}%", r * 100.0),
            None => "fig4: no crossover in sweep".to_string(),
        },
        start,
    );

    let start = Instant::now();
    let f5 = if quick {
        fig5::run_subset(config, &[0.75])
    } else {
        fig5::run(config)
    };
    let per_thread_min = f5
        .scope_points(fig5::PolicyScope::PerThread)
        .iter()
        .map(|p| p.cool_throughput)
        .fold(f64::INFINITY, f64::min);
    timed(
        &mut summary,
        &mut flushed,
        "fig5",
        format!(
            "fig5: per-thread cool throughput >= {:.0}%",
            per_thread_min * 100.0
        ),
        start,
    );

    let start = Instant::now();
    let f6 = if quick {
        fig6::run_subset(config, &[0.5, 0.9], &[100])
    } else {
        fig6::run(config)
    };
    timed(
        &mut summary,
        &mut flushed,
        "fig6",
        format!(
            "fig6: baseline rise {:.1} C over {} requests",
            f6.baseline_rise,
            f6.baseline.total()
        ),
        start,
    );

    let start = Instant::now();
    let t1 = table1::run(config);
    let convex = t1.iter().filter(|r| r.fit.beta > 1.0).count();
    timed(
        &mut summary,
        &mut flushed,
        "table1",
        format!("table1: {}/{} workloads convex", convex, t1.len()),
        start,
    );

    let start = Instant::now();
    let trials = if quick { 3 } else { 20 };
    let tv = validation::throughput(trials, config.seed);
    timed(
        &mut summary,
        &mut flushed,
        "validation-throughput",
        format!(
            "validation (throughput): mean deviation {:+.2}%",
            tv.overall.mean * 100.0
        ),
        start,
    );

    let start = Instant::now();
    let ev = validation::energy(if quick { 2 } else { 5 }, config.seed);
    timed(
        &mut summary,
        &mut flushed,
        "validation-energy",
        format!(
            "validation (energy): mean deviation {:+.2}%",
            ev.overall_deviation.mean * 100.0
        ),
        start,
    );

    banner("summary", "one line per experiment");
    for line in summary {
        println!("  {line}");
    }
    println!("  total wall-clock: {:.1}s", total_start.elapsed().as_secs_f64());

    supervision_epilogue()
}
