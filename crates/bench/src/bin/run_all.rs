//! Regenerates every table and figure in sequence by invoking the
//! sibling binaries' experiment code directly (no subprocesses), printing
//! a compact summary at the end.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin run_all -- --quick
//! ```

use dimetrodon_bench::{banner, quick_requested, run_config_from_args};
use dimetrodon_harness::experiments::{fig1, fig2, fig3, fig4, fig5, fig6, table1, validation};

fn main() {
    let config = run_config_from_args(110);
    let quick = quick_requested();
    let mut summary: Vec<String> = Vec::new();

    banner("run_all", "regenerating every table and figure");

    let f1 = fig1::run(config.seed);
    summary.push(format!(
        "fig1: energy ratio {:.3}, dimetrodon computes at {:.1} W vs {:.1} W",
        f1.dimetrodon_joules / f1.race_to_idle_joules,
        fig1::Fig1Data::mean_active_power(&f1.dimetrodon, 20.0),
        fig1::Fig1Data::mean_active_power(&f1.race_to_idle, 20.0),
    ));

    let f2 = fig2::run(config);
    let rises: Vec<String> = f2
        .curves
        .iter()
        .map(|c| format!("p={:.2}:{:.1}C", c.p, c.tail_rise))
        .collect();
    summary.push(format!("fig2: tail rises {}", rises.join(" ")));

    let f3 = if quick {
        fig3::run_subset(config, &[0.25, 0.5], &[1, 25, 100])
    } else {
        fig3::run(config)
    };
    let best = f3
        .points
        .iter()
        .filter(|p| p.temp_reduction > 0.01)
        .map(|p| p.efficiency())
        .fold(f64::NEG_INFINITY, f64::max);
    summary.push(format!("fig3: best efficiency {best:.1}:1"));

    let f4 = if quick {
        fig4::run_subset(config, &[0.25, 0.75], &[5, 100], true)
    } else {
        fig4::run(config)
    };
    summary.push(match fig4::crossover_temp_reduction(&f4) {
        Some(r) => format!("fig4: dimetrodon/VFS crossover ~{:.0}%", r * 100.0),
        None => "fig4: no crossover in sweep".to_string(),
    });

    let f5 = if quick {
        fig5::run_subset(config, &[0.75])
    } else {
        fig5::run(config)
    };
    let per_thread_min = f5
        .scope_points(fig5::PolicyScope::PerThread)
        .iter()
        .map(|p| p.cool_throughput)
        .fold(f64::INFINITY, f64::min);
    summary.push(format!(
        "fig5: per-thread cool throughput >= {:.0}%",
        per_thread_min * 100.0
    ));

    let f6 = if quick {
        fig6::run_subset(config, &[0.5, 0.9], &[100])
    } else {
        fig6::run(config)
    };
    summary.push(format!(
        "fig6: baseline rise {:.1} C over {} requests",
        f6.baseline_rise,
        f6.baseline.total()
    ));

    let t1 = table1::run(config);
    let convex = t1.iter().filter(|r| r.fit.beta > 1.0).count();
    summary.push(format!("table1: {}/{} workloads convex", convex, t1.len()));

    let trials = if quick { 3 } else { 20 };
    let tv = validation::throughput(trials, config.seed);
    summary.push(format!(
        "validation (throughput): mean deviation {:+.2}%",
        tv.overall.mean * 100.0
    ));
    let ev = validation::energy(if quick { 2 } else { 5 }, config.seed);
    summary.push(format!(
        "validation (energy): mean deviation {:+.2}%",
        ev.overall_deviation.mean * 100.0
    ));

    banner("summary", "one line per experiment");
    for line in summary {
        println!("  {line}");
    }
}
