//! Regenerates Figure 3: Dimetrodon efficiency (temperature:throughput)
//! for cpuburn across idle quantum lengths and proportions.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin fig3
//! ```

use dimetrodon_bench::{banner, fig3_table, quick_requested, run_config_from_args, write_csv};
use dimetrodon_harness::experiments::fig3;

fn main() -> std::process::ExitCode {
    banner(
        "Figure 3",
        "efficiency vs idle quantum length L for p in {.1, .25, .5, .75}",
    );
    let config = run_config_from_args(103);
    let data = if quick_requested() {
        fig3::run_subset(config, &[0.25, 0.5], &[1, 5, 25, 100])
    } else {
        fig3::run(config)
    };

    let table = fig3_table(&data);
    println!("{}", table.render());
    write_csv("fig3_efficiency", &table);

    let best = data
        .points
        .iter()
        .filter(|p| p.temp_reduction > 0.01)
        .max_by(|a, b| a.efficiency().partial_cmp(&b.efficiency()).expect("no NaN"))
        .expect("sweep produced points");
    println!(
        "best efficiency: {:.1}:1 at p={:.2}, L={} ms (temp reduction {:.1}%) — \
         the paper reports 16:1 at a 4.4% reduction",
        best.efficiency(),
        best.p,
        best.l_ms,
        best.temp_reduction * 100.0,
    );

    dimetrodon_bench::supervision_epilogue()
}
