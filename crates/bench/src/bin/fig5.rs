//! Regenerates Figure 5: global versus thread-specific control with a
//! hot application and a periodic cool process.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin fig5
//! ```

use dimetrodon_analysis::Table;
use dimetrodon_bench::{banner, quick_requested, run_config_from_args, write_csv};
use dimetrodon_harness::experiments::fig5::{self, PolicyScope};

fn main() -> std::process::ExitCode {
    banner(
        "Figure 5",
        "global vs per-thread control: cool-process throughput vs system temperature reduction",
    );
    let config = run_config_from_args(105);
    let data = if quick_requested() {
        fig5::run_subset(config, &[0.5, 0.9])
    } else {
        fig5::run(config)
    };

    let mut table = Table::new(vec![
        "scope",
        "p",
        "temp_reduction",
        "cool_process_throughput",
    ]);
    for scope in [PolicyScope::Global, PolicyScope::PerThread] {
        for point in data.scope_points(scope) {
            table.row(vec![
                format!("{scope:?}"),
                format!("{:.2}", point.p),
                format!("{:.4}", point.temp_reduction),
                format!("{:.4}", point.cool_throughput),
            ]);
        }
    }
    println!("{}", table.render());
    write_csv("fig5_scope_comparison", &table);

    let worst_per_thread = data
        .scope_points(PolicyScope::PerThread)
        .iter()
        .map(|p| p.cool_throughput)
        .fold(f64::INFINITY, f64::min);
    let best_global = data
        .scope_points(PolicyScope::Global)
        .iter()
        .map(|p| p.cool_throughput)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "cool-process throughput: per-thread worst {:.0}%, global best {:.0}% — \
         per-thread control spares the cool process (paper S3.6)",
        worst_per_thread * 100.0,
        best_global * 100.0,
    );

    dimetrodon_bench::supervision_epilogue()
}
