//! Ablations of the reproduction's own design choices — the DESIGN.md §6
//! list. Each section perturbs exactly one knob and reports the effect:
//!
//! 1. probabilistic vs deterministic injection (§3.4's conjecture);
//! 2. C1E vs nop-loop idle (§2.1's fallback);
//! 3. 4.4BSD vs ULE-lite scheduler (footnote 2's generalisation);
//! 4. the hotspot sensing model itself (without it, efficiency is flat —
//!    the reproduction's key modelling claim);
//! 5. the cold-resume penalty (source of the §3.3 model deviation);
//! 6. SMT: naive injection vs co-scheduled idle quanta (§3.2);
//! 7. thermal-aware wake placement (the related-work complement).
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin ablations
//! ```

use dimetrodon::model::predicted_runtime;
use dimetrodon::{
    DimetrodonHook, InjectionModel, InjectionParams, PolicyHandle, PowerCapController,
    SmtCoScheduler,
};
use dimetrodon_analysis::Table;
use dimetrodon_bench::{banner, run_config_from_args, write_csv};
use dimetrodon_harness::{
    characterize, characterize_on, Actuation, RunConfig, SaturatingWorkload,
};
use dimetrodon_machine::{Machine, MachineConfig, ThermalThrottle};
use dimetrodon_sched::{
    BsdScheduler, NullHook, SchedConfig, SchedHook, Scheduler, System, ThreadKind, UleScheduler,
};
use dimetrodon_sim_core::{SimDuration, SimTime};
use dimetrodon_workload::CpuBurn;

fn main() {
    let config = run_config_from_args(111);
    let mut table = Table::new(vec!["ablation", "variant", "metric", "value"]);

    injection_model(&mut table, config);
    idle_mode(&mut table, config);
    scheduler_choice(&mut table, config);
    hotspot_model(&mut table, config);
    resume_penalty(&mut table);
    smt_co_scheduling(&mut table);
    thermal_placement(&mut table);
    deep_cstates(&mut table, config);
    power_cap(&mut table);
    preventive_vs_reactive(&mut table, config);

    banner("ablations", "design-choice studies (one knob per section)");
    println!("{}", table.render());
    write_csv("ablations", &table);
}

fn push(table: &mut Table, ablation: &str, variant: &str, metric: &str, value: f64) {
    table.row(vec![
        ablation.to_string(),
        variant.to_string(),
        metric.to_string(),
        format!("{value:.4}"),
    ]);
}

/// 1. Probabilistic vs deterministic injection at the same `(p, L)`.
fn injection_model(table: &mut Table, config: RunConfig) {
    for (name, model) in [
        ("probabilistic", InjectionModel::Probabilistic),
        ("deterministic", InjectionModel::Deterministic),
    ] {
        let out = characterize(
            SaturatingWorkload::CpuBurn,
            Actuation::Injection {
                params: InjectionParams::new(0.5, SimDuration::from_millis(100)),
                model,
            },
            config,
        );
        push(table, "injection_model", name, "observed_tail_c", out.tail_temp);
        let physical = out
            .temp_series
            .mean_over(SimTime::ZERO + (config.duration - config.measure_window))
            .expect("sampled");
        push(table, "injection_model", name, "physical_tail_c", physical);
        let jitter = {
            let tail: Vec<f64> = out
                .observed_curve
                .iter()
                .filter(|(t, _)| *t > config.duration.as_secs_f64() / 2.0)
                .map(|&(_, v)| v)
                .collect();
            tail.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (tail.len() - 1) as f64
        };
        push(table, "injection_model", name, "curve_jitter_c", jitter);
    }
}

/// 2. C1E vs nop-loop idle at the same policy.
fn idle_mode(table: &mut Table, config: RunConfig) {
    for (name, machine_config) in [
        ("c1e", MachineConfig::xeon_e5520()),
        ("nop_loop", MachineConfig::xeon_e5520_nop_idle()),
    ] {
        let base = characterize_on(
            &machine_config,
            SaturatingWorkload::CpuBurn,
            Actuation::None,
            config,
        );
        let run = characterize_on(
            &machine_config,
            SaturatingWorkload::CpuBurn,
            Actuation::Injection {
                params: InjectionParams::new(0.5, SimDuration::from_millis(25)),
                model: InjectionModel::Probabilistic,
            },
            config,
        );
        push(
            table,
            "idle_mode",
            name,
            "temp_reduction",
            run.temp_reduction_vs(&base),
        );
    }
}

/// 3. The same injection point under the 4.4BSD and ULE-lite schedulers.
fn scheduler_choice(table: &mut Table, config: RunConfig) {
    let run_with = |scheduler: Box<dyn Scheduler>, inject: bool, seed: u64| {
        let mut machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
        machine.settle_idle();
        let hook: Box<dyn SchedHook> = if inject {
            let policy = PolicyHandle::new();
            policy.set_global(Some(InjectionParams::new(0.5, SimDuration::from_millis(25))));
            Box::new(DimetrodonHook::new(policy, seed))
        } else {
            Box::new(NullHook)
        };
        let mut system =
            System::with_parts(machine, scheduler, hook, SchedConfig::default());
        let ids: Vec<_> = (0..4)
            .map(|_| system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite())))
            .collect();
        system.run_until(SimTime::ZERO + config.duration);
        let observed = system
            .observed_temp_over(SimTime::ZERO + (config.duration - config.measure_window))
            .expect("samples");
        let idle = system.machine().idle_temperature();
        let executed: f64 = ids
            .iter()
            .map(|&id| system.thread_stats(id).cpu_executed.as_secs_f64())
            .sum();
        (observed, idle, executed / (4.0 * config.duration.as_secs_f64()))
    };
    type MakeScheduler = fn() -> Box<dyn Scheduler>;
    let schedulers: [(&str, MakeScheduler); 2] = [
        ("bsd", || Box::new(BsdScheduler::new())),
        ("ule", || Box::new(UleScheduler::new(4))),
    ];
    for (name, mk) in schedulers {
        let (hot, idle, base_thr) = run_with(mk(), false, config.seed);
        let (cooled, _, thr) = run_with(mk(), true, config.seed + 1);
        push(
            table,
            "scheduler",
            name,
            "temp_reduction",
            (hot - cooled) / (hot - idle),
        );
        push(
            table,
            "scheduler",
            name,
            "throughput_reduction",
            1.0 - thr / base_thr,
        );
    }
}

/// 4. Remove the hotspot power concentration: the efficiency advantage
///    of short quanta should collapse toward 1:1 (the reproduction's
///    central modelling claim — in a linear network with bulk-only
///    sensing, mean temperature tracks duty exactly).
fn hotspot_model(table: &mut Table, config: RunConfig) {
    let mut flat = MachineConfig::xeon_e5520();
    flat.thermal.hotspot_power_fraction = 0.0;

    for (name, machine_config) in [
        ("with_hotspot", MachineConfig::xeon_e5520()),
        ("no_hotspot", flat),
    ] {
        let base = characterize_on(
            &machine_config,
            SaturatingWorkload::CpuBurn,
            Actuation::None,
            config,
        );
        let run = characterize_on(
            &machine_config,
            SaturatingWorkload::CpuBurn,
            Actuation::Injection {
                params: InjectionParams::new(0.25, SimDuration::from_millis(2)),
                model: InjectionModel::Probabilistic,
            },
            config,
        );
        let temp = run.temp_reduction_vs(&base);
        let thr = run.throughput_reduction_vs(&base).max(1e-6);
        push(table, "hotspot_model", name, "short_quantum_efficiency", temp / thr);
    }
}

/// 5. Cold-resume penalty sweep: the §3.3 deviation from `D(t)` scales
///    with the penalty.
fn resume_penalty(table: &mut Table) {
    let (p, l, work) = (0.75, SimDuration::from_millis(50), SimDuration::from_secs(7));
    let predicted = predicted_runtime(7.0, 0.1, p, 0.05);
    for penalty_us in [0u64, 150, 1000] {
        let mut deviations = Vec::new();
        for trial in 0..12u64 {
            let mut machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
            machine.settle_idle();
            let policy = PolicyHandle::new();
            policy.set_global(Some(InjectionParams::new(p, l)));
            let mut system = System::with_parts(
                machine,
                Box::new(BsdScheduler::new()),
                Box::new(DimetrodonHook::new(policy, 500 + trial)),
                SchedConfig {
                    resume_penalty: SimDuration::from_micros(penalty_us),
                    ..SchedConfig::default()
                },
            );
            let id = system.spawn(ThreadKind::User, Box::new(CpuBurn::finite(work)));
            assert!(system.run_until_exited(&[id], SimTime::from_secs(300)));
            let wall = system.thread_stats(id).wall_time().expect("exited").as_secs_f64();
            deviations.push((wall - predicted) / predicted);
        }
        let mean = deviations.iter().sum::<f64>() / deviations.len() as f64;
        push(
            table,
            "resume_penalty",
            &format!("{penalty_us}us"),
            "mean_deviation_from_dt",
            mean,
        );
    }
}

/// 6. SMT: naive injection vs co-scheduled idle quanta (§3.2).
fn smt_co_scheduling(table: &mut Table) {
    let run = |co: bool, inject: bool, seed: u64| {
        let mut machine = Machine::new(MachineConfig::xeon_e5520_smt()).expect("preset");
        machine.settle_idle();
        let mut system = System::new(machine);
        if inject {
            let policy = PolicyHandle::new();
            policy.set_global(Some(InjectionParams::new(0.5, SimDuration::from_millis(50))));
            let hook = DimetrodonHook::new(policy, seed);
            if co {
                system.set_hook(Box::new(SmtCoScheduler::new(hook)));
            } else {
                system.set_hook(Box::new(hook));
            }
        }
        for _ in 0..8 {
            system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite()));
        }
        system.run_until(SimTime::from_secs(120));
        system
            .observed_temp_over(SimTime::from_secs(100))
            .expect("samples")
    };
    let hot = run(false, false, 0);
    let naive = run(false, true, 1);
    let co = run(true, true, 2);
    push(table, "smt", "unconstrained", "observed_tail_c", hot);
    push(table, "smt", "naive_injection", "observed_tail_c", naive);
    push(table, "smt", "co_scheduled", "observed_tail_c", co);
}

/// 8. Deep C-states: with a C6-class state available, long idle quanta
///    gain extra cooling (lower idle floor) at the cost of cache-refill
///    penalties — the §2.2 "if a low power state flushes cache lines"
///    what-if.
fn deep_cstates(table: &mut Table, config: RunConfig) {
    for (name, machine_config) in [
        ("c1e_only", MachineConfig::xeon_e5520()),
        ("with_c6", MachineConfig::xeon_e5520_deep_idle()),
    ] {
        let base = characterize_on(
            &machine_config,
            SaturatingWorkload::CpuBurn,
            Actuation::None,
            config,
        );
        for l_ms in [1u64, 100] {
            let run = characterize_on(
                &machine_config,
                SaturatingWorkload::CpuBurn,
                Actuation::Injection {
                    params: InjectionParams::new(0.5, SimDuration::from_millis(l_ms)),
                    model: InjectionModel::Probabilistic,
                },
                config,
            );
            push(
                table,
                "deep_cstates",
                &format!("{name}_L{l_ms}ms"),
                "temp_reduction",
                run.temp_reduction_vs(&base),
            );
            push(
                table,
                "deep_cstates",
                &format!("{name}_L{l_ms}ms"),
                "throughput_reduction",
                run.throughput_reduction_vs(&base),
            );
        }
    }
}

/// 9. Power capping via forced idleness (§4's related-work bridge): at
///    the same package-power cap, shorter idle quanta leave the machine
///    cooler — "rearchitecting the power-capping mechanism to use
///    shorter idle quanta would provide thermally-beneficial
///    side-effects".
fn power_cap(table: &mut Table) {
    for quantum_ms in [5u64, 25, 100] {
        let mut machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
        machine.settle_idle();
        let hook = DimetrodonHook::new(PolicyHandle::new(), 600 + quantum_ms);
        let controller =
            PowerCapController::new(hook, 45.0, SimDuration::from_millis(quantum_ms));
        let mut system = System::new(machine);
        system.set_hook(Box::new(controller));
        for _ in 0..4 {
            system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite()));
        }
        system.run_until(SimTime::from_secs(150));
        let observed = system
            .observed_temp_over(SimTime::from_secs(100))
            .expect("samples");
        // Mean power over the tail, sampled once per second.
        let mut sum = 0.0;
        for s in 150..180 {
            system.run_until(SimTime::from_secs(s));
            sum += system.machine().package_power();
        }
        push(
            table,
            "power_cap_45w",
            &format!("L{quantum_ms}ms"),
            "mean_power_w",
            sum / 30.0,
        );
        push(
            table,
            "power_cap_45w",
            &format!("L{quantum_ms}ms"),
            "observed_temp_c",
            observed,
        );
    }
}

/// 10. Preventive (Dimetrodon) vs reactive (PROCHOT-style trip) thermal
///     management — the paper's §1 framing. At a matched throughput
///     loss, the reactive throttle only clips the peak at its trigger
///     while Dimetrodon lowers the whole trajectory.
fn preventive_vs_reactive(table: &mut Table, config: RunConfig) {
    let reactive_run = |trigger: f64| {
        let mut machine_config = MachineConfig::xeon_e5520();
        machine_config.thermal_throttle = Some(ThermalThrottle::prochot_at(trigger));
        let mut machine = Machine::new(machine_config).expect("preset");
        machine.settle_idle();
        let mut system = System::new(machine);
        let ids: Vec<_> = (0..4)
            .map(|_| system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite())))
            .collect();
        system.run_until(SimTime::ZERO + config.duration);
        let observed = system
            .observed_temp_over(SimTime::ZERO + (config.duration - config.measure_window))
            .expect("samples");
        let executed: f64 = ids
            .iter()
            .map(|&id| system.thread_stats(id).cpu_executed.as_secs_f64())
            .sum();
        (observed, executed / (4.0 * config.duration.as_secs_f64()))
    };

    // Near-critical trigger (how real systems deploy reactive DTM): it
    // barely touches the average in normal operation.
    let near_critical = reactive_run(56.0);
    push(
        table,
        "preventive_vs_reactive",
        "reactive_56c",
        "observed_temp_c",
        near_critical.0,
    );
    push(table, "preventive_vs_reactive", "reactive_56c", "throughput", near_critical.1);

    // In-range trigger: the trip becomes a closed-loop duty regulator.
    let reactive = reactive_run(50.0);
    push(table, "preventive_vs_reactive", "reactive_50c", "observed_temp_c", reactive.0);
    push(table, "preventive_vs_reactive", "reactive_50c", "throughput", reactive.1);

    // Preventive: spend the same throughput with short quanta.
    let budget = (1.0 - reactive.1).clamp(0.01, 0.95);
    let params = dimetrodon::PolicyPlanner::new(SimDuration::from_millis(100))
        .for_throughput_budget(budget)
        .expect("budget is feasible");
    let preventive = characterize(
        SaturatingWorkload::CpuBurn,
        Actuation::Injection {
            params,
            model: InjectionModel::Probabilistic,
        },
        config,
    );
    push(
        table,
        "preventive_vs_reactive",
        "dimetrodon_matched",
        "observed_temp_c",
        preventive.tail_temp,
    );
    push(
        table,
        "preventive_vs_reactive",
        "dimetrodon_matched",
        "throughput",
        preventive.throughput,
    );
}

/// 7. Thermal-aware wake placement on a pulsed single-thread load.
fn thermal_placement(table: &mut Table) {
    use dimetrodon_sched::{Action, Burst, ThreadBody};
    #[derive(Debug)]
    struct Pulsed {
        left: SimDuration,
    }
    impl ThreadBody for Pulsed {
        fn next_action(&mut self, _now: SimTime) -> Action {
            if self.left.is_zero() {
                self.left = SimDuration::from_millis(300);
                return Action::Sleep(SimDuration::from_millis(60));
            }
            let chunk = self.left.min(SimDuration::from_millis(10));
            self.left -= chunk;
            Action::Run(Burst::new(chunk, 1.0))
        }
    }
    for placement in [false, true] {
        let machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
        let mut system = System::with_parts(
            machine,
            Box::new(BsdScheduler::new()),
            Box::new(NullHook),
            SchedConfig {
                thermal_aware_placement: placement,
                ..SchedConfig::default()
            },
        );
        system.machine_mut().settle_idle();
        system.spawn(
            ThreadKind::User,
            Box::new(Pulsed {
                left: SimDuration::from_millis(300),
            }),
        );
        system.run_until(SimTime::from_secs(90));
        let hottest = (0..4)
            .map(|i| {
                system
                    .core_temp_series(dimetrodon_machine::CoreId(i))
                    .mean_over(SimTime::from_secs(45))
                    .expect("sampled")
            })
            .fold(f64::MIN, f64::max);
        push(
            table,
            "placement",
            if placement { "thermal_aware" } else { "queue_order" },
            "hottest_die_mean_c",
            hottest,
        );
    }
}
