//! Ablations of the reproduction's own design choices — the DESIGN.md §6
//! list. Each section perturbs exactly one knob and reports the effect:
//!
//! 1. probabilistic vs deterministic injection (§3.4's conjecture);
//! 2. C1E vs nop-loop idle (§2.1's fallback);
//! 3. 4.4BSD vs ULE-lite scheduler (footnote 2's generalisation);
//! 4. the hotspot sensing model itself (without it, efficiency is flat —
//!    the reproduction's key modelling claim);
//! 5. the cold-resume penalty (source of the §3.3 model deviation);
//! 6. SMT: naive injection vs co-scheduled idle quanta (§3.2);
//! 7. thermal-aware wake placement (the related-work complement).
//!
//! Every section's runs are independent, so each fans across the sweep
//! engine's worker pool (`--jobs N` to pin the worker count).
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin ablations
//! ```

use dimetrodon::model::predicted_runtime;
use dimetrodon::{
    DimetrodonHook, InjectionModel, InjectionParams, PolicyHandle, PowerCapController,
    SmtCoScheduler,
};
use dimetrodon_analysis::Table;
use dimetrodon_bench::{banner, run_config_from_args, write_csv};
use dimetrodon_harness::sweep::{parallel_map, run_sweep, SweepPoint};
use dimetrodon_harness::{characterize, Actuation, RunConfig, SaturatingWorkload};
use dimetrodon_machine::{Machine, MachineConfig, ThermalThrottle};
use dimetrodon_sched::{
    BsdScheduler, NullHook, SchedConfig, SchedHook, Scheduler, System, ThreadKind, UleScheduler,
};
use dimetrodon_sim_core::{SimDuration, SimTime};
use dimetrodon_workload::CpuBurn;

fn main() -> std::process::ExitCode {
    let config = run_config_from_args(111);
    let mut table = Table::new(vec!["ablation", "variant", "metric", "value"]);

    injection_model(&mut table, config);
    idle_mode(&mut table, config);
    scheduler_choice(&mut table, config);
    hotspot_model(&mut table, config);
    resume_penalty(&mut table);
    smt_co_scheduling(&mut table);
    thermal_placement(&mut table);
    deep_cstates(&mut table, config);
    power_cap(&mut table);
    preventive_vs_reactive(&mut table, config);

    banner("ablations", "design-choice studies (one knob per section)");
    println!("{}", table.render());
    write_csv("ablations", &table);

    dimetrodon_bench::supervision_epilogue()
}

fn push(table: &mut Table, ablation: &str, variant: &str, metric: &str, value: f64) {
    table.row(vec![
        ablation.to_string(),
        variant.to_string(),
        metric.to_string(),
        format!("{value:.4}"),
    ]);
}

fn burn_injection(p: f64, l_ms: u64, model: InjectionModel) -> Actuation {
    Actuation::Injection {
        params: InjectionParams::new(p, SimDuration::from_millis(l_ms)),
        model,
    }
}

/// 1. Probabilistic vs deterministic injection at the same `(p, L)`.
fn injection_model(table: &mut Table, config: RunConfig) {
    let variants = [
        ("probabilistic", InjectionModel::Probabilistic),
        ("deterministic", InjectionModel::Deterministic),
    ];
    let sweep: Vec<SweepPoint> = variants
        .iter()
        .map(|&(_, model)| {
            SweepPoint::new(
                SaturatingWorkload::CpuBurn,
                burn_injection(0.5, 100, model),
                config,
            )
        })
        .collect();
    for ((name, _), out) in variants.iter().zip(run_sweep(&sweep)) {
        push(table, "injection_model", name, "observed_tail_c", out.tail_temp);
        let physical = out
            .temp_series
            .mean_over(SimTime::ZERO + (config.duration - config.measure_window))
            .expect("sampled");
        push(table, "injection_model", name, "physical_tail_c", physical);
        let jitter = {
            let tail: Vec<f64> = out
                .observed_curve
                .iter()
                .filter(|(t, _)| *t > config.duration.as_secs_f64() / 2.0)
                .map(|&(_, v)| v)
                .collect();
            tail.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (tail.len() - 1) as f64
        };
        push(table, "injection_model", name, "curve_jitter_c", jitter);
    }
}

/// 2. C1E vs nop-loop idle at the same policy.
fn idle_mode(table: &mut Table, config: RunConfig) {
    let variants = [
        ("c1e", MachineConfig::xeon_e5520()),
        ("nop_loop", MachineConfig::xeon_e5520_nop_idle()),
    ];
    // Two points per variant: the unconstrained base, then the injected run.
    let mut sweep = Vec::new();
    for (_, machine_config) in &variants {
        sweep.push(SweepPoint::on(
            machine_config.clone(),
            SaturatingWorkload::CpuBurn,
            Actuation::None,
            config,
        ));
        sweep.push(SweepPoint::on(
            machine_config.clone(),
            SaturatingWorkload::CpuBurn,
            burn_injection(0.5, 25, InjectionModel::Probabilistic),
            config,
        ));
    }
    let outcomes = run_sweep(&sweep);
    for (v, (name, _)) in variants.iter().enumerate() {
        let (base, run) = (&outcomes[2 * v], &outcomes[2 * v + 1]);
        push(table, "idle_mode", name, "temp_reduction", run.temp_reduction_vs(base));
    }
}

/// 3. The same injection point under the 4.4BSD and ULE-lite schedulers.
fn scheduler_choice(table: &mut Table, config: RunConfig) {
    let run_with = |scheduler: Box<dyn Scheduler>, inject: bool, seed: u64| {
        let mut machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
        machine.settle_idle();
        let hook: Box<dyn SchedHook> = if inject {
            let policy = PolicyHandle::new();
            policy.set_global(Some(InjectionParams::new(0.5, SimDuration::from_millis(25))));
            Box::new(DimetrodonHook::new(policy, seed))
        } else {
            Box::new(NullHook)
        };
        let mut system =
            System::with_parts(machine, scheduler, hook, SchedConfig::default());
        let ids: Vec<_> = (0..4)
            .map(|_| system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite())))
            .collect();
        system.run_until(SimTime::ZERO + config.duration);
        let observed = system
            .observed_temp_over(SimTime::ZERO + (config.duration - config.measure_window))
            .expect("samples");
        let idle = system.machine().idle_temperature();
        let executed: f64 = ids
            .iter()
            .map(|&id| system.thread_stats(id).cpu_executed.as_secs_f64())
            .sum();
        (observed, idle, executed / (4.0 * config.duration.as_secs_f64()))
    };
    type MakeScheduler = fn() -> Box<dyn Scheduler>;
    let schedulers: [(&str, MakeScheduler); 2] = [
        ("bsd", || Box::new(BsdScheduler::new())),
        ("ule", || Box::new(UleScheduler::new(4))),
    ];
    // Four independent runs: (scheduler × {unconstrained, injected}).
    let results = parallel_map(4, |job| {
        let (_, mk) = schedulers[job / 2];
        let inject = job % 2 == 1;
        run_with(mk(), inject, config.seed + if inject { 1 } else { 0 })
    });
    for (s, (name, _)) in schedulers.iter().enumerate() {
        let (hot, idle, base_thr) = results[2 * s];
        let (cooled, _, thr) = results[2 * s + 1];
        push(
            table,
            "scheduler",
            name,
            "temp_reduction",
            (hot - cooled) / (hot - idle),
        );
        push(
            table,
            "scheduler",
            name,
            "throughput_reduction",
            1.0 - thr / base_thr,
        );
    }
}

/// 4. Remove the hotspot power concentration: the efficiency advantage
///    of short quanta should collapse toward 1:1 (the reproduction's
///    central modelling claim — in a linear network with bulk-only
///    sensing, mean temperature tracks duty exactly).
fn hotspot_model(table: &mut Table, config: RunConfig) {
    let mut flat = MachineConfig::xeon_e5520();
    flat.thermal.hotspot_power_fraction = 0.0;

    let variants = [
        ("with_hotspot", MachineConfig::xeon_e5520()),
        ("no_hotspot", flat),
    ];
    let mut sweep = Vec::new();
    for (_, machine_config) in &variants {
        sweep.push(SweepPoint::on(
            machine_config.clone(),
            SaturatingWorkload::CpuBurn,
            Actuation::None,
            config,
        ));
        sweep.push(SweepPoint::on(
            machine_config.clone(),
            SaturatingWorkload::CpuBurn,
            burn_injection(0.25, 2, InjectionModel::Probabilistic),
            config,
        ));
    }
    let outcomes = run_sweep(&sweep);
    for (v, (name, _)) in variants.iter().enumerate() {
        let (base, run) = (&outcomes[2 * v], &outcomes[2 * v + 1]);
        let temp = run.temp_reduction_vs(base);
        let thr = run.throughput_reduction_vs(base).max(1e-6);
        push(table, "hotspot_model", name, "short_quantum_efficiency", temp / thr);
    }
}

/// 5. Cold-resume penalty sweep: the §3.3 deviation from `D(t)` scales
///    with the penalty.
fn resume_penalty(table: &mut Table) {
    const TRIALS: usize = 12;
    let (p, l, work) = (0.75, SimDuration::from_millis(50), SimDuration::from_secs(7));
    let predicted = predicted_runtime(7.0, 0.1, p, 0.05);
    let penalties = [0u64, 150, 1000];
    let deviations = parallel_map(penalties.len() * TRIALS, |job| {
        let penalty_us = penalties[job / TRIALS];
        let trial = (job % TRIALS) as u64;
        let mut machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
        machine.settle_idle();
        let policy = PolicyHandle::new();
        policy.set_global(Some(InjectionParams::new(p, l)));
        let mut system = System::with_parts(
            machine,
            Box::new(BsdScheduler::new()),
            Box::new(DimetrodonHook::new(policy, 500 + trial)),
            SchedConfig {
                resume_penalty: SimDuration::from_micros(penalty_us),
                ..SchedConfig::default()
            },
        );
        let id = system.spawn(ThreadKind::User, Box::new(CpuBurn::finite(work)));
        assert!(system.run_until_exited(&[id], SimTime::from_secs(300)));
        let wall = system.thread_stats(id).wall_time().expect("exited").as_secs_f64();
        (wall - predicted) / predicted
    });
    for (i, penalty_us) in penalties.iter().enumerate() {
        let cell = &deviations[i * TRIALS..(i + 1) * TRIALS];
        let mean = cell.iter().sum::<f64>() / cell.len() as f64;
        push(
            table,
            "resume_penalty",
            &format!("{penalty_us}us"),
            "mean_deviation_from_dt",
            mean,
        );
    }
}

/// 6. SMT: naive injection vs co-scheduled idle quanta (§3.2).
fn smt_co_scheduling(table: &mut Table) {
    let run = |co: bool, inject: bool, seed: u64| {
        let mut machine = Machine::new(MachineConfig::xeon_e5520_smt()).expect("preset");
        machine.settle_idle();
        let mut system = System::new(machine);
        if inject {
            let policy = PolicyHandle::new();
            policy.set_global(Some(InjectionParams::new(0.5, SimDuration::from_millis(50))));
            let hook = DimetrodonHook::new(policy, seed);
            if co {
                system.set_hook(Box::new(SmtCoScheduler::new(hook)));
            } else {
                system.set_hook(Box::new(hook));
            }
        }
        for _ in 0..8 {
            system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite()));
        }
        system.run_until(SimTime::from_secs(120));
        system
            .observed_temp_over(SimTime::from_secs(100))
            .expect("samples")
    };
    let variants = [(false, false, 0), (false, true, 1), (true, true, 2)];
    let temps = parallel_map(variants.len(), |job| {
        let (co, inject, seed) = variants[job];
        run(co, inject, seed)
    });
    push(table, "smt", "unconstrained", "observed_tail_c", temps[0]);
    push(table, "smt", "naive_injection", "observed_tail_c", temps[1]);
    push(table, "smt", "co_scheduled", "observed_tail_c", temps[2]);
}

/// 8. Deep C-states: with a C6-class state available, long idle quanta
///    gain extra cooling (lower idle floor) at the cost of cache-refill
///    penalties — the §2.2 "if a low power state flushes cache lines"
///    what-if.
fn deep_cstates(table: &mut Table, config: RunConfig) {
    const QUANTA_MS: [u64; 2] = [1, 100];
    let variants = [
        ("c1e_only", MachineConfig::xeon_e5520()),
        ("with_c6", MachineConfig::xeon_e5520_deep_idle()),
    ];
    // Per variant: one base, then one run per quantum.
    let stride = 1 + QUANTA_MS.len();
    let mut sweep = Vec::new();
    for (_, machine_config) in &variants {
        sweep.push(SweepPoint::on(
            machine_config.clone(),
            SaturatingWorkload::CpuBurn,
            Actuation::None,
            config,
        ));
        for &l_ms in &QUANTA_MS {
            sweep.push(SweepPoint::on(
                machine_config.clone(),
                SaturatingWorkload::CpuBurn,
                burn_injection(0.5, l_ms, InjectionModel::Probabilistic),
                config,
            ));
        }
    }
    let outcomes = run_sweep(&sweep);
    for (v, (name, _)) in variants.iter().enumerate() {
        let base = &outcomes[v * stride];
        for (q, &l_ms) in QUANTA_MS.iter().enumerate() {
            let run = &outcomes[v * stride + 1 + q];
            push(
                table,
                "deep_cstates",
                &format!("{name}_L{l_ms}ms"),
                "temp_reduction",
                run.temp_reduction_vs(base),
            );
            push(
                table,
                "deep_cstates",
                &format!("{name}_L{l_ms}ms"),
                "throughput_reduction",
                run.throughput_reduction_vs(base),
            );
        }
    }
}

/// 9. Power capping via forced idleness (§4's related-work bridge): at
///    the same package-power cap, shorter idle quanta leave the machine
///    cooler — "rearchitecting the power-capping mechanism to use
///    shorter idle quanta would provide thermally-beneficial
///    side-effects".
fn power_cap(table: &mut Table) {
    const QUANTA_MS: [u64; 3] = [5, 25, 100];
    let results = parallel_map(QUANTA_MS.len(), |job| {
        let quantum_ms = QUANTA_MS[job];
        let mut machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
        machine.settle_idle();
        let hook = DimetrodonHook::new(PolicyHandle::new(), 600 + quantum_ms);
        let controller =
            PowerCapController::new(hook, 45.0, SimDuration::from_millis(quantum_ms));
        let mut system = System::new(machine);
        system.set_hook(Box::new(controller));
        for _ in 0..4 {
            system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite()));
        }
        system.run_until(SimTime::from_secs(150));
        let observed = system
            .observed_temp_over(SimTime::from_secs(100))
            .expect("samples");
        // Mean power over the tail, sampled once per second.
        let mut sum = 0.0;
        for s in 150..180 {
            system.run_until(SimTime::from_secs(s));
            sum += system.machine().package_power();
        }
        (sum / 30.0, observed)
    });
    for (&quantum_ms, &(mean_power, observed)) in QUANTA_MS.iter().zip(&results) {
        push(
            table,
            "power_cap_45w",
            &format!("L{quantum_ms}ms"),
            "mean_power_w",
            mean_power,
        );
        push(
            table,
            "power_cap_45w",
            &format!("L{quantum_ms}ms"),
            "observed_temp_c",
            observed,
        );
    }
}

/// 10. Preventive (Dimetrodon) vs reactive (PROCHOT-style trip) thermal
///     management — the paper's §1 framing. At a matched throughput
///     loss, the reactive throttle only clips the peak at its trigger
///     while Dimetrodon lowers the whole trajectory.
fn preventive_vs_reactive(table: &mut Table, config: RunConfig) {
    let reactive_run = |trigger: f64| {
        let mut machine_config = MachineConfig::xeon_e5520();
        machine_config.thermal_throttle = Some(ThermalThrottle::prochot_at(trigger));
        let mut machine = Machine::new(machine_config).expect("preset");
        machine.settle_idle();
        let mut system = System::new(machine);
        let ids: Vec<_> = (0..4)
            .map(|_| system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite())))
            .collect();
        system.run_until(SimTime::ZERO + config.duration);
        let observed = system
            .observed_temp_over(SimTime::ZERO + (config.duration - config.measure_window))
            .expect("samples");
        let executed: f64 = ids
            .iter()
            .map(|&id| system.thread_stats(id).cpu_executed.as_secs_f64())
            .sum();
        (observed, executed / (4.0 * config.duration.as_secs_f64()))
    };

    // Both reactive triggers in parallel; the matched preventive run
    // depends on the in-range trigger's throughput, so it follows.
    let triggers = [56.0, 50.0];
    let reactive_runs = parallel_map(triggers.len(), |job| reactive_run(triggers[job]));

    // Near-critical trigger (how real systems deploy reactive DTM): it
    // barely touches the average in normal operation.
    let near_critical = reactive_runs[0];
    push(
        table,
        "preventive_vs_reactive",
        "reactive_56c",
        "observed_temp_c",
        near_critical.0,
    );
    push(table, "preventive_vs_reactive", "reactive_56c", "throughput", near_critical.1);

    // In-range trigger: the trip becomes a closed-loop duty regulator.
    let reactive = reactive_runs[1];
    push(table, "preventive_vs_reactive", "reactive_50c", "observed_temp_c", reactive.0);
    push(table, "preventive_vs_reactive", "reactive_50c", "throughput", reactive.1);

    // Preventive: spend the same throughput with short quanta.
    let budget = (1.0 - reactive.1).clamp(0.01, 0.95);
    let params = dimetrodon::PolicyPlanner::new(SimDuration::from_millis(100))
        .for_throughput_budget(budget)
        .expect("budget is feasible");
    let preventive = characterize(
        SaturatingWorkload::CpuBurn,
        Actuation::Injection {
            params,
            model: InjectionModel::Probabilistic,
        },
        config,
    );
    push(
        table,
        "preventive_vs_reactive",
        "dimetrodon_matched",
        "observed_temp_c",
        preventive.tail_temp,
    );
    push(
        table,
        "preventive_vs_reactive",
        "dimetrodon_matched",
        "throughput",
        preventive.throughput,
    );
}

/// 7. Thermal-aware wake placement on a pulsed single-thread load.
fn thermal_placement(table: &mut Table) {
    use dimetrodon_sched::{Action, Burst, ThreadBody};
    #[derive(Debug, Clone)]
    struct Pulsed {
        left: SimDuration,
    }
    impl ThreadBody for Pulsed {
        fn next_action(&mut self, _now: SimTime) -> Action {
            if self.left.is_zero() {
                self.left = SimDuration::from_millis(300);
                return Action::Sleep(SimDuration::from_millis(60));
            }
            let chunk = self.left.min(SimDuration::from_millis(10));
            self.left -= chunk;
            Action::Run(Burst::new(chunk, 1.0))
        }
    }
    let hottest_means = parallel_map(2, |job| {
        let placement = job == 1;
        let machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
        let mut system = System::with_parts(
            machine,
            Box::new(BsdScheduler::new()),
            Box::new(NullHook),
            SchedConfig {
                thermal_aware_placement: placement,
                ..SchedConfig::default()
            },
        );
        system.machine_mut().settle_idle();
        system.spawn(
            ThreadKind::User,
            Box::new(Pulsed {
                left: SimDuration::from_millis(300),
            }),
        );
        system.run_until(SimTime::from_secs(90));
        (0..4)
            .map(|i| {
                system
                    .core_temp_series(dimetrodon_machine::CoreId(i))
                    .mean_over(SimTime::from_secs(45))
                    .expect("sampled")
            })
            .fold(f64::MIN, f64::max)
    });
    for (job, &hottest) in hottest_means.iter().enumerate() {
        push(
            table,
            "placement",
            if job == 1 { "thermal_aware" } else { "queue_order" },
            "hottest_die_mean_c",
            hottest,
        );
    }
}
