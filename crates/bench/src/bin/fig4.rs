//! Regenerates Figure 4: wide-range sweeps of Dimetrodon vs VFS vs
//! `p4tcc`, with pareto boundaries and the Dimetrodon/VFS crossover.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin fig4
//! ```

use dimetrodon_analysis::Table;
use dimetrodon_bench::{banner, quick_requested, run_config_from_args, write_csv};
use dimetrodon_harness::experiments::fig4::{self, SweepPoint};

fn rows(table: &mut Table, mechanism: &str, points: &[SweepPoint], pareto: &[SweepPoint]) {
    for point in points {
        let on_frontier = pareto
            .iter()
            .any(|f| f.tag == point.tag && f.benefit == point.benefit);
        table.row(vec![
            mechanism.to_string(),
            point.tag.clone(),
            format!("{:.4}", point.benefit),
            format!("{:.4}", point.cost),
            if on_frontier { "yes" } else { "no" }.to_string(),
        ]);
    }
}

fn main() -> std::process::ExitCode {
    banner(
        "Figure 4",
        "Dimetrodon vs voltage/frequency scaling vs p4tcc clock duty cycling",
    );
    let config = run_config_from_args(104);
    let data = if quick_requested() {
        fig4::run_subset(config, &[0.25, 0.75], &[5, 100], true)
    } else {
        fig4::run(config)
    };

    let mut table = Table::new(vec![
        "mechanism",
        "config",
        "temp_reduction",
        "throughput_reduction",
        "pareto",
    ]);
    rows(&mut table, "dimetrodon", &data.dimetrodon, &data.dimetrodon_pareto());
    rows(&mut table, "vfs", &data.vfs, &data.vfs_pareto());
    rows(&mut table, "p4tcc", &data.tcc, &data.tcc_pareto());
    println!("{}", table.render());
    write_csv("fig4_mechanism_sweeps", &table);

    match fig4::crossover_temp_reduction(&data) {
        Some(r) => println!(
            "Dimetrodon matches or beats VFS for temperature reductions up to \
             ~{:.0}% (the paper reports ~30%)",
            r * 100.0
        ),
        None => println!("no crossover found in this sweep"),
    }
    let sub_one = data.tcc.iter().filter(|p| p.benefit < p.cost).count();
    println!(
        "p4tcc configurations below 1:1 trade-off: {}/{} (the paper: all)",
        sub_one,
        data.tcc.len()
    );

    dimetrodon_bench::supervision_epilogue()
}
