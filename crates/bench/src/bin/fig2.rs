//! Regenerates Figure 2: core temperature rise over idle during cpuburn
//! for p ∈ {0, .25, .5, .75} at L = 100 ms.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin fig2
//! ```

use dimetrodon_analysis::Table;
use dimetrodon_bench::{banner, run_config_from_args, write_csv};
use dimetrodon_harness::experiments::fig2;

fn main() -> std::process::ExitCode {
    banner(
        "Figure 2",
        "temperature rise over idle, 4x cpuburn, varying idle proportion p (L = 100 ms)",
    );
    let config = run_config_from_args(102);
    let data = fig2::run(config);

    println!("idle temperature: {:.1} C", data.idle_temp);
    let mut summary = Table::new(vec!["p", "tail rise over idle (C)"]);
    for curve in &data.curves {
        summary.row(vec![
            format!("{:.2}", curve.p),
            format!("{:.1}", curve.tail_rise),
        ]);
    }
    println!("{}", summary.render());

    // Time-series CSV: one column per curve, aligned on whole seconds.
    let mut table = Table::new(vec!["time_s", "p0", "p25", "p50", "p75"]);
    let seconds = config.duration.as_millis() / 1000;
    for sec in 0..seconds {
        let mut row = vec![format!("{sec}")];
        for curve in &data.curves {
            let v = curve
                .rise
                .iter()
                .find(|(t, _)| *t as u64 == sec)
                .map(|&(_, r)| format!("{r:.2}"))
                .unwrap_or_default();
            row.push(v);
        }
        table.row(row);
    }
    write_csv("fig2_temperature_rise", &table);

    dimetrodon_bench::supervision_epilogue()
}
