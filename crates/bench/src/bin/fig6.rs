//! Regenerates Figure 6: web-workload QoS ("good" and "tolerable")
//! versus temperature reduction under the injection sweep.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin fig6
//! ```

use dimetrodon_analysis::{pareto_frontier, Histogram, Table, TradeoffPoint};
use dimetrodon_bench::{banner, quick_requested, run_config_from_args, write_csv};
use dimetrodon_harness::experiments::fig6;

fn main() -> std::process::ExitCode {
    banner(
        "Figure 6",
        "QoS vs temperature reduction for the 440-connection web workload",
    );
    let config = run_config_from_args(106);
    let data = if quick_requested() {
        fig6::run_subset(config, &[0.5, 0.9], &[50, 100])
    } else {
        fig6::run(config)
    };

    println!(
        "baseline: {} requests, {:.1}% good, {:.1}% tolerable, rise over idle {:.1} C \
         (the paper observed ~6 C)\n",
        data.baseline.total(),
        data.baseline.good_fraction() * 100.0,
        data.baseline.tolerable_fraction() * 100.0,
        data.baseline_rise,
    );

    let mut table = Table::new(vec![
        "p",
        "L_ms",
        "temp_reduction",
        "good_qos",
        "tolerable_qos",
        "mean_latency_s",
        "requests",
    ]);
    for point in &data.points {
        table.row(vec![
            format!("{:.2}", point.p),
            format!("{}", point.l_ms),
            format!("{:.4}", point.temp_reduction),
            format!("{:.4}", point.good_qos),
            format!("{:.4}", point.tolerable_qos),
            format!("{:.2}", point.stats.mean_latency().unwrap_or(0.0)),
            format!("{}", point.stats.total()),
        ]);
    }
    println!("{}", table.render());
    write_csv("fig6_web_qos", &table);

    // Latency distribution of the heaviest surviving configuration.
    if let Some(worst) = data
        .points
        .iter()
        .filter(|p| p.stats.total() > 0)
        .max_by(|a, b| {
            a.stats
                .mean_latency()
                .partial_cmp(&b.stats.mean_latency())
                .expect("no NaN")
        })
    {
        let mut hist = Histogram::new(0.0, 10.0, 20);
        for &latency in worst.stats.latencies() {
            hist.add(latency);
        }
        println!(
            "latency distribution at p={}, L={}ms ({}):",
            worst.p, worst.l_ms, hist
        );
        print!("{}", hist.render(40));
        println!();
    }

    // The darkened pareto boundaries of the figure, per metric.
    for (metric, getter) in [
        ("good", Box::new(|p: &fig6::Fig6Point| p.good_qos) as Box<dyn Fn(&fig6::Fig6Point) -> f64>),
        ("tolerable", Box::new(|p: &fig6::Fig6Point| p.tolerable_qos)),
    ] {
        let points: Vec<TradeoffPoint<String>> = data
            .points
            .iter()
            .map(|p| {
                TradeoffPoint::new(
                    p.temp_reduction,
                    1.0 - getter(p).min(1.0),
                    format!("p={},L={}ms", p.p, p.l_ms),
                )
            })
            .collect();
        let frontier = pareto_frontier(&points);
        let described: Vec<String> = frontier
            .iter()
            .map(|f| format!("{} ({:.0}% @ QoS {:.0}%)", f.tag, f.benefit * 100.0, (1.0 - f.cost) * 100.0))
            .collect();
        println!("{metric} pareto boundary: {}", described.join(", "));
    }

    dimetrodon_bench::supervision_epilogue()
}
