//! Regenerates the §3.3 energy validation: Dimetrodon's energy versus
//! race-to-idle over equal windows, measured with the simulated current
//! clamp.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin validate_energy
//! ```

use dimetrodon_analysis::Table;
use dimetrodon_bench::{apply_common_args, banner, quick_requested, write_csv};
use dimetrodon_harness::experiments::validation;

fn main() -> std::process::ExitCode {
    apply_common_args();
    banner(
        "S3.3 (energy)",
        "Dimetrodon energy / race-to-idle energy over equal windows (7 s finite cpuburn)",
    );
    let trials = if quick_requested() { 2 } else { 5 };
    println!("running {trials} trials per configuration (paper: 5)...\n");
    let v = validation::energy(trials, 109);

    let mut table = Table::new(vec!["p", "L_ms", "trial ratios (dimetrodon / race-to-idle)"]);
    let mut min_ratio = f64::INFINITY;
    let mut max_ratio = f64::NEG_INFINITY;
    for row in &v.rows {
        min_ratio = row.ratios.iter().copied().fold(min_ratio, f64::min);
        max_ratio = row.ratios.iter().copied().fold(max_ratio, f64::max);
        table.row(vec![
            format!("{:.2}", row.p),
            format!("{}", row.l_ms),
            row.ratios
                .iter()
                .map(|r| format!("{:.3}", r))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    println!("{}", table.render());
    write_csv("validation_energy", &table);

    println!(
        "ratios span {:.1}%..{:.1}% of race-to-idle energy; mean deviation {:+.2}%, \
         mean |deviation| {:.2}% (the paper: 97.6%..103.7%, avg -0.37%, avg abs 1.67%)",
        min_ratio * 100.0,
        max_ratio * 100.0,
        v.overall_deviation.mean * 100.0,
        v.overall_deviation.mean_abs * 100.0,
    );

    dimetrodon_bench::supervision_epilogue()
}
