//! Regenerates the robustness study: closed-loop control under degraded
//! telemetry, fault intensity × controller hardening, with the reactive
//! thermal trip armed as the safety net.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin robustness
//! ```

use dimetrodon_analysis::Table;
use dimetrodon_bench::{banner, run_config_from_args, write_csv};
use dimetrodon_harness::experiments::robustness;

fn main() -> std::process::ExitCode {
    banner(
        "robustness",
        "setpoint control under sensor faults; trip activations and tracking cost",
    );
    let config = run_config_from_args(113);
    let cells = robustness::run(config);

    let mut table = Table::new(vec![
        "intensity",
        "variant",
        "tracking_rms_C",
        "peak_temp_C",
        "trips",
        "throughput",
        "final_p",
        "fallback_ticks",
        "dropped_reads",
    ]);
    for cell in &cells {
        table.row(vec![
            format!("{:.2}", cell.intensity),
            cell.variant.label().to_string(),
            format!("{:.2}", cell.tracking_rms),
            format!("{:.2}", cell.peak_temp),
            format!("{}", cell.trips),
            format!("{:.3}", cell.throughput),
            format!("{:.3}", cell.final_p),
            format!("{}", cell.fallback_ticks),
            format!("{}", cell.dropped_reads),
        ]);
    }
    println!("{}", table.render());
    write_csv("robustness", &table);

    let tripped: u64 = cells.iter().map(|c| c.trips).sum();
    println!(
        "\nAcross the grid the reactive trip latched {tripped} time(s); \
         peak sensor temperature stayed below {:.0} C + 1 in every cell: {}.",
        robustness::CRITICAL_CELSIUS,
        cells
            .iter()
            .all(|c| c.peak_temp < robustness::CRITICAL_CELSIUS + 1.0)
    );
    println!(
        "Hardened cells spend their blind ticks in fallback (preventive \
         injection ceded to the trip) instead of integrating noise."
    );

    dimetrodon_bench::supervision_epilogue()
}
