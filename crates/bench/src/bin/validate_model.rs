//! Regenerates the §3.3 throughput-model validation: measured runtimes of
//! a finite cpuburn versus the analytic `D(t) = R + S·p/(1−p)·L`.
//!
//! ```text
//! cargo run --release -p dimetrodon-bench --bin validate_model
//! # paper fidelity (100 trials/configuration):
//! cargo run --release -p dimetrodon-bench --bin validate_model -- --trials 100
//! ```

use dimetrodon_analysis::Table;
use dimetrodon_bench::{apply_common_args, banner, quick_requested, write_csv};
use dimetrodon_harness::experiments::validation;

fn trials_from_args(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--trials") {
        Some(pos) => args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--trials requires an integer"),
        None => default,
    }
}

fn main() -> std::process::ExitCode {
    apply_common_args();
    banner(
        "S3.3 (throughput)",
        "measured runtime vs D(t) = R + S*p/(1-p)*L over the paper's (p, L) grid",
    );
    let trials = trials_from_args(if quick_requested() { 5 } else { 30 });
    println!("running {trials} trials per configuration (paper: 100)...\n");
    let v = validation::throughput(trials, 108);

    let mut table = Table::new(vec![
        "p",
        "L_ms",
        "predicted_s",
        "measured_mean_s",
        "deviation_pct",
    ]);
    for row in &v.rows {
        table.row(vec![
            format!("{:.2}", row.p),
            format!("{}", row.l_ms),
            format!("{:.3}", row.predicted_s),
            format!("{:.3}", row.measured_s),
            format!("{:+.2}", row.mean_deviation() * 100.0),
        ]);
    }
    println!("{}", table.render());
    write_csv("validation_throughput", &table);

    println!(
        "overall deviation: mean {:+.2}%, |mean| {:.2}%, sd {:.2}% over {} trials \
         (the paper: throughput ~1.0% lower than predicted on average)",
        v.overall.mean * 100.0,
        v.overall.mean_abs * 100.0,
        v.overall.std_dev * 100.0,
        v.overall.n,
    );

    dimetrodon_bench::supervision_epilogue()
}
