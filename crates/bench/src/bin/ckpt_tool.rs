//! Checkpoint file inspection and corruption: the CI harness around the
//! durable-checkpoint robustness guarantees.
//!
//! ```text
//! cargo run -p dimetrodon-bench --bin ckpt_tool -- info <file.ckpt>
//! cargo run -p dimetrodon-bench --bin ckpt_tool -- flip <file.ckpt> <offset> [bit]
//! cargo run -p dimetrodon-bench --bin ckpt_tool -- truncate <file.ckpt> <len>
//! cargo run -p dimetrodon-bench --bin ckpt_tool -- torture <file.ckpt> [stride]
//! ```
//!
//! `info` verifies and summarizes a checkpoint (exit 1 on any decode
//! error). `flip` and `truncate` corrupt a file **in place** — they
//! exist so CI can damage a real checkpoint and assert the restore path
//! fails loudly. `torture` applies every single-bit flip (thinned by the
//! optional stride; default covers every byte of files up to 64 KiB)
//! and every truncation length to an in-memory copy, and exits nonzero
//! if the decoder accepts any corrupted image.

use std::process::ExitCode;

use dimetrodon_ckpt::decode_checkpoint;
use dimetrodon_faults::{torture_checkpoint, Corruption};

fn usage() -> ExitCode {
    eprintln!(
        "usage: ckpt_tool info <file> | flip <file> <offset> [bit] | \
         truncate <file> <len> | torture <file> [stride]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) => {
            eprintln!("ckpt_tool: read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "info" => match decode_checkpoint(&bytes) {
            Ok((header, frames)) => {
                println!(
                    "{path}: fingerprint {:016x} seq {} state-frames {} ({} bytes)",
                    header.fingerprint,
                    header.seq,
                    frames.len(),
                    bytes.len()
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("ckpt_tool: {path}: {err}");
                ExitCode::FAILURE
            }
        },
        "flip" => {
            let Some(offset) = args.get(2).and_then(|s| s.parse::<usize>().ok()) else {
                return usage();
            };
            let bit: u8 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0);
            if offset >= bytes.len() || bit > 7 {
                eprintln!(
                    "ckpt_tool: flip out of range ({} bytes, bit {bit})",
                    bytes.len()
                );
                return ExitCode::FAILURE;
            }
            let corrupted = Corruption::BitFlip { offset, bit }.apply(&bytes);
            if let Err(err) = std::fs::write(path, corrupted) {
                eprintln!("ckpt_tool: write {path}: {err}");
                return ExitCode::FAILURE;
            }
            println!("{path}: flipped bit {bit} of byte {offset}");
            ExitCode::SUCCESS
        }
        "truncate" => {
            let Some(len) = args.get(2).and_then(|s| s.parse::<usize>().ok()) else {
                return usage();
            };
            if len >= bytes.len() {
                eprintln!(
                    "ckpt_tool: truncate length {len} is not shorter than the file ({} bytes)",
                    bytes.len()
                );
                return ExitCode::FAILURE;
            }
            let corrupted = Corruption::Truncate { len }.apply(&bytes);
            if let Err(err) = std::fs::write(path, corrupted) {
                eprintln!("ckpt_tool: write {path}: {err}");
                return ExitCode::FAILURE;
            }
            println!("{path}: truncated to {len} bytes");
            ExitCode::SUCCESS
        }
        "torture" => {
            if decode_checkpoint(&bytes).is_err() {
                eprintln!("ckpt_tool: {path} does not verify clean; torture needs a valid image");
                return ExitCode::FAILURE;
            }
            let stride = match args.get(2).and_then(|s| s.parse::<usize>().ok()) {
                Some(stride) if stride > 0 => stride,
                Some(_) => return usage(),
                // Exhaustive up to 64 KiB, then thinned to keep CI fast
                // while still covering every frame.
                None => (bytes.len() / 65_536).max(1),
            };
            let report = torture_checkpoint(&bytes, stride);
            println!(
                "{path}: {} corruption(s), {} rejected, {} accepted",
                report.cases,
                report.rejected,
                report.accepted.len()
            );
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                for case in &report.accepted {
                    eprintln!("ckpt_tool: ACCEPTED corrupt image: {case}");
                }
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
