//! Shared scaffolding for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper: it runs the corresponding `dimetrodon-harness` experiment,
//! prints the rows/series the paper reports, and writes a CSV under
//! `results/` for plotting. Pass `--quick` to any binary to run the
//! shortened configuration (used in smoke tests); the default matches the
//! paper's 300 s methodology.

use std::fs;
use std::path::PathBuf;

use dimetrodon_analysis::Table;
use dimetrodon_harness::RunConfig;

/// Parses the common CLI convention: `--quick` selects the shortened run
/// configuration, `--seed N` overrides the seed, and `--jobs N` sets the
/// sweep worker count (default: one per available core; results are
/// identical at every worker count).
///
/// # Panics
///
/// Panics if `--seed` or `--jobs` is present without a valid integer
/// after it.
pub fn run_config_from_args(default_seed: u64) -> RunConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut seed = default_seed;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        seed = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--seed requires an integer");
    }
    apply_jobs_from_args(&args);
    if args.iter().any(|a| a == "--quick") {
        RunConfig::quick(seed)
    } else {
        RunConfig::paper(seed)
    }
}

/// Applies a `--jobs N` argument (if present) to the sweep engine.
///
/// # Panics
///
/// Panics if `--jobs` is present without a positive integer after it.
pub fn apply_jobs_from_args(args: &[String]) {
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        let jobs: usize = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--jobs requires a positive integer");
        assert!(jobs > 0, "--jobs requires a positive integer");
        dimetrodon_harness::sweep::set_jobs(jobs);
    }
}

/// Whether `--quick` was passed (for binaries that scale sweep grids as
/// well as durations).
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a banner naming the experiment being regenerated.
pub fn banner(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// The output directory for CSVs (`results/`, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes a table as CSV under `results/` and reports the path.
pub fn write_csv(name: &str, table: &Table) {
    let path = results_dir().join(format!("{name}.csv"));
    fs::write(&path, table.render_csv()).expect("write csv");
    println!("[wrote {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_scale() {
        let config = run_config_from_args(5);
        assert_eq!(config.seed, 5);
        assert_eq!(
            config.duration,
            dimetrodon_sim_core::SimDuration::from_secs(300)
        );
    }

    #[test]
    fn write_csv_roundtrip() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into()]);
        write_csv("bench_selftest", &t);
        let read = std::fs::read_to_string(results_dir().join("bench_selftest.csv")).unwrap();
        assert_eq!(read, "a\n1\n");
        let _ = std::fs::remove_file(results_dir().join("bench_selftest.csv"));
    }
}
