//! Shared scaffolding for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper: it runs the corresponding `dimetrodon-harness` experiment,
//! prints the rows/series the paper reports, and writes a CSV under
//! `results/` for plotting. Pass `--quick` to any binary to run the
//! shortened configuration (used in smoke tests); the default matches the
//! paper's 300 s methodology.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use dimetrodon_analysis::Table;
use dimetrodon_harness::supervise::{self, PanicPolicy, SupervisorConfig};
use dimetrodon_harness::RunConfig;

/// Parses the common CLI convention: `--quick` selects the shortened run
/// configuration, `--seed N` overrides the seed, `--jobs N` sets the
/// sweep worker count (default: one per available core; results are
/// identical at every worker count), and `--no-snapshot` disables
/// warm-prefix snapshot reuse (identical results, cold-path timing).
/// Also installs the sweep supervisor from the supervision flags (see
/// [`supervisor_from_args`]).
///
/// # Panics
///
/// Panics if `--seed` or `--jobs` is present without a valid integer
/// after it.
pub fn run_config_from_args(default_seed: u64) -> RunConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut seed = default_seed;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        seed = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--seed requires an integer");
    }
    apply_jobs_from_args(&args);
    apply_snapshot_from_args(&args);
    supervise::install(supervisor_from_args(&args));
    if args.iter().any(|a| a == "--quick") {
        RunConfig::quick(seed)
    } else {
        RunConfig::paper(seed)
    }
}

/// Parses the supervision flags shared by every bench binary:
///
/// * `--strict` — abort the whole sweep on a panicking point (the
///   pre-supervisor behaviour) instead of quarantining it;
/// * `--retries N` — extra attempts for a failed point (default 0), with
///   seeds re-derived from the grid so output stays deterministic;
/// * `--point-deadline SECS` — wall-clock watchdog per point attempt;
/// * `--sweep-budget SECS` — wall-clock budget per sweep, points past it
///   are skipped;
/// * `--resume` — replay completed points from the on-disk journal of a
///   previous (possibly killed) run;
/// * `--no-journal` — disable the journal entirely (it defaults to
///   `results/.journal/`).
///
/// # Panics
///
/// Panics if a flag's value is missing or unparsable.
pub fn supervisor_from_args(args: &[String]) -> SupervisorConfig {
    let seconds_after = |flag: &str| -> Option<Duration> {
        args.iter().position(|a| a == flag).map(|pos| {
            let secs: f64 = args
                .get(pos + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("{flag} requires a number of seconds"));
            assert!(
                secs.is_finite() && secs > 0.0,
                "{flag} requires a positive number of seconds"
            );
            Duration::from_secs_f64(secs)
        })
    };
    let retries = match args.iter().position(|a| a == "--retries") {
        Some(pos) => args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--retries requires a non-negative integer"),
        None => 0,
    };
    let journal_dir = if args.iter().any(|a| a == "--no-journal") {
        None
    } else {
        Some(results_dir().join(".journal"))
    };
    SupervisorConfig {
        policy: if args.iter().any(|a| a == "--strict") {
            PanicPolicy::Strict
        } else {
            PanicPolicy::Quarantine
        },
        point_deadline: seconds_after("--point-deadline"),
        sweep_budget: seconds_after("--sweep-budget"),
        retries,
        journal_dir,
        resume: args.iter().any(|a| a == "--resume"),
        backoff: true,
    }
}

/// End-of-run supervision report: prints how many points were replayed
/// from journals and every quarantine/timeout/skip incident, and turns
/// incidents into a nonzero exit code so CI catches degraded runs even
/// though the rest of the grid completed.
pub fn supervision_epilogue() -> ExitCode {
    let replayed = supervise::take_replayed();
    if replayed > 0 {
        println!("[resume: {replayed} point(s) replayed from journal]");
    }
    let incidents = supervise::take_incidents();
    if incidents.is_empty() {
        return ExitCode::SUCCESS;
    }
    eprintln!("{} point(s) failed under supervision:", incidents.len());
    for incident in &incidents {
        eprintln!("  {incident}");
    }
    ExitCode::FAILURE
}

/// Applies a `--jobs N` argument (if present) to the sweep engine.
///
/// # Panics
///
/// Panics if `--jobs` is present without a positive integer after it.
pub fn apply_jobs_from_args(args: &[String]) {
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        let jobs: usize = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--jobs requires a positive integer");
        assert!(jobs > 0, "--jobs requires a positive integer");
        dimetrodon_harness::sweep::set_jobs(jobs);
    }
}

/// Applies a `--no-snapshot` argument (if present): disables warm-prefix
/// snapshot reuse in the harness, so every run recomputes its warmup.
/// Results are identical either way; the flag exists for timing
/// comparisons and as an escape hatch.
pub fn apply_snapshot_from_args(args: &[String]) {
    if args.iter().any(|a| a == "--no-snapshot") {
        dimetrodon_harness::snapshot::set_enabled(false);
    }
}

/// Installs the worker-count override, the snapshot toggle, and the sweep
/// supervisor from the process arguments, for binaries that do not take a
/// [`RunConfig`] (the validation bins); [`run_config_from_args`] does
/// this implicitly.
pub fn apply_common_args() {
    let args: Vec<String> = std::env::args().collect();
    apply_jobs_from_args(&args);
    apply_snapshot_from_args(&args);
    supervise::install(supervisor_from_args(&args));
}

/// Whether `--quick` was passed (for binaries that scale sweep grids as
/// well as durations).
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parsed durable-checkpoint flags, shared by checkpoint-aware binaries:
///
/// * `--checkpoint-every N` — control epochs (fleet) or events (single
///   machine) between checkpoint saves, overriding the default cadence;
/// * `--no-checkpoint` — disable checkpoint saving entirely;
/// * `--restore` — resume from the newest verifiable checkpoint (falls
///   back past corrupt files; exits nonzero when none verifies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointArgs {
    /// Explicit `--checkpoint-every` cadence, when given.
    pub every: Option<u64>,
    /// Whether `--no-checkpoint` was passed.
    pub disabled: bool,
    /// Whether `--restore` was passed.
    pub restore: bool,
}

/// Parses the checkpoint flags from an argument list.
///
/// # Panics
///
/// Panics if `--checkpoint-every` is present without a positive integer
/// after it, or combined with `--no-checkpoint`.
pub fn checkpoint_args(args: &[String]) -> CheckpointArgs {
    let every = args.iter().position(|a| a == "--checkpoint-every").map(|pos| {
        let n: u64 = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--checkpoint-every requires a positive integer");
        assert!(n > 0, "--checkpoint-every requires a positive integer");
        n
    });
    let disabled = args.iter().any(|a| a == "--no-checkpoint");
    assert!(
        !(disabled && every.is_some()),
        "--checkpoint-every and --no-checkpoint are mutually exclusive"
    );
    CheckpointArgs {
        every,
        disabled,
        restore: args.iter().any(|a| a == "--restore"),
    }
}

/// The directory durable checkpoints live in (`results/.ckpt/`).
pub fn ckpt_dir() -> PathBuf {
    results_dir().join(".ckpt")
}

/// Applies a `--journal-gc K` argument (if present): keep-last-K
/// retention over `results/.journal/`, sparing any file named by one of
/// `active_fingerprints` (the runs this process is using) regardless of
/// age. Off by default — journals are cheap and resumability is worth
/// more than the disk.
///
/// # Panics
///
/// Panics if `--journal-gc` is present without a non-negative integer
/// after it.
pub fn apply_journal_gc_from_args(args: &[String], active_fingerprints: &[u64]) {
    if let Some(pos) = args.iter().position(|a| a == "--journal-gc") {
        let keep: usize = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--journal-gc requires a non-negative keep count");
        let dir = results_dir().join(".journal");
        let removed =
            dimetrodon_harness::supervise::gc_journals(&dir, keep, active_fingerprints);
        if removed > 0 {
            println!("[journal-gc: removed {removed} old journal file(s), kept last {keep}]");
        }
    }
}

/// Prints a banner naming the experiment being regenerated.
pub fn banner(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// The output directory for CSVs (`results/`, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes a table as CSV under `results/` and reports the path.
pub fn write_csv(name: &str, table: &Table) {
    let path = results_dir().join(format!("{name}.csv"));
    fs::write(&path, table.render_csv()).expect("write csv");
    println!("[wrote {}]", path.display());
}

/// The Figure 3 efficiency table, shared by the `fig3` binary and
/// `run_all` so both emit the identical `fig3_efficiency.csv` (which the
/// CI kill-and-resume check diffs byte-for-byte).
pub fn fig3_table(data: &dimetrodon_harness::experiments::fig3::Fig3Data) -> Table {
    let mut table = Table::new(vec![
        "p",
        "L_ms",
        "temp_reduction",
        "throughput_reduction",
        "efficiency",
    ]);
    for point in &data.points {
        table.row(vec![
            format!("{:.2}", point.p),
            format!("{}", point.l_ms),
            format!("{:.4}", point.temp_reduction),
            format!("{:.4}", point.throughput_reduction),
            format!("{:.2}", point.efficiency()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_scale() {
        let config = run_config_from_args(5);
        assert_eq!(config.seed, 5);
        assert_eq!(
            config.duration,
            dimetrodon_sim_core::SimDuration::from_secs(300)
        );
    }

    #[test]
    fn write_csv_roundtrip() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into()]);
        write_csv("bench_selftest", &t);
        let read = std::fs::read_to_string(results_dir().join("bench_selftest.csv")).unwrap();
        assert_eq!(read, "a\n1\n");
        let _ = std::fs::remove_file(results_dir().join("bench_selftest.csv"));
    }
}
