//! Criterion micro-benchmarks of the simulation substrate: how fast the
//! event queue, thermal integrator, machine model, and full system run.
//! These guard the simulator's own performance (a 300 s characterisation
//! must stay interactive) rather than reproduce paper results — the
//! `experiments` bench file and the `fig*` binaries do that.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dimetrodon_machine::{Machine, MachineConfig};
use dimetrodon_power::CoreState;
use dimetrodon_sched::{Spin, System, ThreadKind};
use dimetrodon_sim_core::{EventQueue, SimDuration, SimTime};
use dimetrodon_thermal::ThermalNetworkBuilder;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut queue| {
                for i in 0..1000u32 {
                    queue.push(SimTime::from_nanos(u64::from(i.wrapping_mul(2_654_435_761))), i);
                }
                while queue.pop().is_some() {}
                queue
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_thermal_advance(c: &mut Criterion) {
    let mut builder = ThermalNetworkBuilder::new(25.0);
    let die = builder.add_node("die", 0.15);
    let hotspot = builder.add_node("hotspot", 0.002);
    let pkg = builder.add_node("pkg", 100.0);
    builder.connect(hotspot, die, 1.3);
    builder.connect(die, pkg, 5.0);
    builder.connect_ambient(pkg, 5.0);
    let mut network = builder.build().expect("valid network");
    network.set_power(die, 10.0);
    network.set_power(hotspot, 6.0);

    c.bench_function("thermal_advance_1s", |b| {
        b.iter(|| {
            let mut net = network.clone();
            net.advance(SimDuration::from_secs(1));
            net
        });
    });
}

fn bench_machine_advance(c: &mut Criterion) {
    let mut machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
    for core in machine.core_ids().collect::<Vec<_>>() {
        machine.set_core_state(core, CoreState::active(1.0));
    }
    c.bench_function("machine_advance_1s", |b| {
        b.iter(|| {
            let mut m = machine.clone();
            m.advance(SimDuration::from_secs(1));
            m
        });
    });
}

fn bench_full_system_second(c: &mut Criterion) {
    c.bench_function("system_simulated_second_4x_cpuburn", |b| {
        b.iter_batched(
            || {
                let machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
                let mut system = System::new(machine);
                for _ in 0..4 {
                    system.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
                }
                system
            },
            |mut system| {
                system.run_until(SimTime::from_secs(1));
                system
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    substrate,
    bench_event_queue,
    bench_thermal_advance,
    bench_machine_advance,
    bench_full_system_second
);
criterion_main!(substrate);
