//! Benchmarks of the parallel sweep engine: how many characterisation
//! runs per second the worker pool sustains at one worker versus one per
//! core, plus the event-queue micro-benchmark that bounds the serial
//! event loop. `BENCH_sweeps.json` at the repo root records a baseline
//! captured from this bench (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dimetrodon::{InjectionModel, InjectionParams};
use dimetrodon_harness::sweep::{self, run_sweep, SweepPoint};
use dimetrodon_harness::{snapshot, Actuation, RunConfig, SaturatingWorkload};
use dimetrodon_sim_core::{EventQueue, SimDuration, SimTime};

/// The benchmark grid: 8 independent cpuburn characterisations, short
/// enough to sample repeatedly but long enough to dominate pool overhead.
/// `warmup` is the shared warm-start prefix; zero reproduces the original
/// cold grid (actuation from the first dispatch, nothing shareable).
fn grid(warmup: SimDuration) -> Vec<SweepPoint> {
    let config = RunConfig {
        duration: SimDuration::from_secs(30),
        measure_window: SimDuration::from_secs(10),
        warmup,
        seed: 7,
    };
    let mut points = Vec::new();
    for (i, &p) in [0.25, 0.5].iter().enumerate() {
        for (j, &l_ms) in [2u64, 10, 25, 100].iter().enumerate() {
            points.push(SweepPoint::new(
                SaturatingWorkload::CpuBurn,
                Actuation::Injection {
                    params: InjectionParams::new(p, SimDuration::from_millis(l_ms)),
                    model: InjectionModel::Probabilistic,
                },
                RunConfig {
                    seed: config.seed.wrapping_add((i * 97 + j * 13 + 1) as u64),
                    ..config
                },
            ));
        }
    }
    points
}

fn bench_sweep_engine(c: &mut Criterion) {
    let points = grid(SimDuration::ZERO);
    // The warm grid shares a 25 s unactuated prefix of its 30 s runs —
    // the shape of a real (p, L) sweep, where points differ only in the
    // controller parameters that matter after warmup.
    let warm_points = grid(SimDuration::from_secs(25));
    let all_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(10);

    for jobs in [1, all_cores] {
        group.bench_function(&format!("grid8_jobs{jobs}"), |b| {
            sweep::set_jobs(jobs);
            b.iter(|| run_sweep(&points));
            sweep::set_jobs(0);
        });
    }
    for jobs in [1, all_cores] {
        group.bench_function(&format!("grid8_warm_jobs{jobs}"), |b| {
            sweep::set_jobs(jobs);
            // Clear the snapshot store each iteration so every sample
            // honestly pays its warmup once, rather than amortising one
            // warmup over the whole criterion sample set.
            b.iter(|| {
                snapshot::reset();
                run_sweep(&warm_points)
            });
            sweep::set_jobs(0);
        });
    }
    group.bench_function("grid8_warm_nosnap_jobs1", |b| {
        sweep::set_jobs(1);
        snapshot::set_enabled(false);
        b.iter(|| run_sweep(&warm_points));
        snapshot::set_enabled(true);
        sweep::set_jobs(0);
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sweep_event_queue_push_pop_4k", |b| {
        b.iter_batched(
            || EventQueue::<u32>::with_capacity(4096),
            |mut queue| {
                for i in 0..4096u32 {
                    queue.push(
                        SimTime::from_nanos(u64::from(i.wrapping_mul(2_654_435_761))),
                        i,
                    );
                }
                while queue.pop().is_some() {}
                queue
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_sweep_engine, bench_event_queue);
criterion_main!(benches);
