//! One criterion bench per table and figure: each target exercises the
//! exact experiment code that regenerates the paper artefact, at reduced
//! duration so `cargo bench` completes in minutes. The full-scale
//! regeneration (paper durations, full sweep grids) lives in the `fig*`,
//! `table1`, and `validate_*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use dimetrodon_harness::experiments::{fig1, fig2, fig3, fig4, fig5, fig6, table1, validation};
use dimetrodon_harness::{RunConfig, SaturatingWorkload};
use dimetrodon_sim_core::SimDuration;
use dimetrodon_workload::SpecBenchmark;

/// A short-but-meaningful configuration: long enough that the machine
/// approaches its slow time constant, short enough to benchmark.
fn bench_config(seed: u64) -> RunConfig {
    RunConfig {
        duration: SimDuration::from_secs(60),
        measure_window: SimDuration::from_secs(10),
        warmup: SimDuration::ZERO,
        seed,
    }
}

fn experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("fig1_power_traces", |b| {
        b.iter(|| fig1::run(11));
    });

    group.bench_function("fig2_temperature_curves", |b| {
        b.iter(|| fig2::run(bench_config(12)));
    });

    group.bench_function("fig3_efficiency_point", |b| {
        b.iter(|| fig3::run_subset(bench_config(13), &[0.5], &[5, 100]));
    });

    group.bench_function("fig4_mechanism_point", |b| {
        b.iter(|| fig4::run_subset(bench_config(14), &[0.5], &[25], true));
    });

    group.bench_function("fig5_scope_point", |b| {
        // The cool process's cycle (6 s work + 60 s sleep) needs a run
        // long enough to complete at least one cycle after the scheduler
        // warm-up.
        let config = RunConfig {
            duration: SimDuration::from_secs(150),
            measure_window: SimDuration::from_secs(20),
            warmup: SimDuration::ZERO,
            seed: 15,
        };
        b.iter(|| fig5::run_subset(config, &[0.75]));
    });

    group.bench_function("fig6_web_point", |b| {
        b.iter(|| fig6::run_subset(bench_config(16), &[0.75], &[100]));
    });

    group.bench_function("table1_row", |b| {
        b.iter(|| {
            table1::run_workloads(
                bench_config(17),
                &[(
                    SaturatingWorkload::Spec(SpecBenchmark::Astar),
                    "astar".into(),
                    71.7,
                    table1::paper_fit(SpecBenchmark::Astar),
                )],
                // Keep the sweep inside the fit window (r <= 0.5) so the
                // pareto boundary always yields enough points.
                &[0.25, 0.5],
                &[5, 25],
            )
        });
    });

    group.bench_function("validation_throughput_trial", |b| {
        b.iter(|| validation::throughput_grid(1, 18, &[0.5], &[50]));
    });

    group.bench_function("validation_energy_trial", |b| {
        b.iter(|| validation::energy_grid(1, 19, &[0.5], &[100]));
    });

    group.finish();
}

criterion_group!(paper_experiments, experiments);
criterion_main!(paper_experiments);
