//! Micro-benchmark of the thermal substep kernel itself, isolated from
//! sweep orchestration: a small network shaped like the calibrated
//! platform (10 nodes) and a large synthetic one (128 nodes), each
//! advanced through many substeps. With `--features simd` the scalar and
//! AVX2 kernels are measured side by side (via the runtime-dispatch
//! override), so a kernel regression is visible independently of the
//! sweep engine's pool and snapshot machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use dimetrodon_thermal::{ThermalNetwork, ThermalNetworkBuilder};

/// A chain-of-blocks network with `n` nodes: node 0 touches ambient,
/// each node connects to its predecessor, and every fourth node gets a
/// skip link two back — enough edge variety to exercise the packed
/// neighbour walk without leaving the sparse regime the kernel targets.
fn network(n: usize) -> ThermalNetwork {
    let mut builder = ThermalNetworkBuilder::new(25.0);
    let nodes: Vec<_> = (0..n)
        .map(|i| builder.add_node(format!("n{i}"), 0.05 + 0.01 * (i % 7) as f64))
        .collect();
    builder.connect_ambient(nodes[0], 4.0);
    for i in 1..n {
        builder.connect(nodes[i], nodes[i - 1], 0.8 + 0.1 * (i % 3) as f64);
        if i % 4 == 0 && i >= 2 {
            builder.connect(nodes[i], nodes[i - 2], 0.3);
        }
    }
    let mut network = builder.build().expect("valid network");
    for (i, &node) in nodes.iter().enumerate() {
        network.set_power(node, (i % 5) as f64 * 3.0);
    }
    network
}

/// Advances through 512 full-length substeps (the steady-state fast
/// path: precomputed decay factors, no `exp` calls).
fn advance_substeps(network: &mut ThermalNetwork) {
    let step = network.max_substep();
    for _ in 0..512 {
        network.advance(step);
    }
}

fn bench_substep(c: &mut Criterion) {
    for (label, n) in [("small_n10", 10), ("large_n128", 128)] {
        let mut group = c.benchmark_group(format!("thermal_substep_{label}"));

        group.bench_function("scalar", |b| {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            dimetrodon_thermal::simd::force_scalar(true);
            let mut network = network(n);
            b.iter(|| advance_substeps(&mut network));
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            dimetrodon_thermal::simd::force_scalar(false);
        });

        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if dimetrodon_thermal::simd::avx2_active() {
            group.bench_function("simd", |b| {
                let mut network = network(n);
                b.iter(|| advance_substeps(&mut network));
            });
        }

        group.finish();
    }
}

criterion_group!(benches, bench_substep);
criterion_main!(benches);
