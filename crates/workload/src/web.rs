//! The latency-sensitive web-serving workload (§3.7).
//!
//! The paper runs SPECWeb2005's eCommerce workload: 440 simultaneous
//! connections from two clients, producing 15–25 % load per core and a
//! ~6 °C unconstrained temperature rise, scored against the benchmark's
//! QoS thresholds — "good" (≤ 3 s response) and "tolerable" (≤ 5 s).
//!
//! The simulated equivalent is an open-loop connection model: each
//! connection thread thinks (exponentially distributed), then issues a
//! request whose service burst runs on the server. Response time is
//! measured from the instant the request is issued to the completion of
//! its service burst — so runqueue waiting *and injected idle quanta*
//! count against it, which reproduces the deferral feedback the paper
//! describes (delayed requests raise later load).

use std::cell::RefCell;
use std::rc::Rc;

use dimetrodon_sched::{Action, Burst, ThreadBody};
use dimetrodon_sim_core::{SimDuration, SimRng, SimTime};

/// Configuration of the web workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebConfig {
    /// Simultaneous connections (the paper: 440).
    pub connections: usize,
    /// Mean think time between a connection's requests.
    pub mean_think_time: SimDuration,
    /// Mean CPU demand of one request's service.
    pub mean_service_cpu: SimDuration,
    /// Activity factor of service code (web serving is less dense than
    /// cpuburn).
    pub service_activity: f64,
    /// The "good" QoS threshold (the paper: 3 s).
    pub good_threshold: SimDuration,
    /// The "tolerable" QoS threshold (the paper: 5 s).
    pub tolerable_threshold: SimDuration,
}

impl WebConfig {
    /// The paper's SPECWeb-like setup: 440 connections with SPECWeb2005-
    /// scale think times and eCommerce page weights, sized to put
    /// 15–25 % load on each of four cores.
    ///
    /// Load arithmetic: 440 connections × (60 ms service / ~30.06 s
    /// cycle) ≈ 0.88 busy core-seconds per second ≈ 22 % per core.
    pub fn paper_setup() -> Self {
        WebConfig {
            connections: 440,
            mean_think_time: SimDuration::from_secs(30),
            mean_service_cpu: SimDuration::from_millis(60),
            service_activity: 0.85,
            good_threshold: SimDuration::from_secs(3),
            tolerable_threshold: SimDuration::from_secs(5),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any duration is zero, `connections` is zero, activity is
    /// out of range, or the thresholds are not ordered
    /// `good <= tolerable`.
    pub fn validate(&self) {
        assert!(self.connections > 0, "need at least one connection");
        assert!(!self.mean_think_time.is_zero(), "think time must be positive");
        assert!(!self.mean_service_cpu.is_zero(), "service time must be positive");
        assert!(
            (0.0..=1.0).contains(&self.service_activity),
            "activity must be in [0, 1]"
        );
        assert!(
            self.good_threshold <= self.tolerable_threshold,
            "good threshold must not exceed tolerable"
        );
    }
}

/// Aggregated request latencies, scored against the QoS thresholds.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct QosStats {
    latencies: Vec<f64>,
    good: u64,
    tolerable: u64,
    failed: u64,
}

impl QosStats {
    /// Records one completed request's latency, scoring it against the
    /// configuration's good/tolerable thresholds. Public so external
    /// request models (the fleet's cluster router) feed the same
    /// accumulator the single-machine workload uses.
    pub fn record(&mut self, latency: SimDuration, config: &WebConfig) {
        self.latencies.push(latency.as_secs_f64());
        if latency <= config.good_threshold {
            self.good += 1;
        } else if latency <= config.tolerable_threshold {
            self.tolerable += 1;
        } else {
            self.failed += 1;
        }
    }

    /// Serializes the accumulator (latencies as IEEE-754 bits plus the
    /// three scoring counters) for a durable checkpoint.
    pub fn encode_state(&self, enc: &mut dimetrodon_ckpt::Enc) {
        enc.f64_slice(&self.latencies);
        enc.u64(self.good);
        enc.u64(self.tolerable);
        enc.u64(self.failed);
    }

    /// Rebuilds an accumulator from [`encode_state`](Self::encode_state)
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`dimetrodon_ckpt::CkptError`] on a short payload or
    /// when the counters disagree with the latency count (a state that
    /// could never have been encoded).
    pub fn decode_state(
        dec: &mut dimetrodon_ckpt::Dec<'_>,
    ) -> Result<Self, dimetrodon_ckpt::CkptError> {
        let latencies = dec.f64_vec()?;
        let good = dec.u64()?;
        let tolerable = dec.u64()?;
        let failed = dec.u64()?;
        let total = good
            .checked_add(tolerable)
            .and_then(|n| n.checked_add(failed));
        if total != Some(latencies.len() as u64) {
            return Err(dimetrodon_ckpt::CkptError::Malformed(format!(
                "qos counters sum to {total:?} but {} latencies recorded",
                latencies.len()
            )));
        }
        Ok(QosStats {
            latencies,
            good,
            tolerable,
            failed,
        })
    }

    /// The raw response latencies, in seconds, in completion order.
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Total completed requests.
    pub fn total(&self) -> u64 {
        self.good + self.tolerable + self.failed
    }

    /// Fraction of requests meeting the "good" (3 s) threshold.
    pub fn good_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.good as f64 / self.total() as f64
    }

    /// Fraction meeting the "tolerable" (5 s) threshold (good requests
    /// count as tolerable too).
    pub fn tolerable_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.good + self.tolerable) as f64 / self.total() as f64
    }

    /// Mean response latency in seconds, if any requests completed.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            return None;
        }
        Some(self.latencies.iter().sum::<f64>() / self.latencies.len() as f64)
    }

    /// A latency percentile in `[0, 100]` by the nearest-rank convention
    /// — the smallest recorded latency with at least `pct` percent of the
    /// samples at or below it — if any requests completed. `pct = 0`
    /// returns the minimum, `pct = 100` the maximum, and a single sample
    /// answers every percentile.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is outside `[0, 100]`.
    pub fn latency_percentile(&self, pct: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&pct), "percentile out of range");
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        // rank = ceil(pct/100 · n) clamped to [1, n]. The previous
        // interpolated-index rounding (`round(pct/100 · (n−1))`) answered
        // with the wrong rank — p50 of two samples rounded up to the
        // larger — and did not implement any standard convention.
        let n = sorted.len();
        let rank = ((pct / 100.0) * n as f64).ceil().max(1.0).min(n as f64) as usize;
        Some(sorted[rank - 1])
    }
}

/// Shared handle onto the workload's accumulated QoS statistics.
#[derive(Debug, Clone, Default)]
pub struct QosHandle(Rc<RefCell<QosStats>>);

impl QosHandle {
    /// Creates an empty stats accumulator.
    pub fn new() -> Self {
        QosHandle::default()
    }

    /// A snapshot of the statistics so far.
    pub fn snapshot(&self) -> QosStats {
        self.0.borrow().clone()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Not yet started: the first action sleeps a random think time so
    /// the connection population starts phase-staggered (without this,
    /// all connections would issue their first request simultaneously —
    /// a thundering herd no steady-state benchmark exhibits).
    Starting,
    /// Waiting out think time; next action issues a request.
    Thinking,
    /// A request issued at the stored instant is being serviced.
    InService { issued_at: SimTime },
}

/// One web connection: think, request, measure, repeat.
///
/// Spawn one per configured connection (see
/// [`spawn_web_workload`](crate::spawn_web_workload) for the convenience
/// wrapper).
// Clone shares the `QosHandle`: forks record latencies into the same
// QoS accumulator the harness is already watching.
#[derive(Debug, Clone)]
pub struct Connection {
    config: WebConfig,
    stats: QosHandle,
    rng: SimRng,
    phase: Phase,
}

impl Connection {
    /// Creates a connection with its own think/service randomness.
    pub fn new(config: WebConfig, stats: QosHandle, rng: SimRng) -> Self {
        config.validate();
        Connection {
            config,
            stats,
            rng,
            phase: Phase::Starting,
        }
    }

    fn think_time(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(
            self.rng
                .exponential(self.config.mean_think_time.as_secs_f64()),
        )
        .max(SimDuration::from_millis(1))
    }
}

impl ThreadBody for Connection {
    fn next_action(&mut self, now: SimTime) -> Action {
        match self.phase {
            Phase::Starting => {
                self.phase = Phase::Thinking;
                Action::Sleep(self.think_time())
            }
            Phase::Thinking => {
                // Think time has elapsed (or this is the first call):
                // issue a request now.
                self.phase = Phase::InService { issued_at: now };
                let cpu =
                    SimDuration::from_secs_f64(self.rng.exponential(
                        self.config.mean_service_cpu.as_secs_f64(),
                    ))
                    .max(SimDuration::from_micros(100));
                Action::Run(Burst::new(cpu, self.config.service_activity))
            }
            Phase::InService { issued_at } => {
                // The service burst just completed: the response is out.
                let latency = now.saturating_since(issued_at);
                self.stats.0.borrow_mut().record(latency, &self.config);
                self.phase = Phase::Thinking;
                Action::Sleep(self.think_time())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> WebConfig {
        WebConfig::paper_setup()
    }

    #[test]
    fn paper_setup_load_is_15_to_25_percent_per_core() {
        let c = config();
        let cycle = c.mean_think_time.as_secs_f64() + c.mean_service_cpu.as_secs_f64();
        let busy_per_sec = c.connections as f64 * c.mean_service_cpu.as_secs_f64() / cycle;
        let per_core = busy_per_sec / 4.0;
        assert!(
            (0.15..0.25).contains(&per_core),
            "per-core load {per_core} outside the paper's band"
        );
    }

    #[test]
    fn connection_staggers_then_alternates_service_and_think() {
        let mut conn = Connection::new(config(), QosHandle::new(), SimRng::new(1));
        let a0 = conn.next_action(SimTime::ZERO);
        assert!(matches!(a0, Action::Sleep(_)), "first action staggers");
        let a1 = conn.next_action(SimTime::from_secs(3));
        assert!(matches!(a1, Action::Run(_)));
        let a2 = conn.next_action(SimTime::from_secs(3) + SimDuration::from_millis(30));
        assert!(matches!(a2, Action::Sleep(_)));
        let a3 = conn.next_action(SimTime::from_secs(30));
        assert!(matches!(a3, Action::Run(_)));
    }

    #[test]
    fn latency_is_measured_from_issue_to_completion() {
        let stats = QosHandle::new();
        let mut conn = Connection::new(config(), stats.clone(), SimRng::new(2));
        let _ = conn.next_action(SimTime::ZERO); // initial stagger sleep
        let _ = conn.next_action(SimTime::ZERO); // request issued at t=0
        let _ = conn.next_action(SimTime::from_secs(4)); // completed at t=4
        let snap = stats.snapshot();
        assert_eq!(snap.total(), 1);
        assert!((snap.mean_latency().unwrap() - 4.0).abs() < 1e-9);
        // 4 s: not good, but tolerable.
        assert_eq!(snap.good_fraction(), 0.0);
        assert_eq!(snap.tolerable_fraction(), 1.0);
    }

    #[test]
    fn qos_thresholds_bucket_correctly() {
        let c = config();
        let mut stats = QosStats::default();
        stats.record(SimDuration::from_secs(1), &c); // good
        stats.record(SimDuration::from_secs(4), &c); // tolerable
        stats.record(SimDuration::from_secs(9), &c); // failed
        assert_eq!(stats.total(), 3);
        assert!((stats.good_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((stats.tolerable_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let c = config();
        let mut stats = QosStats::default();
        for ms in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            stats.record(SimDuration::from_millis(ms), &c);
        }
        assert!((stats.latency_percentile(0.0).unwrap() - 0.01).abs() < 1e-9);
        assert!((stats.latency_percentile(100.0).unwrap() - 0.1).abs() < 1e-9);
        let p50 = stats.latency_percentile(50.0).unwrap();
        assert!((0.04..=0.07).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn percentile_nearest_rank_exact_values() {
        let c = config();
        let mut stats = QosStats::default();
        stats.record(SimDuration::from_millis(10), &c);
        stats.record(SimDuration::from_millis(20), &c);
        // Nearest rank: p50 of two samples is the *first* (rank ceil(1)),
        // anything above 50 % needs the second.
        let expect = |pct: f64, secs: f64| {
            let got = stats.latency_percentile(pct).unwrap();
            assert!((got - secs).abs() < 1e-12, "p{pct} = {got}, expected {secs}");
        };
        expect(0.0, 0.01);
        expect(50.0, 0.01);
        expect(50.1, 0.02);
        expect(100.0, 0.02);
    }

    #[test]
    fn percentile_on_single_sample_answers_every_pct() {
        let c = config();
        let mut stats = QosStats::default();
        stats.record(SimDuration::from_millis(50), &c);
        for pct in [0.0, 1.0, 50.0, 99.0, 100.0] {
            let got = stats.latency_percentile(pct).unwrap();
            assert!((got - 0.05).abs() < 1e-12, "p{pct} = {got}");
        }
    }

    #[test]
    fn percentile_p99_of_100_samples_is_the_99th() {
        let c = config();
        let mut stats = QosStats::default();
        for ms in 1..=100u64 {
            stats.record(SimDuration::from_millis(ms), &c);
        }
        let p99 = stats.latency_percentile(99.0).unwrap();
        assert!((p99 - 0.099).abs() < 1e-12, "p99 = {p99}");
        let p1 = stats.latency_percentile(1.0).unwrap();
        assert!((p1 - 0.001).abs() < 1e-12, "p1 = {p1}");
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = QosStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.good_fraction(), 0.0);
        assert_eq!(s.mean_latency(), None);
        assert_eq!(s.latency_percentile(50.0), None);
    }

    #[test]
    #[should_panic(expected = "good threshold must not exceed tolerable")]
    fn bad_thresholds_panic() {
        let mut c = config();
        c.good_threshold = SimDuration::from_secs(6);
        c.validate();
    }
}
