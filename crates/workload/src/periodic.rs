//! The periodic "cool" process of the per-thread control demonstration.
//!
//! §3.6 runs "a loop that executed cpuburn for six seconds, slept for one
//! minute, and repeated" alongside a hot CPU-bound application, and shows
//! that per-thread policies spare the cool process the throughput cost of
//! cooling the hot one. [`PeriodicBurn`] is that loop; its completed-cycle
//! count (readable through the shared [`CycleCounter`] while the
//! simulation owns the body) is the throughput measure of Figure 5.

use std::cell::Cell;
use std::rc::Rc;

use dimetrodon_sched::{Action, Burst, ThreadBody};
use dimetrodon_sim_core::{SimDuration, SimTime};

/// Shared read handle onto a [`PeriodicBurn`]'s progress.
#[derive(Debug, Clone, Default)]
pub struct CycleCounter {
    completed: Rc<Cell<u64>>,
    active_wall_secs: Rc<Cell<f64>>,
}

impl CycleCounter {
    /// Cycles (work + sleep periods) completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// Total wall-clock time spent in completed work phases, seconds.
    pub fn active_wall_secs(&self) -> f64 {
        self.active_wall_secs.get()
    }

    /// Mean wall-clock duration of a completed work phase, seconds — the
    /// Figure 5 throughput denominator (`work / mean_cycle_wall` is the
    /// process's relative throughput). `None` before the first completed
    /// cycle.
    pub fn mean_cycle_wall_secs(&self) -> Option<f64> {
        let n = self.completed.get();
        if n == 0 {
            None
        } else {
            Some(self.active_wall_secs.get() / n as f64)
        }
    }

    /// Zeroes the counters, discarding cycles completed so far. Used to
    /// exclude warm-up cycles (e.g. the cold-start cycle before scheduler
    /// priorities reach equilibrium) from a measurement.
    pub fn reset(&self) {
        self.completed.set(0);
        self.active_wall_secs.set(0.0);
    }
}

/// A periodic work/sleep loop: `work` of CPU at a given activity, then
/// `sleep`, repeated forever.
///
/// # Examples
///
/// The paper's cool process:
///
/// ```
/// use dimetrodon_workload::PeriodicBurn;
/// use dimetrodon_sim_core::SimDuration;
///
/// let (body, cycles) = PeriodicBurn::new(
///     SimDuration::from_secs(6),
///     SimDuration::from_secs(60),
///     1.0,
/// );
/// assert_eq!(cycles.completed(), 0);
/// # let _ = body;
/// ```
// Clone shares the `CycleCounter` handle: forks report completions into
// the same counters the harness is already watching.
#[derive(Debug, Clone)]
pub struct PeriodicBurn {
    work: SimDuration,
    sleep: SimDuration,
    activity: f64,
    burst: SimDuration,
    remaining_in_cycle: SimDuration,
    cycle_started_at: Option<SimTime>,
    cycles: CycleCounter,
}

impl PeriodicBurn {
    /// Creates the loop and a counter handle for its completed cycles.
    ///
    /// # Panics
    ///
    /// Panics if `work` or `sleep` is zero, or `activity` is outside
    /// `[0, 1]`.
    pub fn new(work: SimDuration, sleep: SimDuration, activity: f64) -> (Self, CycleCounter) {
        assert!(!work.is_zero(), "work period must be positive");
        assert!(!sleep.is_zero(), "sleep period must be positive");
        assert!((0.0..=1.0).contains(&activity), "activity must be in [0, 1]");
        let cycles = CycleCounter::default();
        (
            PeriodicBurn {
                work,
                sleep,
                activity,
                burst: SimDuration::from_millis(10),
                remaining_in_cycle: work,
                cycle_started_at: None,
                cycles: cycles.clone(),
            },
            cycles.clone(),
        )
    }

    /// The paper's cool process: 6 s of cpuburn, 60 s of sleep.
    pub fn paper_cool_process() -> (Self, CycleCounter) {
        Self::new(SimDuration::from_secs(6), SimDuration::from_secs(60), 1.0)
    }
}

impl ThreadBody for PeriodicBurn {
    fn next_action(&mut self, now: SimTime) -> Action {
        if self.remaining_in_cycle.is_zero() {
            // Work phase done: count the cycle, record its wall time, and
            // sleep.
            self.cycles.completed.set(self.cycles.completed.get() + 1);
            if let Some(started) = self.cycle_started_at.take() {
                let wall = now.saturating_since(started).as_secs_f64();
                self.cycles
                    .active_wall_secs
                    .set(self.cycles.active_wall_secs.get() + wall);
            }
            self.remaining_in_cycle = self.work;
            return Action::Sleep(self.sleep);
        }
        if self.cycle_started_at.is_none() {
            self.cycle_started_at = Some(now);
        }
        let chunk = self.remaining_in_cycle.min(self.burst);
        self.remaining_in_cycle -= chunk;
        Action::Run(Burst::new(chunk, self.activity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_counting() {
        let (mut body, cycles) = PeriodicBurn::new(
            SimDuration::from_millis(20),
            SimDuration::from_secs(1),
            0.8,
        );
        // Two 10 ms bursts then a sleep = one cycle.
        assert!(matches!(body.next_action(SimTime::ZERO), Action::Run(_)));
        assert!(matches!(body.next_action(SimTime::ZERO), Action::Run(_)));
        assert_eq!(cycles.completed(), 0);
        assert!(matches!(body.next_action(SimTime::ZERO), Action::Sleep(_)));
        assert_eq!(cycles.completed(), 1);
        // And the loop repeats.
        assert!(matches!(body.next_action(SimTime::ZERO), Action::Run(_)));
    }

    #[test]
    fn paper_cool_process_shape() {
        let (mut body, _cycles) = PeriodicBurn::paper_cool_process();
        let mut work = SimDuration::ZERO;
        loop {
            match body.next_action(SimTime::ZERO) {
                Action::Run(b) => {
                    assert_eq!(b.activity, 1.0);
                    work += b.cpu_time;
                }
                Action::Sleep(d) => {
                    assert_eq!(d, SimDuration::from_secs(60));
                    break;
                }
                Action::Exit => panic!("never exits"),
            }
        }
        assert_eq!(work, SimDuration::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "sleep period must be positive")]
    fn zero_sleep_panics() {
        PeriodicBurn::new(SimDuration::from_secs(1), SimDuration::ZERO, 1.0);
    }
}
