//! Trace-driven workloads: replay a recorded activity profile.
//!
//! The SPEC-like profiles are synthetic because SPEC inputs are not
//! available; a user who *does* have a profile of their application —
//! e.g. `(cpu-milliseconds, activity)` phases from a performance-counter
//! trace, with sleeps for its I/O waits — can replay it directly and ask
//! how a Dimetrodon policy would treat it. Phases are tied to CPU
//! progress, as real program behaviour is, so injection stretches the
//! replay without distorting it.

use std::fmt;
use std::str::FromStr;

use dimetrodon_sched::{Action, Burst, ThreadBody};
use dimetrodon_sim_core::{SimDuration, SimTime};

/// One phase of a recorded profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// Execute this much CPU time at this activity factor.
    Compute {
        /// CPU demand of the phase.
        cpu: SimDuration,
        /// Switching activity during the phase.
        activity: f64,
    },
    /// Block for this long (I/O, synchronisation).
    Wait {
        /// Wall-clock wait.
        duration: SimDuration,
    },
}

/// A recorded workload profile: an ordered list of phases, optionally
/// looped.
///
/// # Examples
///
/// Parse the simple text format (`compute <ms> <activity>` /
/// `wait <ms>`, one phase per line, `#` comments):
///
/// ```
/// use dimetrodon_workload::WorkloadProfile;
///
/// let profile: WorkloadProfile = "\
///     ## transcode one frame, then flush
///     compute 40 0.9
///     wait 10
/// ".parse()?;
/// assert_eq!(profile.phases().len(), 2);
/// # Ok::<(), dimetrodon_workload::ParseProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    phases: Vec<Phase>,
}

/// Errors parsing the profile text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProfileError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ParseProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseProfileError {}

impl WorkloadProfile {
    /// Creates a profile from phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any duration is zero, or any
    /// activity is outside `[0, 1]`.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "profile needs at least one phase");
        for phase in &phases {
            match *phase {
                Phase::Compute { cpu, activity } => {
                    assert!(!cpu.is_zero(), "compute phase needs positive CPU time");
                    assert!(
                        (0.0..=1.0).contains(&activity),
                        "activity must be in [0, 1]"
                    );
                }
                Phase::Wait { duration } => {
                    assert!(!duration.is_zero(), "wait phase needs positive duration");
                }
            }
        }
        WorkloadProfile { phases }
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total CPU demand of one pass through the profile.
    pub fn total_cpu(&self) -> SimDuration {
        self.phases
            .iter()
            .map(|p| match *p {
                Phase::Compute { cpu, .. } => cpu,
                Phase::Wait { .. } => SimDuration::ZERO,
            })
            .sum()
    }

    /// A body that plays the profile once and exits.
    pub fn once(&self) -> ReplayBody {
        ReplayBody::new(self.clone(), false)
    }

    /// A body that replays the profile forever.
    pub fn looped(&self) -> ReplayBody {
        ReplayBody::new(self.clone(), true)
    }
}

impl FromStr for WorkloadProfile {
    type Err = ParseProfileError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut phases = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = trimmed.split_whitespace();
            let err = |reason: String| ParseProfileError { line, reason };
            match parts.next() {
                Some("compute") => {
                    let ms: f64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v| v > 0.0)
                        .ok_or_else(|| err("compute needs a positive duration in ms".into()))?;
                    let activity: f64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|v| (0.0..=1.0).contains(v))
                        .ok_or_else(|| err("compute needs an activity in [0, 1]".into()))?;
                    phases.push(Phase::Compute {
                        cpu: SimDuration::from_millis_f64(ms),
                        activity,
                    });
                }
                Some("wait") => {
                    let ms: f64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v| v > 0.0)
                        .ok_or_else(|| err("wait needs a positive duration in ms".into()))?;
                    phases.push(Phase::Wait {
                        duration: SimDuration::from_millis_f64(ms),
                    });
                }
                Some(other) => {
                    return Err(err(format!(
                        "unknown phase kind `{other}` (expected compute | wait)"
                    )))
                }
                None => unreachable!("blank lines are skipped"),
            }
            if parts.next().is_some() {
                return Err(err("trailing tokens".into()));
            }
        }
        if phases.is_empty() {
            return Err(ParseProfileError {
                line: 0,
                reason: "profile has no phases".into(),
            });
        }
        Ok(WorkloadProfile { phases })
    }
}

/// A running replay of a [`WorkloadProfile`].
#[derive(Debug, Clone)]
pub struct ReplayBody {
    profile: WorkloadProfile,
    looped: bool,
    phase: usize,
    remaining: SimDuration,
    burst: SimDuration,
}

impl ReplayBody {
    fn new(profile: WorkloadProfile, looped: bool) -> Self {
        let first = match profile.phases[0] {
            Phase::Compute { cpu, .. } => cpu,
            Phase::Wait { .. } => SimDuration::ZERO,
        };
        ReplayBody {
            profile,
            looped,
            phase: 0,
            remaining: first,
            burst: SimDuration::from_millis(10),
        }
    }

    fn advance_phase(&mut self) -> Option<Phase> {
        self.phase += 1;
        if self.phase >= self.profile.phases.len() {
            if !self.looped {
                return None;
            }
            self.phase = 0;
        }
        let phase = self.profile.phases[self.phase];
        if let Phase::Compute { cpu, .. } = phase {
            self.remaining = cpu;
        }
        Some(phase)
    }
}

impl ThreadBody for ReplayBody {
    fn next_action(&mut self, _now: SimTime) -> Action {
        loop {
            match self.profile.phases[self.phase] {
                Phase::Compute { activity, .. } => {
                    if self.remaining.is_zero() {
                        match self.advance_phase() {
                            None => return Action::Exit,
                            Some(Phase::Wait { duration }) => return Action::Sleep(duration),
                            Some(Phase::Compute { .. }) => continue,
                        }
                    }
                    let chunk = self.remaining.min(self.burst);
                    self.remaining -= chunk;
                    return Action::Run(Burst::new(chunk, activity));
                }
                Phase::Wait { .. } => {
                    // The wait was issued when we entered this phase; move
                    // on.
                    match self.advance_phase() {
                        None => return Action::Exit,
                        Some(Phase::Wait { duration }) => return Action::Sleep(duration),
                        Some(Phase::Compute { .. }) => continue,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile::new(vec![
            Phase::Compute {
                cpu: SimDuration::from_millis(25),
                activity: 0.8,
            },
            Phase::Wait {
                duration: SimDuration::from_millis(100),
            },
            Phase::Compute {
                cpu: SimDuration::from_millis(15),
                activity: 0.4,
            },
        ])
    }

    #[test]
    fn once_plays_phases_then_exits() {
        let mut body = profile().once();
        let mut cpu = SimDuration::ZERO;
        let mut sleeps = 0;
        loop {
            match body.next_action(SimTime::ZERO) {
                Action::Run(b) => cpu += b.cpu_time,
                Action::Sleep(d) => {
                    assert_eq!(d, SimDuration::from_millis(100));
                    sleeps += 1;
                }
                Action::Exit => break,
            }
        }
        assert_eq!(cpu, SimDuration::from_millis(40));
        assert_eq!(sleeps, 1);
    }

    #[test]
    fn looped_repeats() {
        let mut body = profile().looped();
        let mut exits = 0;
        let mut sleeps = 0;
        for _ in 0..200 {
            match body.next_action(SimTime::ZERO) {
                Action::Exit => exits += 1,
                Action::Sleep(_) => sleeps += 1,
                Action::Run(_) => {}
            }
        }
        assert_eq!(exits, 0);
        assert!(sleeps >= 2, "loop should revisit the wait phase");
    }

    #[test]
    fn activities_follow_phases() {
        let mut body = profile().once();
        let mut activities = Vec::new();
        loop {
            match body.next_action(SimTime::ZERO) {
                Action::Run(b) => activities.push(b.activity),
                Action::Sleep(_) => {}
                Action::Exit => break,
            }
        }
        assert!(activities.starts_with(&[0.8]));
        assert!(activities.ends_with(&[0.4]));
    }

    #[test]
    fn parses_text_format() {
        let p: WorkloadProfile = "\n# comment\ncompute 40 0.9\nwait 10\ncompute 5.5 0.2\n"
            .parse()
            .unwrap();
        assert_eq!(p.phases().len(), 3);
        assert_eq!(p.total_cpu(), SimDuration::from_micros(45_500));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = "compute 40 0.9\nfrobnicate 1".parse::<WorkloadProfile>().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"));

        let err = "compute -4 0.9".parse::<WorkloadProfile>().unwrap_err();
        assert_eq!(err.line, 1);

        let err = "compute 40 1.5".parse::<WorkloadProfile>().unwrap_err();
        assert!(err.reason.contains("activity"));

        let err = "wait 10 extra".parse::<WorkloadProfile>().unwrap_err();
        assert!(err.reason.contains("trailing"));

        let err = "# only comments".parse::<WorkloadProfile>().unwrap_err();
        assert!(err.reason.contains("no phases"));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_panics() {
        WorkloadProfile::new(vec![]);
    }
}
