//! Workload generators for the Dimetrodon reproduction.
//!
//! The paper evaluates Dimetrodon against four workload families; this
//! crate supplies simulated equivalents of each:
//!
//! * [`CpuBurn`] — the worst-case thermal stressor (`burnP6`), infinite
//!   for characterisation and finite for model validation (§3.3–3.4);
//! * [`SpecBenchmark`] / [`SpecProfile`] — six SPEC CPU2006-like
//!   CPU-bound profiles whose activity factors are calibrated to Table 1's
//!   per-benchmark temperature rises (§3.5);
//! * [`PeriodicBurn`] — the §3.6 "cool process" (6 s of cpuburn, 60 s of
//!   sleep) for the per-thread control demonstration;
//! * [`Connection`] / [`WebConfig`] — the §3.7 SPECWeb-like workload:
//!   440 open-loop connections scored against "good" (3 s) and
//!   "tolerable" (5 s) QoS thresholds.
//!
//! # Examples
//!
//! Spawning the paper's standard four-instance cpuburn load:
//!
//! ```
//! use dimetrodon_machine::{Machine, MachineConfig};
//! use dimetrodon_sched::{System, ThreadKind};
//! use dimetrodon_workload::CpuBurn;
//! use dimetrodon_sim_core::SimTime;
//!
//! # fn main() -> Result<(), dimetrodon_machine::MachineError> {
//! let mut system = System::new(Machine::new(MachineConfig::xeon_e5520())?);
//! for _ in 0..4 {
//!     system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite()));
//! }
//! system.run_until(SimTime::from_secs(5));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cpuburn;
mod periodic;
mod replay;
mod spec;
mod web;

pub use cpuburn::CpuBurn;
pub use periodic::{CycleCounter, PeriodicBurn};
pub use replay::{ParseProfileError, Phase, ReplayBody, WorkloadProfile};
pub use spec::{SpecBenchmark, SpecProfile};
pub use web::{Connection, QosHandle, QosStats, WebConfig};

use dimetrodon_sched::{System, ThreadId, ThreadKind};
use dimetrodon_sim_core::SimRng;

/// Spawns a full web workload (one connection thread per configured
/// connection) onto a system, returning the thread ids and the shared QoS
/// statistics handle.
pub fn spawn_web_workload(
    system: &mut System,
    config: WebConfig,
    rng: &mut SimRng,
) -> (Vec<ThreadId>, QosHandle) {
    config.validate();
    let stats = QosHandle::new();
    let ids = (0..config.connections)
        .map(|i| {
            let conn = Connection::new(config, stats.clone(), rng.fork(i as u64));
            system.spawn(ThreadKind::User, Box::new(conn))
        })
        .collect();
    (ids, stats)
}
