//! SPEC CPU2006-like thermal profiles (Table 1's benchmark set).
//!
//! The paper characterises six SPEC CPU2006 benchmarks purely as heat
//! sources with distinct thermal profiles — their Table 1 reports each
//! benchmark's unconstrained temperature rise as a percentage of
//! cpuburn's, then shows that the throughput/temperature trade-off curves
//! barely differ. We have no SPEC sources or inputs, so each benchmark
//! becomes a synthetic CPU-bound workload whose *mean activity factor* is
//! calibrated to land at the paper's rise percentage, with benchmark-
//! specific phase behaviour (period and amplitude of activity swings)
//! layered on top. The workloads are entirely CPU-bound (no sleeps), as
//! the paper verified its benchmarks to be (§3.5).

use dimetrodon_sched::{Action, Burst, ThreadBody};
use dimetrodon_sim_core::{SimDuration, SimTime};

/// The six SPEC CPU2006 benchmarks of Table 1, hottest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecBenchmark {
    /// 454.calculix — structural mechanics; hottest of the set (99.3 %).
    Calculix,
    /// 444.namd — molecular dynamics (87.2 %).
    Namd,
    /// 447.dealII — finite elements (84.4 %).
    DealII,
    /// 401.bzip2 — compression (84.4 %).
    Bzip2,
    /// 403.gcc — compilation (80.3 %).
    Gcc,
    /// 473.astar — path-finding; the coolest, and the paper's outlier
    /// (71.7 %, "significantly cooler-running than the other
    /// benchmarks").
    Astar,
}

impl SpecBenchmark {
    /// All six benchmarks, in Table 1 order.
    pub const ALL: [SpecBenchmark; 6] = [
        SpecBenchmark::Calculix,
        SpecBenchmark::Namd,
        SpecBenchmark::DealII,
        SpecBenchmark::Bzip2,
        SpecBenchmark::Gcc,
        SpecBenchmark::Astar,
    ];

    /// The benchmark's name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            SpecBenchmark::Calculix => "calculix",
            SpecBenchmark::Namd => "namd",
            SpecBenchmark::DealII => "dealII",
            SpecBenchmark::Bzip2 => "bzip2",
            SpecBenchmark::Gcc => "gcc",
            SpecBenchmark::Astar => "astar",
        }
    }

    /// Table 1's "Rise (%)": unconstrained temperature rise over idle as
    /// a fraction of cpuburn's.
    pub fn paper_rise_fraction(self) -> f64 {
        match self {
            SpecBenchmark::Calculix => 0.993,
            SpecBenchmark::Namd => 0.872,
            SpecBenchmark::DealII => 0.844,
            SpecBenchmark::Bzip2 => 0.844,
            SpecBenchmark::Gcc => 0.803,
            SpecBenchmark::Astar => 0.717,
        }
    }

    /// Mean activity factor calibrated so the simulated machine's
    /// steady-state rise lands at
    /// [`paper_rise_fraction`](SpecBenchmark::paper_rise_fraction).
    ///
    /// Derivation: rise is proportional to power above idle, which for an
    /// active core is `dynamic(activity) + leakage − c1e_residual`;
    /// inverting the calibrated Xeon model gives activity ≈ rise fraction
    /// with a small leakage correction.
    pub fn activity(self) -> f64 {
        match self {
            SpecBenchmark::Calculix => 0.99,
            SpecBenchmark::Namd => 0.86,
            SpecBenchmark::DealII => 0.83,
            SpecBenchmark::Bzip2 => 0.83,
            SpecBenchmark::Gcc => 0.78,
            SpecBenchmark::Astar => 0.68,
        }
    }

    /// Phase period of the benchmark's activity swings.
    fn phase_period(self) -> SimDuration {
        match self {
            SpecBenchmark::Calculix => SimDuration::from_millis(800),
            SpecBenchmark::Namd => SimDuration::from_millis(400),
            SpecBenchmark::DealII => SimDuration::from_millis(1200),
            SpecBenchmark::Bzip2 => SimDuration::from_millis(250),
            SpecBenchmark::Gcc => SimDuration::from_millis(600),
            SpecBenchmark::Astar => SimDuration::from_millis(1500),
        }
    }

    /// Peak-to-mean amplitude of the activity swings.
    fn phase_amplitude(self) -> f64 {
        match self {
            SpecBenchmark::Calculix => 0.01,
            SpecBenchmark::Namd => 0.05,
            SpecBenchmark::DealII => 0.08,
            SpecBenchmark::Bzip2 => 0.10,
            SpecBenchmark::Gcc => 0.15,
            SpecBenchmark::Astar => 0.12,
        }
    }

    /// An infinite workload body with this benchmark's profile.
    pub fn body(self) -> SpecProfile {
        SpecProfile::new(self, None)
    }

    /// A finite workload body with known CPU demand (for throughput
    /// measurements against the analytic model).
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn finite_body(self, total: SimDuration) -> SpecProfile {
        assert!(!total.is_zero(), "finite workload needs positive work");
        SpecProfile::new(self, Some(total))
    }
}

impl std::fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A running SPEC-like workload: CPU-bound, with square-wave activity
/// phases around the benchmark's calibrated mean.
#[derive(Debug, Clone)]
pub struct SpecProfile {
    benchmark: SpecBenchmark,
    remaining: Option<SimDuration>,
    burst: SimDuration,
    executed: SimDuration,
}

impl SpecProfile {
    fn new(benchmark: SpecBenchmark, remaining: Option<SimDuration>) -> Self {
        SpecProfile {
            benchmark,
            remaining,
            burst: SimDuration::from_millis(10),
            executed: SimDuration::ZERO,
        }
    }

    /// Which benchmark this body models.
    pub fn benchmark(&self) -> SpecBenchmark {
        self.benchmark
    }

    /// Instantaneous activity at a given amount of executed CPU time: a
    /// square wave around the calibrated mean, so phases are tied to
    /// progress (program behaviour), not wall time.
    fn activity_at(&self, executed: SimDuration) -> f64 {
        let mean = self.benchmark.activity();
        let amp = self.benchmark.phase_amplitude();
        let period = self.benchmark.phase_period().as_nanos();
        let phase = (executed.as_nanos() % period) as f64 / period as f64;
        let value = if phase < 0.5 { mean + amp } else { mean - amp };
        value.clamp(0.0, 1.0)
    }
}

impl ThreadBody for SpecProfile {
    fn next_action(&mut self, _now: SimTime) -> Action {
        let chunk = match &mut self.remaining {
            None => self.burst,
            Some(rem) => {
                if rem.is_zero() {
                    return Action::Exit;
                }
                let chunk = (*rem).min(self.burst);
                *rem -= chunk;
                chunk
            }
        };
        let activity = self.activity_at(self.executed);
        self.executed += chunk;
        Action::Run(Burst::new(chunk, activity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rise_fractions_match_table_1() {
        let fractions: Vec<f64> = SpecBenchmark::ALL
            .iter()
            .map(|b| b.paper_rise_fraction())
            .collect();
        assert_eq!(fractions, vec![0.993, 0.872, 0.844, 0.844, 0.803, 0.717]);
        // Ordered hottest to coolest.
        assert!(fractions.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn activity_ordering_follows_rise_ordering() {
        let acts: Vec<f64> = SpecBenchmark::ALL.iter().map(|b| b.activity()).collect();
        assert!(acts.windows(2).all(|w| w[0] >= w[1]));
        assert!(acts.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn profile_mean_activity_close_to_calibration() {
        for bench in SpecBenchmark::ALL {
            let mut body = bench.body();
            let mut weighted = 0.0;
            let mut total = 0.0;
            for _ in 0..1000 {
                match body.next_action(SimTime::ZERO) {
                    Action::Run(b) => {
                        weighted += b.activity * b.cpu_time.as_secs_f64();
                        total += b.cpu_time.as_secs_f64();
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            let mean = weighted / total;
            assert!(
                (mean - bench.activity()).abs() < 0.02,
                "{bench}: mean {mean} vs {}",
                bench.activity()
            );
        }
    }

    #[test]
    fn profile_has_phases() {
        let mut body = SpecBenchmark::Gcc.body();
        let mut activities = std::collections::BTreeSet::new();
        for _ in 0..200 {
            if let Action::Run(b) = body.next_action(SimTime::ZERO) {
                activities.insert((b.activity * 1000.0) as i64);
            }
        }
        assert!(activities.len() >= 2, "gcc should show phase swings");
    }

    #[test]
    fn finite_body_exits_after_total() {
        let mut body = SpecBenchmark::Astar.finite_body(SimDuration::from_millis(30));
        let mut total = SimDuration::ZERO;
        loop {
            match body.next_action(SimTime::ZERO) {
                Action::Run(b) => total += b.cpu_time,
                Action::Exit => break,
                Action::Sleep(_) => panic!("SPEC profiles are CPU-bound"),
            }
        }
        assert_eq!(total, SimDuration::from_millis(30));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SpecBenchmark::DealII.to_string(), "dealII");
        assert_eq!(SpecBenchmark::Calculix.name(), "calculix");
    }
}
