//! The `cpuburn` worst-case thermal stressor.
//!
//! The paper validates its models and characterises the system with
//! Redelmeier's `cpuburn` (`burnP6`): "a single-threaded infinite loop
//! containing a compact sequence of x86 instructions designed to thermally
//! stress test processors" (§3.3). The simulated equivalent is a thread at
//! peak activity — infinite for the characterisation experiments, finite
//! (known CPU demand `R`) for the model-validation experiments.

use dimetrodon_sched::{Action, Burst, ThreadBody};
use dimetrodon_sim_core::{SimDuration, SimTime};

/// The paper's thermal stress test: runs at peak activity.
///
/// # Examples
///
/// ```
/// use dimetrodon_workload::CpuBurn;
/// use dimetrodon_sim_core::SimDuration;
///
/// // The §3.3 "finite loop of cpuburn instructions with a runtime of
/// // 7 seconds".
/// let body = CpuBurn::finite(SimDuration::from_secs(7));
/// assert_eq!(body.remaining(), Some(SimDuration::from_secs(7)));
///
/// let forever = CpuBurn::infinite();
/// assert_eq!(forever.remaining(), None);
/// ```
#[derive(Debug, Clone)]
pub struct CpuBurn {
    /// `None` = infinite.
    remaining: Option<SimDuration>,
    burst: SimDuration,
}

impl CpuBurn {
    /// `cpuburn` saturates the pipeline: peak activity.
    pub const ACTIVITY: f64 = 1.0;
    /// Work-unit granularity (one loop iteration batch).
    const BURST: SimDuration = SimDuration::from_millis(10);

    /// The infinite stressor used for system characterisation (§3.4).
    pub fn infinite() -> Self {
        CpuBurn {
            remaining: None,
            burst: Self::BURST,
        }
    }

    /// A finite loop with known CPU demand, used for model validation
    /// (§3.3).
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn finite(total: SimDuration) -> Self {
        assert!(!total.is_zero(), "finite cpuburn needs positive work");
        CpuBurn {
            remaining: Some(total),
            burst: Self::BURST,
        }
    }

    /// CPU time left, or `None` for the infinite variant.
    pub fn remaining(&self) -> Option<SimDuration> {
        self.remaining
    }
}

impl ThreadBody for CpuBurn {
    fn next_action(&mut self, _now: SimTime) -> Action {
        match &mut self.remaining {
            None => Action::Run(Burst::new(self.burst, Self::ACTIVITY)),
            Some(rem) => {
                if rem.is_zero() {
                    return Action::Exit;
                }
                let chunk = (*rem).min(self.burst);
                *rem -= chunk;
                Action::Run(Burst::new(chunk, Self::ACTIVITY))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_never_exits() {
        let mut b = CpuBurn::infinite();
        for _ in 0..1000 {
            match b.next_action(SimTime::ZERO) {
                Action::Run(burst) => assert_eq!(burst.activity, 1.0),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn finite_consumes_exact_total() {
        let mut b = CpuBurn::finite(SimDuration::from_millis(35));
        let mut total = SimDuration::ZERO;
        loop {
            match b.next_action(SimTime::ZERO) {
                Action::Run(burst) => total += burst.cpu_time,
                Action::Exit => break,
                Action::Sleep(_) => panic!("cpuburn never sleeps"),
            }
        }
        assert_eq!(total, SimDuration::from_millis(35));
    }

    #[test]
    #[should_panic(expected = "positive work")]
    fn zero_total_panics() {
        CpuBurn::finite(SimDuration::ZERO);
    }
}
