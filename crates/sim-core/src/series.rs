//! Time-series recording and reduction.
//!
//! Experiments observe the simulated machine through sampled traces —
//! temperature three hundred times a second, power three times a
//! millisecond. [`TimeSeries`] stores `(time, value)` samples and provides
//! the reductions the paper's methodology needs: the mean over the last 30
//! seconds of a run (§3.4's steady-state measurement), time-weighted
//! integration (energy from a power trace), and resampling for plots.

use crate::time::{SimDuration, SimTime};

/// An append-only series of `(time, value)` samples with non-decreasing
/// timestamps.
///
/// # Examples
///
/// ```
/// use dimetrodon_sim_core::{SimTime, TimeSeries};
///
/// let mut power = TimeSeries::new("power_w");
/// power.push(SimTime::from_millis(0), 10.0);
/// power.push(SimTime::from_millis(500), 20.0);
/// power.push(SimTime::from_millis(1000), 20.0);
/// // 10 W for 0.5 s, then 20 W for 0.5 s = 15 J.
/// assert!((power.integrate_step() - 15.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a descriptive name (used in reports).
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty series with room for `capacity` samples, for
    /// callers that know the sampling schedule up front.
    pub fn with_capacity(name: impl Into<String>, capacity: usize) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::with_capacity(capacity),
            values: Vec::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` more samples.
    pub fn reserve(&mut self, additional: usize) {
        self.times.reserve(additional);
        self.values.reserve(additional);
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last sample's time or `value` is NaN.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(at >= last, "sample at {at} precedes last sample at {last}");
        }
        assert!(!value.is_nan(), "NaN sample in series {}", self.name);
        crate::sim_invariant!(
            value.is_finite(),
            "non-finite sample {value} in series {}",
            self.name
        );
        self.times.push(at);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterates over `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// The unweighted mean of all sample values.
    ///
    /// Use [`TimeSeries::mean_over`] for the measurement-window semantics
    /// of the paper; this plain mean is appropriate for uniformly sampled
    /// series.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
    }

    /// The minimum sample value.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// The maximum sample value.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Whether every sample value is finite (no NaN or infinities).
    ///
    /// [`TimeSeries::push`] already rejects NaN unconditionally and all
    /// non-finite values under the `invariants` feature; this check lets
    /// release-mode consumers — the fault-injection property tests in
    /// particular — assert the "finite series" invariant explicitly.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// The unweighted mean of samples with `time >= from`.
    ///
    /// This is the paper's §3.4 measurement: "the average temperature over
    /// the last 30 seconds of a 300 second execution" is
    /// `mean_over(SimTime::from_secs(270))`.
    pub fn mean_over(&self, from: SimTime) -> Option<f64> {
        let start = self.times.partition_point(|&t| t < from);
        let tail = &self.values[start..];
        if tail.is_empty() {
            return None;
        }
        Some(tail.iter().sum::<f64>() / tail.len() as f64)
    }

    /// Integrates the series as a step function (each value holds until the
    /// next sample). For a power trace in watts this yields joules.
    ///
    /// Returns `0.0` for series with fewer than two samples.
    pub fn integrate_step(&self) -> f64 {
        self.iter()
            .zip(self.times.iter().skip(1))
            .map(|((t0, v), &t1)| v * (t1 - t0).as_secs_f64())
            .sum()
    }

    /// Integrates the series by the trapezoid rule. Appropriate for
    /// smoothly varying signals such as temperature.
    ///
    /// Returns `0.0` for series with fewer than two samples.
    pub fn integrate_trapezoid(&self) -> f64 {
        self.times
            .windows(2)
            .zip(self.values.windows(2))
            .map(|(t, v)| 0.5 * (v[0] + v[1]) * (t[1] - t[0]).as_secs_f64())
            .sum()
    }

    /// Downsamples to at most `max_points` evenly spaced samples (by index),
    /// always retaining the first and last. Intended for plotting.
    pub fn thin(&self, max_points: usize) -> Vec<(SimTime, f64)> {
        if self.len() <= max_points || max_points < 2 {
            return self.iter().collect();
        }
        let step = (self.len() - 1) as f64 / (max_points - 1) as f64;
        (0..max_points)
            .map(|i| {
                let idx = ((i as f64 * step).round() as usize).min(self.len() - 1);
                (self.times[idx], self.values[idx])
            })
            .collect()
    }

    /// The value in effect at `at`, treating the series as a step function.
    /// Returns `None` before the first sample.
    pub fn sample_at(&self, at: SimTime) -> Option<f64> {
        let idx = self.times.partition_point(|&t| t <= at);
        if idx == 0 {
            None
        } else {
            Some(self.values[idx - 1])
        }
    }

    /// A centred moving average with the given window span: each output
    /// sample is the mean of all input samples within `window / 2` on
    /// either side. Used to smooth probabilistic temperature curves for
    /// plotting without disturbing their trend.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn moving_average(&self, window: SimDuration) -> TimeSeries {
        assert!(!window.is_zero(), "window must be positive");
        let half = window / 2;
        let mut out = TimeSeries::new(format!("{}_smoothed", self.name));
        let mut lo = 0usize;
        let mut hi = 0usize;
        let mut sum = 0.0;
        for (i, &t) in self.times.iter().enumerate() {
            let from = t.saturating_since(SimTime::ZERO + half);
            let from = SimTime::ZERO + from;
            let to = t.checked_add(half).unwrap_or(SimTime::MAX);
            while hi < self.times.len() && self.times[hi] <= to {
                sum += self.values[hi];
                hi += 1;
            }
            while lo < self.times.len() && self.times[lo] < from {
                sum -= self.values[lo];
                lo += 1;
            }
            debug_assert!(lo <= i && i < hi);
            out.push(t, sum / (hi - lo) as f64);
        }
        out
    }

    /// Duration covered by the series (first to last sample).
    pub fn span(&self) -> SimDuration {
        match (self.times.first(), self.times.last()) {
            (Some(&a), Some(&b)) => b - a,
            _ => SimDuration::ZERO,
        }
    }
}

#[cfg(all(test, feature = "invariants"))]
mod invariant_tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn infinite_sample_is_rejected() {
        let mut s = TimeSeries::new("test");
        s.push(SimTime::ZERO, f64::INFINITY);
    }

    #[test]
    fn finite_samples_pass() {
        let mut s = TimeSeries::new("test");
        s.push(SimTime::ZERO, 1.5);
        s.push(SimTime::from_millis(1), -2.5);
        assert_eq!(s.len(), 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn series(samples: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("test");
        for &(ms, v) in samples {
            s.push(SimTime::from_millis(ms), v);
        }
        s
    }

    #[test]
    fn mean_over_window() {
        let s = series(&[(0, 1.0), (100, 2.0), (200, 3.0), (300, 4.0)]);
        assert_eq!(s.mean_over(SimTime::from_millis(200)), Some(3.5));
        assert_eq!(s.mean_over(SimTime::from_millis(0)), Some(2.5));
        assert_eq!(s.mean_over(SimTime::from_millis(301)), None);
    }

    #[test]
    fn all_finite_flags_infinities() {
        let s = series(&[(0, 1.0), (100, 2.0)]);
        assert!(s.all_finite());
        assert!(TimeSeries::new("empty").all_finite(), "vacuously true");
        // Infinity slips past the release-mode push (only NaN is rejected
        // unconditionally); all_finite must still catch it.
        if !cfg!(feature = "invariants") {
            let mut s = series(&[(0, 1.0)]);
            s.push(SimTime::from_millis(100), f64::INFINITY);
            assert!(!s.all_finite());
        }
    }

    #[test]
    fn step_integration_is_left_rectangle() {
        let s = series(&[(0, 10.0), (500, 20.0), (1000, 0.0)]);
        assert!((s.integrate_step() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_integration() {
        // Linear ramp 0->10 over 1 s has area 5.
        let s = series(&[(0, 0.0), (1000, 10.0)]);
        assert!((s.integrate_trapezoid() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sample_at_is_step_function() {
        let s = series(&[(100, 1.0), (200, 2.0)]);
        assert_eq!(s.sample_at(SimTime::from_millis(50)), None);
        assert_eq!(s.sample_at(SimTime::from_millis(100)), Some(1.0));
        assert_eq!(s.sample_at(SimTime::from_millis(150)), Some(1.0));
        assert_eq!(s.sample_at(SimTime::from_millis(500)), Some(2.0));
    }

    #[test]
    fn thin_keeps_endpoints() {
        let s = series(&(0..100).map(|i| (i * 10, i as f64)).collect::<Vec<_>>());
        let thinned = s.thin(10);
        assert_eq!(thinned.len(), 10);
        assert_eq!(thinned.first().unwrap().1, 0.0);
        assert_eq!(thinned.last().unwrap().1, 99.0);
    }

    #[test]
    fn thin_noop_when_small() {
        let s = series(&[(0, 1.0), (10, 2.0)]);
        assert_eq!(s.thin(10).len(), 2);
    }

    #[test]
    #[should_panic(expected = "precedes last sample")]
    fn push_rejects_time_travel() {
        let mut s = TimeSeries::new("t");
        s.push(SimTime::from_millis(10), 0.0);
        s.push(SimTime::from_millis(5), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn push_rejects_nan() {
        TimeSeries::new("t").push(SimTime::ZERO, f64::NAN);
    }

    #[test]
    fn min_max_last_span() {
        let s = series(&[(0, 3.0), (100, 1.0), (200, 2.0)]);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.last(), Some((SimTime::from_millis(200), 2.0)));
        assert_eq!(s.span(), SimDuration::from_millis(200));
    }

    #[test]
    fn empty_series_reductions() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.integrate_step(), 0.0);
        assert_eq!(s.span(), SimDuration::ZERO);
    }

    #[test]
    fn moving_average_smooths_alternation() {
        // Alternating 0/10 samples every 10 ms with a 50 ms window
        // average out to ~5 in the interior.
        let mut s = TimeSeries::new("noisy");
        for i in 0..100u64 {
            s.push(SimTime::from_millis(i * 10), if i % 2 == 0 { 0.0 } else { 10.0 });
        }
        let smooth = s.moving_average(SimDuration::from_millis(50));
        assert_eq!(smooth.len(), s.len());
        for (t, v) in smooth.iter() {
            if t > SimTime::from_millis(50) && t < SimTime::from_millis(940) {
                assert!((v - 5.0).abs() <= 2.0, "at {t}: {v}");
            }
        }
    }

    #[test]
    fn moving_average_preserves_constants() {
        let s = series(&[(0, 3.0), (100, 3.0), (200, 3.0)]);
        let smooth = s.moving_average(SimDuration::from_millis(150));
        assert!(smooth.iter().all(|(_, v)| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn moving_average_rejects_zero_window() {
        series(&[(0, 1.0)]).moving_average(SimDuration::ZERO);
    }

    proptest! {
        /// Step integral of a constant series equals constant * span.
        #[test]
        fn prop_constant_integral(v in -1e3f64..1e3, n in 2usize..50) {
            let mut s = TimeSeries::new("c");
            for i in 0..n {
                s.push(SimTime::from_millis(i as u64 * 100), v);
            }
            let expected = v * s.span().as_secs_f64();
            prop_assert!((s.integrate_step() - expected).abs() < 1e-9);
            prop_assert!((s.integrate_trapezoid() - expected).abs() < 1e-9);
        }

        /// mean_over(first sample time) equals the plain mean.
        #[test]
        fn prop_mean_over_start_is_mean(values in prop::collection::vec(-1e3f64..1e3, 1..50)) {
            let mut s = TimeSeries::new("m");
            for (i, &v) in values.iter().enumerate() {
                s.push(SimTime::from_millis(i as u64), v);
            }
            let a = s.mean().unwrap();
            let b = s.mean_over(SimTime::ZERO).unwrap();
            prop_assert!((a - b).abs() < 1e-9);
        }

        /// min <= mean <= max for any non-empty series.
        #[test]
        fn prop_mean_between_extremes(values in prop::collection::vec(-1e3f64..1e3, 1..50)) {
            let mut s = TimeSeries::new("m");
            for (i, &v) in values.iter().enumerate() {
                s.push(SimTime::from_millis(i as u64), v);
            }
            let (mean, min, max) = (s.mean().unwrap(), s.min().unwrap(), s.max().unwrap());
            prop_assert!(min <= mean + 1e-12 && mean <= max + 1e-12);
        }
    }
}
