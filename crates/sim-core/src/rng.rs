//! Deterministic randomness for simulations.
//!
//! [`SimRng`] wraps a seeded PRNG and adds the distributions the
//! reproduction needs (Bernoulli for the paper's probabilistic injection,
//! exponential for Poisson arrival processes, Gaussian for measurement
//! noise) without pulling in an external distributions crate. Every
//! experiment takes an explicit seed so that results are reproducible
//! run-to-run, and trials differ only by their seed.

use dimetrodon_ckpt::{CkptError, Dec, Enc};

/// The core generator: xoshiro256++, seeded via SplitMix64.
///
/// This is the same algorithm (and the same `seed_from_u64` expansion)
/// that `rand 0.8`'s `SmallRng` uses on 64-bit platforms, implemented
/// inline so the workspace carries no external randomness dependency and
/// seeded streams stay bit-identical to the original calibration runs.
#[derive(Debug, Clone, PartialEq)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// One step of the SplitMix64 sequence; returns the mixed output and
/// advances `state`. Used for seed expansion and per-point seed derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a deterministic per-point seed from a base seed and a point
/// index, via SplitMix64. Sweep engines use this so that every grid point
/// gets an independent, reproducible stream that does not depend on
/// execution order or worker count.
#[inline]
pub fn derive_seed(base_seed: u64, point_index: u64) -> u64 {
    let mut state = base_seed ^ point_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut state)
}

impl Xoshiro256PlusPlus {
    /// Seed expansion identical to `SeedableRng::seed_from_u64` for the
    /// xoshiro256++ generator in `rand 0.8`: four SplitMix64 outputs.
    fn from_u64_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut state);
        }
        Xoshiro256PlusPlus { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);

        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);

        result
    }

    /// A uniform `f64` in `[0, 1)` from the high 53 bits, matching the
    /// `Standard` distribution for floats.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)` by widening multiply with rejection
    /// (Lemire's method, as in `Uniform<usize>::sample_single`).
    #[inline]
    fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = (n << n.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let m = (v as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo <= zone {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A seeded simulation PRNG with the distributions used across the
/// workspace.
///
/// # Examples
///
/// ```
/// use dimetrodon_sim_core::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// // Same seed, same stream.
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256PlusPlus,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256PlusPlus::from_u64_seed(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; used to give each trial,
    /// thread, or subsystem its own stream so that adding draws in one
    /// place does not perturb another.
    // simlint::allow(S1): fork() derives a *fresh* child stream rather
    // than copying this one — the child's Box–Muller cache must start
    // empty. The deep-copy path for SimRng is `#[derive(Clone)]`.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(seed)
    }

    /// Serializes the full generator state (xoshiro words plus the
    /// Box–Muller spare) for a durable checkpoint; the decoded generator
    /// continues the stream bit-identically.
    pub fn encode_state(&self, enc: &mut Enc) {
        for &word in &self.inner.s {
            enc.u64(word);
        }
        enc.opt_f64(self.spare_normal);
    }

    /// Rebuilds a generator from [`encode_state`](Self::encode_state)
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`CkptError`] when the payload is shorter than a full
    /// state or carries a malformed option tag.
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = dec.u64()?;
        }
        Ok(SimRng {
            inner: Xoshiro256PlusPlus { s },
            spare_normal: dec.opt_f64()?,
        })
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// A Bernoulli trial: `true` with probability `p`.
    ///
    /// This is the primitive behind the paper's probabilistic injection
    /// model — "with user-defined probability `p`, run the idle thread".
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // Make the endpoints exact regardless of float draw behaviour.
        // simlint::allow(D4): exact endpoint tests are the point — p == 0
        // must never inject and p == 1 must always inject.
        if p == 0.0 {
            return false;
        }
        // simlint::allow(D4): see above.
        if p == 1.0 {
            return true;
        }
        self.uniform() < p
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.next_below(n as u64) as usize
    }

    /// An exponential sample with the given mean (inter-arrival times of a
    /// Poisson process).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "bad exponential mean: {mean}");
        // Inverse CDF; clamp away from u = 0 to avoid ln(0).
        let u = self.uniform().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// A Gaussian sample via the Box–Muller transform.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(
            sigma >= 0.0 && sigma.is_finite() && mu.is_finite(),
            "bad normal parameters: mu={mu}, sigma={sigma}"
        );
        if let Some(z) = self.spare_normal.take() {
            return mu + sigma * z;
        }
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        mu + sigma * r * theta.cos()
    }

    /// A log-uniform sample in `[lo, hi)`: uniform in log space, for
    /// parameter sweeps spanning orders of magnitude (e.g. quantum lengths
    /// from 1 ms to 100 ms in Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `lo >= hi`, or either bound is not finite.
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && lo < hi && hi.is_finite(), "bad range [{lo}, {hi})");
        (self.uniform_range(lo.ln(), hi.ln())).exp()
    }
}

#[cfg(test)]
mod tests {
    // Checkpoint codec: the decoded generator continues the stream
    // bit-identically, spare Box-Muller cache included.
    #[test]
    fn rng_state_round_trips_bit_for_bit() {
        use dimetrodon_ckpt::{Dec, Enc};
        let mut rng = super::SimRng::new(99);
        for _ in 0..7 {
            rng.uniform();
        }
        rng.normal(0.0, 1.0); // prime the spare-normal cache
        let mut enc = Enc::new();
        rng.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let mut restored = super::SimRng::decode_state(&mut dec).unwrap();
        dec.finish().unwrap();
        for _ in 0..64 {
            assert_eq!(rng.uniform().to_bits(), restored.uniform().to_bits());
            assert_eq!(
                rng.normal(2.0, 3.0).to_bits(),
                restored.normal(2.0, 3.0).to_bits()
            );
        }
    }

    use super::*;
    use proptest::prelude::*;

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        // Nearby indices and nearby base seeds must land far apart.
        let mut seen = std::collections::HashSet::new();
        for base in 0..8u64 {
            for idx in 0..64u64 {
                seen.insert(derive_seed(base, idx));
            }
        }
        assert_eq!(seen.len(), 8 * 64, "derived seeds must not collide");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..32).filter(|_| c1.uniform() == c2.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn bernoulli_endpoints_are_exact() {
        let mut rng = SimRng::new(3);
        assert!((0..1000).all(|_| !rng.bernoulli(0.0)));
        assert!((0..1000).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn bernoulli_rate_approximates_p() {
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn exponential_mean_approximates_parameter() {
        let mut rng = SimRng::new(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_approximate_parameters() {
        let mut rng = SimRng::new(17);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bernoulli_rejects_bad_p() {
        SimRng::new(0).bernoulli(1.5);
    }

    #[test]
    #[should_panic(expected = "bad exponential mean")]
    fn exponential_rejects_bad_mean() {
        SimRng::new(0).exponential(0.0);
    }

    proptest! {
        #[test]
        fn prop_uniform_range_in_bounds(seed in any::<u64>(), lo in -1e6f64..1e6, width in 1e-3f64..1e6) {
            let mut rng = SimRng::new(seed);
            let hi = lo + width;
            for _ in 0..32 {
                let x = rng.uniform_range(lo, hi);
                prop_assert!(x >= lo && x < hi);
            }
        }

        #[test]
        fn prop_exponential_nonnegative(seed in any::<u64>(), mean in 1e-3f64..1e6) {
            let mut rng = SimRng::new(seed);
            for _ in 0..32 {
                prop_assert!(rng.exponential(mean) >= 0.0);
            }
        }

        #[test]
        fn prop_log_uniform_in_bounds(seed in any::<u64>(), lo in 1e-3f64..1e3, factor in 1.1f64..1e3) {
            let mut rng = SimRng::new(seed);
            let hi = lo * factor;
            for _ in 0..32 {
                let x = rng.log_uniform(lo, hi);
                prop_assert!(x >= lo && x < hi * (1.0 + 1e-12));
            }
        }

        #[test]
        fn prop_index_in_bounds(seed in any::<u64>(), n in 1usize..1000) {
            let mut rng = SimRng::new(seed);
            for _ in 0..32 {
                prop_assert!(rng.index(n) < n);
            }
        }
    }
}
