//! Simulation time: instants ([`SimTime`]) and spans ([`SimDuration`]).
//!
//! All simulation time is kept in integer nanoseconds so that event ordering
//! is exact and runs are bit-for-bit reproducible. The paper's timescales
//! span five orders of magnitude — microsecond C-state transitions, 5 µs
//! context switches, millisecond idle quanta, 100 ms scheduler timeslices,
//! and 300 s experiments — all of which fit comfortably in a `u64`
//! nanosecond counter (u64 holds ~584 years).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is an instant; spans between instants are [`SimDuration`]s.
/// The two are distinct types so that, e.g., a quantum length can never be
/// accidentally used as a deadline.
///
/// # Examples
///
/// ```
/// use dimetrodon_sim_core::{SimTime, SimDuration};
///
/// let start = SimTime::ZERO;
/// let deadline = start + SimDuration::from_millis(100);
/// assert_eq!(deadline - start, SimDuration::from_millis(100));
/// assert_eq!(deadline.as_secs_f64(), 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use dimetrodon_sim_core::SimDuration;
///
/// let quantum = SimDuration::from_millis(100);
/// assert_eq!(quantum * 3, SimDuration::from_millis(300));
/// assert_eq!(quantum.as_micros(), 100_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since the simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since the simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since the simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds since the simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation start, as a float (lossy for display
    /// and plotting; exact ordering should use the integer value).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite() && s * 1e9 <= u64::MAX as f64,
            "duration out of range: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a span from fractional milliseconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative, NaN, or too large to represent.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Subtraction that stops at zero rather than panicking.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the span by a non-negative factor, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative, NaN, or scales the span out of range.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        let ns = self.0 as f64 * factor;
        assert!(
            factor >= 0.0 && ns.is_finite() && ns <= u64::MAX as f64,
            "duration scale out of range: {factor}"
        );
        SimDuration(ns.round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // simlint::allow(R1): documented panic; saturating_since is
                // the non-panicking alternative.
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                // simlint::allow(R1): underflow here means the caller
                // rewound time before the epoch — a logic error worth a
                // loud stop, matching EventQueue's past-scheduling panic.
                .expect("SimTime - SimDuration underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics on underflow; use [`SimDuration::saturating_sub`] when the
    /// ordering is uncertain.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // simlint::allow(R1): documented panic; saturating_sub is
                // the non-panicking alternative.
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(250);
        let d = SimDuration::from_millis(100);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(10));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.1), SimDuration::from_millis(100));
        assert_eq!(SimDuration::from_millis_f64(1.5), SimDuration::from_micros(1500));
        assert!((SimDuration::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_nanos(3)); // 2.5 rounds to 3
        assert_eq!(d.mul_f64(2.0), SimDuration::from_nanos(20));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_nanos(7)),
            Some(SimTime::from_nanos(7))
        );
    }
}
