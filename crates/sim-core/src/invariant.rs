//! Runtime invariant checking behind the `invariants` Cargo feature.
//!
//! The static pass (`simlint`) keeps nondeterminism out of the sources;
//! this layer checks the *dynamic* contracts the paper's argument rests on
//! — monotone event time, finite bounded temperatures, conserved energy
//! accounting — at simulation time. The checks are read-only observations,
//! so enabling them cannot perturb results: the fig3 bit-identity
//! regression runs with the feature on to prove it.
//!
//! Because [`sim_invariant!`] tests `cfg!(feature = "invariants")` at its
//! expansion site, every crate that uses the macro must declare its own
//! `invariants` feature (each forwards to its dependencies' features, so
//! enabling it at any level turns on the whole stack below).

/// Asserts a simulation invariant when the expanding crate's `invariants`
/// feature is enabled; compiles to nothing otherwise.
///
/// # Examples
///
/// ```
/// use dimetrodon_sim_core::sim_invariant;
///
/// let temperature: f64 = 42.0;
/// sim_invariant!(
///     temperature.is_finite(),
///     "temperature must stay finite, got {temperature}"
/// );
/// ```
#[macro_export]
macro_rules! sim_invariant {
    ($cond:expr $(, $($arg:tt)+)?) => {
        if cfg!(feature = "invariants") {
            assert!($cond $(, $($arg)+)?);
        }
    };
}

#[cfg(all(test, feature = "invariants"))]
mod tests {
    #[test]
    fn passing_invariant_is_silent() {
        sim_invariant!(1 + 1 == 2, "arithmetic holds");
    }

    #[test]
    #[should_panic(expected = "violated")]
    fn failing_invariant_panics_when_enabled() {
        sim_invariant!(false, "violated");
    }
}
