//! A deterministic discrete-event calendar.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by
//! time, with ties broken by insertion order. The FIFO tie-break is what
//! makes simulations reproducible: two events scheduled for the same instant
//! always pop in the order they were pushed, regardless of the payload type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: when it fires and what it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// The instant the event fires.
    pub at: SimTime,
    /// Monotonic insertion sequence number; breaks same-instant ties.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

#[derive(Clone)]
struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest-first,
// and earliest-inserted-first within an instant.
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

/// A deterministic event calendar for discrete-event simulation.
///
/// Events pop in non-decreasing time order; events scheduled for the same
/// instant pop in insertion order.
///
/// # Examples
///
/// ```
/// use dimetrodon_sim_core::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_millis(20), "later");
/// queue.push(SimTime::from_millis(10), "sooner");
/// queue.push(SimTime::from_millis(10), "sooner, but second");
///
/// assert_eq!(queue.pop().map(|s| s.event), Some("sooner"));
/// assert_eq!(queue.pop().map(|s| s.event), Some("sooner, but second"));
/// assert_eq!(queue.pop().map(|s| s.event), Some("later"));
/// assert!(queue.pop().is_none());
/// ```
// Cloning copies the heap's backing storage verbatim, so a clone pops the
// exact same event order as the original — forks of a simulation replay
// deterministically.
#[derive(Default, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    last_popped: Option<SimTime>,
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: None,
        }
    }

    /// Creates an empty calendar with room for `capacity` pending events,
    /// so steady-state simulations never reallocate the heap.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            last_popped: None,
        }
    }

    /// Schedules `event` to fire at `at`, returning its sequence number.
    ///
    /// Scheduling an event earlier than the last popped instant is a logic
    /// error in the caller (the past is immutable in a discrete-event
    /// simulation).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        if let Some(now) = self.last_popped {
            assert!(
                at >= now,
                "scheduled an event at {at} in the past (now = {now})"
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
        seq
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let entry = self.heap.pop()?;
        crate::sim_invariant!(
            self.last_popped.is_none_or(|watermark| entry.at >= watermark),
            "event queue popped {} before the {:?} watermark: timestamps must be monotone",
            entry.at,
            self.last_popped
        );
        self.last_popped = Some(entry.at);
        Some(Scheduled {
            at: entry.at,
            seq: entry.seq,
            event: entry.event,
        })
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest pending event if it fires at or
    /// before `deadline`.
    ///
    /// This is the event-loop primitive: it fuses the peek-then-pop pair so
    /// callers never need to re-assert that the peeked event still exists.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<Scheduled<E>> {
        if self.heap.peek().is_some_and(|e| e.at <= deadline) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events but keeps the clock watermark, so that
    /// subsequent pushes are still checked against the last popped instant.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .field("last_popped", &self.last_popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), 3u32);
        q.push(SimTime::from_millis(1), 1);
        q.push(SimTime::from_millis(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_millis(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        q.pop();
        q.push(SimTime::from_millis(5), ());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        q.push(SimTime::from_millis(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        assert_eq!(q.pop().map(|s| s.at), Some(SimTime::from_millis(4)));
    }

    #[test]
    fn clear_keeps_watermark() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        q.pop();
        q.push(SimTime::from_millis(20), ());
        q.clear();
        assert!(q.is_empty());
        // Still cannot schedule before the watermark.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.push(SimTime::from_millis(5), ());
        }));
        assert!(result.is_err());
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_millis(1), ());
        q.push(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    proptest! {
        /// Any batch of events pops in sorted order by (time, insertion seq).
        #[test]
        fn prop_pop_order_is_sorted(times in prop::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut popped = Vec::new();
            while let Some(s) = q.pop() {
                popped.push((s.at, s.seq));
            }
            let mut sorted = popped.clone();
            sorted.sort();
            prop_assert_eq!(popped, sorted);
        }

        /// Every pushed event is popped exactly once.
        #[test]
        fn prop_no_events_lost(times in prop::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
