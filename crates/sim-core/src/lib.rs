//! Discrete-event simulation primitives for the Dimetrodon reproduction.
//!
//! This crate is the substrate under every other crate in the workspace: a
//! nanosecond-resolution simulation clock ([`SimTime`], [`SimDuration`]), a
//! deterministic event calendar ([`EventQueue`]), seeded randomness with the
//! distributions the experiments need ([`SimRng`]), and time-series
//! recording with the paper's measurement reductions ([`TimeSeries`]).
//!
//! Determinism is the design center. The original paper measured real
//! hardware, where run-to-run variance is controlled by averaging many
//! trials; in this reproduction every source of nondeterminism is a seeded
//! PRNG stream and every same-instant event tie is broken by insertion
//! order, so a given `(scenario, seed)` pair always produces the same
//! result and "trials" are simply different seeds.
//!
//! # Examples
//!
//! A minimal event loop:
//!
//! ```
//! use dimetrodon_sim_core::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Event {
//!     Tick,
//!     Stop,
//! }
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::ZERO, Event::Tick);
//! queue.push(SimTime::from_secs(1), Event::Stop);
//!
//! let mut ticks = 0;
//! while let Some(scheduled) = queue.pop() {
//!     match scheduled.event {
//!         Event::Tick => {
//!             ticks += 1;
//!             if ticks < 5 {
//!                 queue.push(scheduled.at + SimDuration::from_millis(100), Event::Tick);
//!             }
//!         }
//!         Event::Stop => break,
//!     }
//! }
//! assert_eq!(ticks, 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod invariant;
mod queue;
mod rng;
mod series;
mod time;

pub use queue::{EventQueue, Scheduled};
pub use rng::{derive_seed, SimRng};
pub use series::TimeSeries;
pub use time::{SimDuration, SimTime};
