//! Parallel sweep execution engine.
//!
//! Every figure and table in the paper is a parameter sweep: dozens of
//! independent characterisation runs over a `(p, L)` grid. Each run builds
//! its own [`System`](dimetrodon_sched::System) from scratch and carries
//! its own seed, so runs share no state and can execute on any core in any
//! order. This module fans them across a worker pool and returns results
//! in grid order.
//!
//! Determinism is preserved by construction: a point's outcome is a pure
//! function of its [`SweepPoint`] (every experiment derives per-point
//! seeds from grid indices, never from execution order), and results are
//! reassembled by point index. Output is therefore bit-identical across
//! `--jobs` values, including `--jobs 1`.
//!
//! The pool is `std::thread::scope` plus a shared atomic work index — no
//! runtime dependencies. Worker count defaults to
//! [`std::thread::available_parallelism`] and can be overridden globally
//! with [`set_jobs`] (the `--jobs N` flag of the bench binaries and CLI),
//! or per-call with [`parallel_map_with`] (which is what tests use, so a
//! concurrently running test can never flip another sweep's worker count
//! through the shared global).
//!
//! If a point panics, the pool stops claiming new indices immediately
//! (a poisoned flag checked in the claim loop) and the first panic payload
//! is re-raised at join — the rest of the grid is not burned first. Sweeps
//! that need to *survive* a panicking point instead of aborting run under
//! the [`supervise`](crate::supervise) layer, which [`run_sweep`] consults.
//!
//! # Examples
//!
//! ```
//! use dimetrodon_harness::sweep::parallel_map;
//!
//! let squares = parallel_map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use dimetrodon_machine::MachineConfig;

use crate::runner::{characterize_on, Actuation, RunConfig, RunOutcome, SaturatingWorkload};
use crate::supervise;

pub use dimetrodon_sim_core::derive_seed;

/// Global worker-count override: 0 means "auto" (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count used by every subsequent sweep; `0` restores the
/// default of one worker per available core.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count sweeps currently run with.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Applies `f` to every index in `0..count` across the worker pool,
/// returning results in index order.
///
/// `f` must be a pure function of the index for output to be independent
/// of worker count; all sweep callers satisfy this by deriving per-point
/// seeds from grid indices.
///
/// # Panics
///
/// Panics if any invocation of `f` panics (the first panic is propagated,
/// and no further indices are dispatched once one worker has panicked).
pub fn parallel_map<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(jobs(), count, f)
}

/// [`parallel_map`] with an explicit worker count instead of the global
/// [`set_jobs`] override.
///
/// This is the entry point tests use: worker count is a parameter of the
/// call, so concurrently running tests cannot flip each other's pool
/// sizes through the shared `JOBS` atomic mid-sweep.
///
/// # Panics
///
/// Panics if any invocation of `f` panics (the first panic is propagated,
/// and no further indices are dispatched once one worker has panicked).
pub fn parallel_map_with<T, F>(workers: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(count.max(1));
    if workers <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    // Set by the first worker whose point panics; checked in the claim
    // loop so the remaining grid is not burned before the panic surfaces.
    let poisoned = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        match std::panic::catch_unwind(AssertUnwindSafe(|| f(index))) {
                            Ok(value) => produced.push((index, value)),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Relaxed);
                                let mut slot =
                                    first_panic.lock().unwrap_or_else(|e| e.into_inner());
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                break;
                            }
                        }
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // Workers catch their own panics, so join can only fail on a
            // panic *between* points (allocator/unwind machinery); treat it
            // like a point panic.
            match handle.join() {
                Ok(produced) => {
                    for (index, value) in produced {
                        slots[index] = Some(value);
                    }
                }
                Err(payload) => {
                    let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
        }
    });

    if let Some(payload) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        std::panic::resume_unwind(payload);
    }

    slots
        .into_iter()
        // simlint::allow(R1): the atomic work index hands every slot to
        // exactly one worker, and scope join guarantees all writes landed.
        .map(|slot| slot.expect("every sweep index is claimed exactly once"))
        .collect()
}

/// One point of a characterisation sweep: which machine, workload, and
/// actuation to run, with the point's own (index-derived) seed inside
/// [`RunConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The platform to simulate.
    pub machine: MachineConfig,
    /// The saturating workload to drive.
    pub workload: SaturatingWorkload,
    /// The thermal-management mechanism under test.
    pub actuation: Actuation,
    /// Run length, measurement window, and seed.
    pub config: RunConfig,
}

impl SweepPoint {
    /// A point on the standard test platform.
    pub fn new(workload: SaturatingWorkload, actuation: Actuation, config: RunConfig) -> Self {
        SweepPoint {
            machine: MachineConfig::xeon_e5520(),
            workload,
            actuation,
            config,
        }
    }

    /// A point on an explicit platform (sensitivity and ablation studies).
    pub fn on(
        machine: MachineConfig,
        workload: SaturatingWorkload,
        actuation: Actuation,
        config: RunConfig,
    ) -> Self {
        SweepPoint {
            machine,
            workload,
            actuation,
            config,
        }
    }
}

/// Runs every point's characterisation across the worker pool, returning
/// outcomes in point order.
///
/// When a [`supervise::SupervisorConfig`] is installed (the bench binaries
/// and CLI install one from their flags), each point runs under the
/// supervision layer: panics are quarantined instead of aborting the
/// sweep, points can carry deadlines and bounded retries, and completed
/// points are journaled to disk so an interrupted run resumes without
/// recomputation. Failed points surface as
/// [`supervise::unavailable_outcome`] placeholders (NaN temperatures,
/// zero throughput) and are recorded as incidents for the caller to
/// report. With no supervisor installed this is exactly the bare pool:
/// a panic propagates and tears the sweep down.
pub fn run_sweep(points: &[SweepPoint]) -> Vec<RunOutcome> {
    match supervise::installed() {
        Some(config) => supervise::run_supervised(points, &config)
            .into_iter()
            .map(supervise::PointOutcome::into_outcome)
            .collect(),
        None => parallel_map(points.len(), |i| {
            let point = &points[i];
            characterize_on(&point.machine, point.workload, point.actuation, point.config)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        // Make late indices finish first to exercise reassembly.
        let values = parallel_map(64, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(values, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_point_sweeps_work() {
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn worker_count_does_not_change_values() {
        // Worker count is threaded explicitly through the pool, so this
        // test cannot race with the global `JOBS` override (and cannot
        // perturb any concurrently running sweep by mutating it).
        let reference: Vec<u64> = (0..40).map(|i| derive_seed(99, i)).collect();
        for jobs in [1, 2, 3, 7] {
            let values = parallel_map_with(jobs, 40, |i| derive_seed(99, i as u64));
            assert_eq!(values, reference, "jobs = {jobs}");
        }
    }

    #[test]
    fn pool_actually_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        // An explicit worker count: a concurrent test changing the global
        // override cannot reduce this pool to one worker mid-flight.
        parallel_map_with(4, 16, |_| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            PEAK.load(Ordering::SeqCst) > 1,
            "expected overlapping workers, peak {}",
            PEAK.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn global_jobs_override_round_trips() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1, "auto resolves to at least one worker");
    }

    #[test]
    #[should_panic(expected = "sweep point panicked")]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with(2, 8, |i| {
                if i == 5 {
                    panic!("sweep point panicked");
                }
                i
            })
        });
        match result {
            Ok(_) => {}
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    #[test]
    fn panic_poisons_the_claim_loop() {
        use std::sync::atomic::AtomicUsize;
        // One worker panics on the very first index while the other
        // workers are briefly held; once the poison flag is up, the pool
        // must stop claiming fresh indices instead of burning the whole
        // grid before the join.
        let executed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map_with(2, 1024, |i| {
                executed.fetch_add(1, Ordering::SeqCst);
                if i == 0 {
                    panic!("poison");
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
                i
            })
        }));
        assert!(result.is_err(), "panic must still propagate");
        let ran = executed.load(Ordering::SeqCst);
        assert!(
            ran < 1024,
            "claim loop kept dispatching the whole grid after a panic ({ran} points ran)"
        );
    }
}
