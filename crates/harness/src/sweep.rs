//! Parallel sweep execution engine.
//!
//! Every figure and table in the paper is a parameter sweep: dozens of
//! independent characterisation runs over a `(p, L)` grid. Each run builds
//! its own [`System`](dimetrodon_sched::System) from scratch and carries
//! its own seed, so runs share no state and can execute on any core in any
//! order. This module fans them across a worker pool and returns results
//! in grid order.
//!
//! Determinism is preserved by construction: a point's outcome is a pure
//! function of its [`SweepPoint`] (every experiment derives per-point
//! seeds from grid indices, never from execution order), and results are
//! reassembled by point index. Output is therefore bit-identical across
//! `--jobs` values, including `--jobs 1`.
//!
//! The pool is `std::thread::scope` plus a shared atomic work index — no
//! runtime dependencies. Worker count defaults to
//! [`std::thread::available_parallelism`] and can be overridden globally
//! with [`set_jobs`] (the `--jobs N` flag of the bench binaries and CLI).
//!
//! # Examples
//!
//! ```
//! use dimetrodon_harness::sweep::parallel_map;
//!
//! let squares = parallel_map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use dimetrodon_machine::MachineConfig;

use crate::runner::{characterize_on, Actuation, RunConfig, RunOutcome, SaturatingWorkload};

pub use dimetrodon_sim_core::derive_seed;

/// Global worker-count override: 0 means "auto" (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count used by every subsequent sweep; `0` restores the
/// default of one worker per available core.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count sweeps currently run with.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Applies `f` to every index in `0..count` across the worker pool,
/// returning results in index order.
///
/// `f` must be a pure function of the index for output to be independent
/// of worker count; all sweep callers satisfy this by deriving per-point
/// seeds from grid indices.
///
/// # Panics
///
/// Panics if any invocation of `f` panics (the panic is propagated).
pub fn parallel_map<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs().min(count.max(1));
    if workers <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        produced.push((index, f(index)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            let produced = match handle.join() {
                Ok(produced) => produced,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (index, value) in produced {
                slots[index] = Some(value);
            }
        }
    });

    slots
        .into_iter()
        // simlint::allow(R1): the atomic work index hands every slot to
        // exactly one worker, and scope join guarantees all writes landed.
        .map(|slot| slot.expect("every sweep index is claimed exactly once"))
        .collect()
}

/// One point of a characterisation sweep: which machine, workload, and
/// actuation to run, with the point's own (index-derived) seed inside
/// [`RunConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The platform to simulate.
    pub machine: MachineConfig,
    /// The saturating workload to drive.
    pub workload: SaturatingWorkload,
    /// The thermal-management mechanism under test.
    pub actuation: Actuation,
    /// Run length, measurement window, and seed.
    pub config: RunConfig,
}

impl SweepPoint {
    /// A point on the standard test platform.
    pub fn new(workload: SaturatingWorkload, actuation: Actuation, config: RunConfig) -> Self {
        SweepPoint {
            machine: MachineConfig::xeon_e5520(),
            workload,
            actuation,
            config,
        }
    }

    /// A point on an explicit platform (sensitivity and ablation studies).
    pub fn on(
        machine: MachineConfig,
        workload: SaturatingWorkload,
        actuation: Actuation,
        config: RunConfig,
    ) -> Self {
        SweepPoint {
            machine,
            workload,
            actuation,
            config,
        }
    }
}

/// Runs every point's characterisation across the worker pool, returning
/// outcomes in point order.
pub fn run_sweep(points: &[SweepPoint]) -> Vec<RunOutcome> {
    parallel_map(points.len(), |i| {
        let point = &points[i];
        characterize_on(&point.machine, point.workload, point.actuation, point.config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        // Make late indices finish first to exercise reassembly.
        let values = parallel_map(64, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(values, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_point_sweeps_work() {
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn worker_count_does_not_change_values() {
        let reference: Vec<u64> = (0..40).map(|i| derive_seed(99, i)).collect();
        for jobs in [1, 2, 3, 7] {
            set_jobs(jobs);
            let values = parallel_map(40, |i| derive_seed(99, i as u64));
            assert_eq!(values, reference, "jobs = {jobs}");
        }
        set_jobs(0);
    }

    #[test]
    fn pool_actually_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        set_jobs(4);
        parallel_map(16, |_| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        });
        set_jobs(0);
        assert!(
            PEAK.load(Ordering::SeqCst) > 1,
            "expected overlapping workers, peak {}",
            PEAK.load(Ordering::SeqCst)
        );
    }

    #[test]
    #[should_panic(expected = "sweep point panicked")]
    fn worker_panics_propagate() {
        set_jobs(2);
        let result = std::panic::catch_unwind(|| {
            parallel_map(8, |i| {
                if i == 5 {
                    panic!("sweep point panicked");
                }
                i
            })
        });
        set_jobs(0);
        match result {
            Ok(_) => {}
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}
