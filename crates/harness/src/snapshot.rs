//! Warm-prefix sharing for parameter sweeps.
//!
//! Every point of a (p, L) grid simulates the same thing for most of its
//! run: the machine warming from idle under the unactuated workload,
//! before the point's controller parameters matter at all. With a
//! non-zero [`RunConfig::warmup`](crate::RunConfig::warmup) the runner
//! routes that prefix through this cache: the first point with a given
//! (machine, workload, warmup) triple builds the system, drives it to the
//! end of the prefix, and deposits a [`SystemSnapshot`]; every later
//! point forks the snapshot instead of recomputing the prefix. A grid of
//! N points pays one warmup and forks N times.
//!
//! # Why this cannot change results
//!
//! * The prefix runs under the null hook, which draws no randomness, so
//!   it is a pure function of the cache key — the per-point *seed* only
//!   feeds the policy RNG, which does not exist until actuation attaches
//!   after the prefix.
//! * A fork is a deep copy of all mutable simulation state (event queue
//!   ordering included); resuming it is bit-identical to continuing the
//!   original, which the harness property tests assert at every worker
//!   count.
//!
//! Consequently a cache hit, a cache miss, and a disabled cache
//! ([`set_enabled`]`(false)`, the CLI's `--no-snapshot`) all produce the
//! same bytes; the escape hatch exists for timing comparisons and
//! paranoia, not correctness.
//!
//! # Threading
//!
//! [`System`] holds `Rc` handles and cannot cross threads, so the cache
//! is thread-local: each sweep worker warms its own copy and amortises it
//! over the points its claim loop processes. The hit/miss counters are
//! global, so the orchestrating thread can report fleet-wide reuse.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dimetrodon_machine::{IdleMode, MachineConfig};
use dimetrodon_sched::{System, SystemSnapshot};
use dimetrodon_sim_core::SimDuration;
use dimetrodon_workload::SpecBenchmark;

use crate::runner::SaturatingWorkload;
use crate::supervise::fnv1a64;

/// Globally enables or disables warm-prefix reuse (the `--no-snapshot`
/// flag). Disabled, every run recomputes its prefix — same results,
/// cold-path timing.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Warm prefixes actually simulated (cache misses plus disabled-cache
/// runs).
static WARMUPS_PAID: AtomicU64 = AtomicU64::new(0);

/// Runs served by forking a cached prefix.
static FORKS_SERVED: AtomicU64 = AtomicU64::new(0);

/// Distinct warm prefixes a single worker keeps live. Sweeps iterate one
/// or two (machine, workload) combinations at a time; eight covers every
/// current experiment with room to spare while bounding memory.
const CACHE_CAP: usize = 8;

thread_local! {
    /// Per-worker snapshot store, most recently used last.
    static CACHE: RefCell<Vec<(u64, SystemSnapshot)>> = const { RefCell::new(Vec::new()) };
}

/// Enables or disables warm-prefix reuse for every subsequent run.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether warm-prefix reuse is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the calling thread's snapshot store and zeroes the global
/// reuse counters. Benchmarks call this per iteration so each iteration
/// honestly pays its one warmup.
pub fn reset() {
    CACHE.with(|cache| cache.borrow_mut().clear());
    WARMUPS_PAID.store(0, Ordering::Relaxed);
    FORKS_SERVED.store(0, Ordering::Relaxed);
}

/// Reuse counters since the last [`reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Warm prefixes actually simulated.
    pub warmups_paid: u64,
    /// Runs served by forking a cached prefix.
    pub forks_served: u64,
}

/// Reads the global reuse counters.
pub fn stats() -> SnapshotStats {
    SnapshotStats {
        warmups_paid: WARMUPS_PAID.load(Ordering::Relaxed),
        forks_served: FORKS_SERVED.load(Ordering::Relaxed),
    }
}

/// Byte accumulator behind [`warm_key`]: every ingredient contributes its
/// exact bit pattern. `Debug` renderings are *not* a stable identity —
/// float formatting is lossy about representation, and a `Debug` impl can
/// legally omit fields (so a newly added piece of state, like the thermal
/// boundary temperature, could silently alias two distinct prefixes).
struct KeyFeed(Vec<u8>);

impl KeyFeed {
    fn new() -> Self {
        KeyFeed(Vec::with_capacity(256))
    }

    /// A discriminant or presence byte. Every enum/Option feeds one, so
    /// adjacent variable-length sections can never alias each other.
    fn tag(&mut self, t: u8) {
        self.0.push(t);
    }

    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn duration(&mut self, d: SimDuration) {
        self.u64(d.as_nanos());
    }
}

/// Feeds every field of a [`MachineConfig`] — if a field is added, this
/// exhaustive walk is where it must join the key.
fn feed_machine(feed: &mut KeyFeed, m: &MachineConfig) {
    feed.usize(m.num_cores);
    feed.usize(m.threads_per_core);

    feed.f64(m.core_power.c_eff);
    feed.f64(m.core_power.leak_coeff);
    feed.f64(m.core_power.leak_t0);
    feed.f64(m.core_power.leak_tc);
    feed.f64(m.core_power.c1e_residual);
    feed.f64(m.core_power.c6_residual);
    feed.f64(m.core_power.nop_activity);

    feed.f64(m.package_power.uncore);

    feed.usize(m.pstates.len());
    for (id, pstate) in m.pstates.iter() {
        feed.usize(id.0);
        feed.u64(pstate.frequency_mhz() as u64);
        feed.f64(pstate.voltage());
    }

    feed.f64(m.thermal.ambient_celsius);
    feed.f64(m.thermal.die_capacitance);
    feed.f64(m.thermal.die_to_package);
    feed.f64(m.thermal.hotspot_capacitance);
    feed.f64(m.thermal.hotspot_to_die);
    feed.f64(m.thermal.hotspot_power_fraction);
    feed.f64(m.thermal.die_to_die);
    feed.f64(m.thermal.package_capacitance);
    feed.f64(m.thermal.package_to_heatsink);
    feed.f64(m.thermal.heatsink_capacitance);
    feed.f64(m.thermal.heatsink_to_ambient);

    feed.tag(match m.idle_mode {
        IdleMode::C1e => 0,
        IdleMode::NopLoop => 1,
    });

    match &m.deep_idle {
        None => feed.tag(0),
        Some(deep) => {
            feed.tag(1);
            feed.duration(deep.min_residency);
            feed.duration(deep.extra_resume_penalty);
        }
    }

    match &m.thermal_throttle {
        None => feed.tag(0),
        Some(throttle) => {
            feed.tag(1);
            feed.f64(throttle.trigger_celsius);
            feed.f64(throttle.hysteresis);
            feed.f64(throttle.throttle_duty);
        }
    }

    match &m.thermal_trip {
        None => feed.tag(0),
        Some(trip) => {
            feed.tag(1);
            feed.f64(trip.critical_celsius);
            feed.f64(trip.release_celsius);
            feed.f64(trip.trip_duty);
            feed.duration(trip.min_hold);
        }
    }

    feed.tag(m.per_core_dvfs as u8);
}

fn feed_workload(feed: &mut KeyFeed, workload: SaturatingWorkload) {
    match workload {
        SaturatingWorkload::CpuBurn => feed.tag(0),
        SaturatingWorkload::Spec(bench) => {
            feed.tag(1);
            feed.tag(match bench {
                SpecBenchmark::Calculix => 0,
                SpecBenchmark::Namd => 1,
                SpecBenchmark::DealII => 2,
                SpecBenchmark::Bzip2 => 3,
                SpecBenchmark::Gcc => 4,
                SpecBenchmark::Astar => 5,
            });
        }
    }
}

/// Explicit byte serialization of a [`MachineConfig`]: the exact
/// field-by-field encoding the warm-prefix cache key is built over.
/// Public so downstream identities that must distinguish any two
/// configurations the cache would distinguish (the fleet journal
/// fingerprint) can embed the same bytes instead of growing a second,
/// independently-maintained walk.
pub fn machine_config_bytes(machine: &MachineConfig) -> Vec<u8> {
    let mut feed = KeyFeed::new();
    feed_machine(&mut feed, machine);
    feed.0
}

/// The cache key of a warm prefix: FNV-1a64 (the supervisor's fingerprint
/// hash) over an explicit field-by-field byte serialization of everything
/// the prefix depends on. The seed is deliberately absent — the unactuated
/// prefix draws no randomness — which is exactly what lets a whole
/// seed-varied grid share one snapshot.
pub(crate) fn warm_key(
    machine: &MachineConfig,
    workload: SaturatingWorkload,
    warmup: SimDuration,
) -> u64 {
    let mut feed = KeyFeed::new();
    feed_machine(&mut feed, machine);
    feed_workload(&mut feed, workload);
    feed.duration(warmup);
    fnv1a64(&feed.0)
}

/// Returns a system warmed to the end of its prefix: a fork of the cached
/// snapshot under `key`, or the result of `build` (cached for next time)
/// on a miss. With the cache disabled, always builds and never stores.
pub(crate) fn warmed(key: u64, build: impl FnOnce() -> System) -> System {
    if !enabled() {
        WARMUPS_PAID.fetch_add(1, Ordering::Relaxed);
        return build();
    }
    let hit = CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let pos = cache.iter().position(|(k, _)| *k == key)?;
        // Move the entry to the back: eviction takes the front (least
        // recently used).
        let entry = cache.remove(pos);
        let fork = entry.1.fork();
        cache.push(entry);
        Some(fork)
    });
    if let Some(system) = hit {
        FORKS_SERVED.fetch_add(1, Ordering::Relaxed);
        return system;
    }
    let system = build();
    WARMUPS_PAID.fetch_add(1, Ordering::Relaxed);
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() >= CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, system.snapshot()));
    });
    system
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    use dimetrodon_machine::Machine;

    /// The enable flag and counters are process-global; serialise the
    /// tests that touch them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn tiny_system() -> System {
        let machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
        System::new(machine)
    }

    #[test]
    fn keys_separate_every_prefix_ingredient() {
        let base = warm_key(
            &MachineConfig::xeon_e5520(),
            SaturatingWorkload::CpuBurn,
            SimDuration::from_secs(25),
        );
        assert_eq!(
            base,
            warm_key(
                &MachineConfig::xeon_e5520(),
                SaturatingWorkload::CpuBurn,
                SimDuration::from_secs(25),
            ),
            "equal ingredients must key equal"
        );
        assert_ne!(
            base,
            warm_key(
                &MachineConfig::xeon_e5520(),
                SaturatingWorkload::CpuBurn,
                SimDuration::from_secs(26),
            ),
            "warmup length must separate keys"
        );
        assert_ne!(
            base,
            warm_key(
                &MachineConfig::xeon_e5520_nop_idle(),
                SaturatingWorkload::CpuBurn,
                SimDuration::from_secs(25),
            ),
            "machine config must separate keys"
        );
    }

    #[test]
    fn keys_distinguish_sign_zero() {
        // A Debug-formatted key is at the mercy of float formatting; the
        // byte key must see the exact bit pattern, so configs differing
        // only in the sign of a zero field key differently.
        let mut positive = MachineConfig::xeon_e5520();
        let mut negative = positive.clone();
        positive.package_power.uncore = 0.0;
        negative.package_power.uncore = -0.0;
        let workload = SaturatingWorkload::CpuBurn;
        let warmup = SimDuration::from_secs(25);
        assert_ne!(
            warm_key(&positive, workload, warmup),
            warm_key(&negative, workload, warmup),
            "-0.0 and 0.0 are distinct prefixes and must key distinctly"
        );
    }

    #[test]
    fn keys_distinguish_option_presence_and_payload() {
        // Regression for the Debug-keying hazard the explicit walk fixes:
        // a field that is present-vs-absent (or differs only inside the
        // payload) must always move the key.
        use dimetrodon_machine::DeepIdleConfig;
        let base = MachineConfig::xeon_e5520();
        let mut with_deep = base.clone();
        with_deep.deep_idle = Some(DeepIdleConfig {
            min_residency: SimDuration::from_millis(5),
            extra_resume_penalty: SimDuration::from_micros(10),
        });
        let mut with_longer_residency = with_deep.clone();
        with_longer_residency.deep_idle = Some(DeepIdleConfig {
            min_residency: SimDuration::from_millis(6),
            extra_resume_penalty: SimDuration::from_micros(10),
        });
        let workload = SaturatingWorkload::CpuBurn;
        let warmup = SimDuration::from_secs(25);
        let k_base = warm_key(&base, workload, warmup);
        let k_deep = warm_key(&with_deep, workload, warmup);
        let k_longer = warm_key(&with_longer_residency, workload, warmup);
        assert_ne!(k_base, k_deep, "Option presence must move the key");
        assert_ne!(k_deep, k_longer, "Option payload must move the key");
    }

    #[test]
    fn keys_distinguish_workload_and_flag_fields() {
        let base = MachineConfig::xeon_e5520();
        let mut per_core = base.clone();
        per_core.per_core_dvfs = true;
        let warmup = SimDuration::from_secs(25);
        assert_ne!(
            warm_key(&base, SaturatingWorkload::CpuBurn, warmup),
            warm_key(&per_core, SaturatingWorkload::CpuBurn, warmup),
        );
        assert_ne!(
            warm_key(&base, SaturatingWorkload::CpuBurn, warmup),
            warm_key(&base, SaturatingWorkload::Spec(SpecBenchmark::Gcc), warmup),
        );
        assert_ne!(
            warm_key(&base, SaturatingWorkload::Spec(SpecBenchmark::Gcc), warmup),
            warm_key(&base, SaturatingWorkload::Spec(SpecBenchmark::Astar), warmup),
        );
    }

    #[test]
    fn cache_pays_once_and_forks_after() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        let mut builds = 0;
        for _ in 0..4 {
            let _system = warmed(0xABCD, || {
                builds += 1;
                tiny_system()
            });
        }
        assert_eq!(builds, 1, "one warmup for the whole grid");
        assert_eq!(
            stats(),
            SnapshotStats {
                warmups_paid: 1,
                forks_served: 3
            }
        );
        reset();
    }

    #[test]
    fn disabled_cache_always_builds() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        let mut builds = 0;
        for _ in 0..3 {
            let _system = warmed(0xEF01, || {
                builds += 1;
                tiny_system()
            });
        }
        set_enabled(true);
        assert_eq!(builds, 3, "disabled cache must recompute every prefix");
        assert_eq!(stats().forks_served, 0);
        reset();
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        // Fill past capacity, then revisit the first key: it must have
        // been evicted and so must rebuild.
        for key in 0..=CACHE_CAP as u64 {
            warmed(key, tiny_system);
        }
        let mut rebuilt = false;
        warmed(0, || {
            rebuilt = true;
            tiny_system()
        });
        assert!(rebuilt, "oldest entry should have been evicted");
        reset();
    }
}
