//! Warm-prefix sharing for parameter sweeps.
//!
//! Every point of a (p, L) grid simulates the same thing for most of its
//! run: the machine warming from idle under the unactuated workload,
//! before the point's controller parameters matter at all. With a
//! non-zero [`RunConfig::warmup`](crate::RunConfig::warmup) the runner
//! routes that prefix through this cache: the first point with a given
//! (machine, workload, warmup) triple builds the system, drives it to the
//! end of the prefix, and deposits a [`SystemSnapshot`]; every later
//! point forks the snapshot instead of recomputing the prefix. A grid of
//! N points pays one warmup and forks N times.
//!
//! # Why this cannot change results
//!
//! * The prefix runs under the null hook, which draws no randomness, so
//!   it is a pure function of the cache key — the per-point *seed* only
//!   feeds the policy RNG, which does not exist until actuation attaches
//!   after the prefix.
//! * A fork is a deep copy of all mutable simulation state (event queue
//!   ordering included); resuming it is bit-identical to continuing the
//!   original, which the harness property tests assert at every worker
//!   count.
//!
//! Consequently a cache hit, a cache miss, and a disabled cache
//! ([`set_enabled`]`(false)`, the CLI's `--no-snapshot`) all produce the
//! same bytes; the escape hatch exists for timing comparisons and
//! paranoia, not correctness.
//!
//! # Threading
//!
//! [`System`] holds `Rc` handles and cannot cross threads, so the cache
//! is thread-local: each sweep worker warms its own copy and amortises it
//! over the points its claim loop processes. The hit/miss counters are
//! global, so the orchestrating thread can report fleet-wide reuse.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dimetrodon_machine::MachineConfig;
use dimetrodon_sched::{System, SystemSnapshot};
use dimetrodon_sim_core::SimDuration;

use crate::runner::SaturatingWorkload;
use crate::supervise::fnv1a64;

/// Globally enables or disables warm-prefix reuse (the `--no-snapshot`
/// flag). Disabled, every run recomputes its prefix — same results,
/// cold-path timing.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Warm prefixes actually simulated (cache misses plus disabled-cache
/// runs).
static WARMUPS_PAID: AtomicU64 = AtomicU64::new(0);

/// Runs served by forking a cached prefix.
static FORKS_SERVED: AtomicU64 = AtomicU64::new(0);

/// Distinct warm prefixes a single worker keeps live. Sweeps iterate one
/// or two (machine, workload) combinations at a time; eight covers every
/// current experiment with room to spare while bounding memory.
const CACHE_CAP: usize = 8;

thread_local! {
    /// Per-worker snapshot store, most recently used last.
    static CACHE: RefCell<Vec<(u64, SystemSnapshot)>> = const { RefCell::new(Vec::new()) };
}

/// Enables or disables warm-prefix reuse for every subsequent run.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether warm-prefix reuse is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the calling thread's snapshot store and zeroes the global
/// reuse counters. Benchmarks call this per iteration so each iteration
/// honestly pays its one warmup.
pub fn reset() {
    CACHE.with(|cache| cache.borrow_mut().clear());
    WARMUPS_PAID.store(0, Ordering::Relaxed);
    FORKS_SERVED.store(0, Ordering::Relaxed);
}

/// Reuse counters since the last [`reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Warm prefixes actually simulated.
    pub warmups_paid: u64,
    /// Runs served by forking a cached prefix.
    pub forks_served: u64,
}

/// Reads the global reuse counters.
pub fn stats() -> SnapshotStats {
    SnapshotStats {
        warmups_paid: WARMUPS_PAID.load(Ordering::Relaxed),
        forks_served: FORKS_SERVED.load(Ordering::Relaxed),
    }
}

/// The cache key of a warm prefix: FNV-1a64 (the supervisor's fingerprint
/// hash) over the exhaustive `Debug` rendering of everything the prefix
/// depends on. The seed is deliberately absent — the unactuated prefix
/// draws no randomness — which is exactly what lets a whole seed-varied
/// grid share one snapshot.
pub(crate) fn warm_key(
    machine: &MachineConfig,
    workload: SaturatingWorkload,
    warmup: SimDuration,
) -> u64 {
    fnv1a64(format!("{machine:?}|{workload:?}|{warmup:?}").as_bytes())
}

/// Returns a system warmed to the end of its prefix: a fork of the cached
/// snapshot under `key`, or the result of `build` (cached for next time)
/// on a miss. With the cache disabled, always builds and never stores.
pub(crate) fn warmed(key: u64, build: impl FnOnce() -> System) -> System {
    if !enabled() {
        WARMUPS_PAID.fetch_add(1, Ordering::Relaxed);
        return build();
    }
    let hit = CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let pos = cache.iter().position(|(k, _)| *k == key)?;
        // Move the entry to the back: eviction takes the front (least
        // recently used).
        let entry = cache.remove(pos);
        let fork = entry.1.fork();
        cache.push(entry);
        Some(fork)
    });
    if let Some(system) = hit {
        FORKS_SERVED.fetch_add(1, Ordering::Relaxed);
        return system;
    }
    let system = build();
    WARMUPS_PAID.fetch_add(1, Ordering::Relaxed);
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() >= CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, system.snapshot()));
    });
    system
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    use dimetrodon_machine::Machine;

    /// The enable flag and counters are process-global; serialise the
    /// tests that touch them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn tiny_system() -> System {
        let machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
        System::new(machine)
    }

    #[test]
    fn keys_separate_every_prefix_ingredient() {
        let base = warm_key(
            &MachineConfig::xeon_e5520(),
            SaturatingWorkload::CpuBurn,
            SimDuration::from_secs(25),
        );
        assert_eq!(
            base,
            warm_key(
                &MachineConfig::xeon_e5520(),
                SaturatingWorkload::CpuBurn,
                SimDuration::from_secs(25),
            ),
            "equal ingredients must key equal"
        );
        assert_ne!(
            base,
            warm_key(
                &MachineConfig::xeon_e5520(),
                SaturatingWorkload::CpuBurn,
                SimDuration::from_secs(26),
            ),
            "warmup length must separate keys"
        );
        assert_ne!(
            base,
            warm_key(
                &MachineConfig::xeon_e5520_nop_idle(),
                SaturatingWorkload::CpuBurn,
                SimDuration::from_secs(25),
            ),
            "machine config must separate keys"
        );
    }

    #[test]
    fn cache_pays_once_and_forks_after() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        let mut builds = 0;
        for _ in 0..4 {
            let _system = warmed(0xABCD, || {
                builds += 1;
                tiny_system()
            });
        }
        assert_eq!(builds, 1, "one warmup for the whole grid");
        assert_eq!(
            stats(),
            SnapshotStats {
                warmups_paid: 1,
                forks_served: 3
            }
        );
        reset();
    }

    #[test]
    fn disabled_cache_always_builds() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        let mut builds = 0;
        for _ in 0..3 {
            let _system = warmed(0xEF01, || {
                builds += 1;
                tiny_system()
            });
        }
        set_enabled(true);
        assert_eq!(builds, 3, "disabled cache must recompute every prefix");
        assert_eq!(stats().forks_served, 0);
        reset();
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        // Fill past capacity, then revisit the first key: it must have
        // been evicted and so must rebuild.
        for key in 0..=CACHE_CAP as u64 {
            warmed(key, tiny_system);
        }
        let mut rebuilt = false;
        warmed(0, || {
            rebuilt = true;
            tiny_system()
        });
        assert!(rebuilt, "oldest entry should have been evicted");
        reset();
    }
}
