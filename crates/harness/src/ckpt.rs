//! Durable mid-run checkpointing for long single-machine runs.
//!
//! The fleet crate checkpoints *full* state and restores without
//! re-simulating, because everything a [`Fleet`](dimetrodon_fleet) holds
//! is plain data. A [`System`] is not: its threads, scheduler, and hook
//! are trait objects (`Box<dyn ThreadBody>` and friends) with no general
//! byte serialization, so the runner uses the other honest design —
//! **verified deterministic replay**. A checkpoint records the event
//! count, the simulated clock, and the machine model's exact state
//! bytes; restore rebuilds the system from its config (a pure function),
//! replays the recorded number of events through the same
//! pop/advance/dispatch loop, and then *proves* the trajectory matches
//! by comparing the live machine state against the checkpoint bit for
//! bit. Divergence — a changed binary, a perturbed config, cosmic-ray
//! luck — is a typed [`CkptError::StateMismatch`], never a silently
//! different result.
//!
//! The spec is process-global (like [`crate::snapshot`]'s enable flag)
//! because the runner's entry points are called from deep inside sweep
//! workers; it is `None` by default, and every run with it unset is
//! byte-for-byte the plain `run_until` path.

use std::path::PathBuf;
use std::sync::Mutex;

use dimetrodon_ckpt::{fnv1a64, CheckpointStore, CkptError, Dec, Enc};
use dimetrodon_machine::MachineConfig;
use dimetrodon_sched::System;
use dimetrodon_sim_core::SimTime;

use crate::runner::{Actuation, RunConfig, SaturatingWorkload};

/// Default events between checkpoints when the caller does not say.
pub const DEFAULT_CHECKPOINT_EVERY_EVENTS: u64 = 250_000;

/// Default checkpoint files retained per run.
pub const DEFAULT_CHECKPOINT_KEEP: usize = 2;

/// Where and how often single-machine runs checkpoint, and whether they
/// first try to restore (verify-replay) from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunCheckpointSpec {
    /// Directory holding the checkpoint files (created on first save).
    pub dir: PathBuf,
    /// Events between checkpoints; `0` disables periodic saving.
    pub every_events: u64,
    /// Checkpoint files retained per run store (min 1).
    pub keep: usize,
    /// Whether to verify-replay the newest verifiable checkpoint before
    /// continuing. With no checkpoint on disk the run starts fresh.
    pub restore: bool,
}

impl RunCheckpointSpec {
    /// A spec with the default cadence and retention, restore off.
    pub fn new(dir: PathBuf) -> RunCheckpointSpec {
        RunCheckpointSpec {
            dir,
            every_events: DEFAULT_CHECKPOINT_EVERY_EVENTS,
            keep: DEFAULT_CHECKPOINT_KEEP,
            restore: false,
        }
    }
}

/// The installed spec; `None` (the default) means plain, checkpoint-free
/// runs.
static SPEC: Mutex<Option<RunCheckpointSpec>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the process-global checkpoint
/// spec consulted by every subsequent long run.
pub fn install(spec: Option<RunCheckpointSpec>) {
    *SPEC.lock().unwrap_or_else(|e| e.into_inner()) = spec;
}

/// The currently installed spec, if any.
pub fn installed() -> Option<RunCheckpointSpec> {
    SPEC.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// The checkpoint identity of a characterisation run: FNV-1a64 over an
/// explicit byte serialization of everything the run's trajectory is a
/// function of — the machine configuration (via the warm-prefix cache's
/// exhaustive field walk), the workload, the actuation, and the run
/// timing/seed. Two runs that could diverge must key differently, so a
/// checkpoint can never be restored into the wrong run.
pub fn run_key(
    machine_config: &MachineConfig,
    workload: SaturatingWorkload,
    actuation: Actuation,
    config: &RunConfig,
) -> u64 {
    let mut enc = Enc::new();
    enc.bytes(&crate::snapshot::machine_config_bytes(machine_config));
    match workload {
        SaturatingWorkload::CpuBurn => enc.u8(0),
        SaturatingWorkload::Spec(bench) => {
            enc.u8(1);
            enc.bytes(bench.name().as_bytes());
        }
    }
    match actuation {
        Actuation::None => enc.u8(0),
        Actuation::Injection { params, model } => {
            enc.u8(1);
            enc.f64(params.p());
            enc.u64(params.quantum().as_nanos());
            enc.u8(match model {
                dimetrodon::InjectionModel::Probabilistic => 0,
                dimetrodon::InjectionModel::Deterministic => 1,
            });
        }
        Actuation::Vfs { pstate } => {
            enc.u8(2);
            enc.u64(pstate.0 as u64);
        }
        Actuation::Tcc { duty } => {
            enc.u8(3);
            enc.f64(duty);
        }
    }
    enc.u64(config.duration.as_nanos());
    enc.u64(config.measure_window.as_nanos());
    enc.u64(config.warmup.as_nanos());
    enc.u64(config.seed);
    fnv1a64(&enc.into_bytes())
}

/// What [`run_until_checkpointed`] did, for logging and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunCkptReport {
    /// Events replayed and verified against a restored checkpoint.
    pub verified_events: u64,
    /// Checkpoints written during this span.
    pub checkpoints_written: u64,
}

/// One checkpoint's bytes: the event count, the simulated clock, and
/// the machine model's exact state.
fn frames(events: u64, system: &System) -> Vec<Vec<u8>> {
    let mut meta = Enc::new();
    meta.u64(events);
    meta.u64(system.now().as_nanos());
    let mut machine = Enc::new();
    system.machine().snapshot().encode_state(&mut machine);
    vec![meta.into_bytes(), machine.into_bytes()]
}

/// Drives `system` to `deadline` exactly like
/// [`System::run_until`](dimetrodon_sched::System::run_until), but in
/// event-count chunks with a durable checkpoint after each chunk, under
/// `spec`. `key` must identify everything the run is a function of
/// (machine config, workload, actuation, run config); `label` names the
/// checkpoint files.
///
/// With `spec.restore` set and a verifiable checkpoint on disk, the
/// span starts by replaying the recorded event count and comparing the
/// machine state bit-for-bit against the checkpoint.
///
/// # Errors
///
/// Returns a [`CkptError`] from the restore path only: checkpoint files
/// exist but none verifies, or the replayed trajectory does not
/// reproduce the checkpointed machine state
/// ([`CkptError::StateMismatch`]). Save failures degrade to a stderr
/// warning and disable further saving.
pub fn run_until_checkpointed(
    system: &mut System,
    deadline: SimTime,
    key: u64,
    label: &str,
    spec: &RunCheckpointSpec,
) -> Result<RunCkptReport, CkptError> {
    let store = CheckpointStore::new(&spec.dir, &format!("run-{label}"), key, spec.keep);
    let mut report = RunCkptReport::default();
    let mut events_done: u64 = 0;

    if spec.restore {
        if let Some(loaded) = store.load_latest()? {
            if loaded.skipped > 0 {
                eprintln!(
                    "warning: skipped {} corrupt checkpoint(s), verifying from event {}",
                    loaded.skipped, loaded.seq
                );
            }
            if loaded.frames.len() != 2 {
                return Err(CkptError::Malformed(format!(
                    "run checkpoint holds {} frames, expected 2",
                    loaded.frames.len()
                )));
            }
            let mut meta = Dec::new(&loaded.frames[0]);
            let events = meta.u64()?;
            let now_nanos = meta.u64()?;
            meta.finish()?;
            if events != loaded.seq {
                return Err(CkptError::Malformed(format!(
                    "checkpoint seq {} disagrees with recorded event count {events}",
                    loaded.seq
                )));
            }
            let replayed = system.run_events(events, deadline);
            if replayed != events || system.now().as_nanos() != now_nanos {
                return Err(CkptError::StateMismatch);
            }
            let mut live = Enc::new();
            system.machine().snapshot().encode_state(&mut live);
            if live.into_bytes() != loaded.frames[1] {
                return Err(CkptError::StateMismatch);
            }
            events_done = events;
            report.verified_events = events;
        }
    }

    let mut saving = spec.every_events > 0;
    loop {
        let n = system.run_events(spec.every_events.max(1), deadline);
        events_done += n;
        if n < spec.every_events.max(1) {
            break;
        }
        if saving {
            match store.save(events_done, &frames(events_done, system)) {
                Ok(()) => report.checkpoints_written += 1,
                Err(err) => {
                    eprintln!("warning: checkpoint save failed ({err}); checkpointing disabled");
                    saving = false;
                }
            }
        }
    }
    // The queue holds nothing at or before the deadline; this is
    // run_until's closing advance (plus its series reservation, now a
    // no-op for the drained span).
    system.run_until(deadline);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimetrodon_machine::{Machine, MachineConfig};
    use dimetrodon_sched::{ThreadKind};
    use dimetrodon_sim_core::SimDuration;
    use dimetrodon_workload::CpuBurn;

    fn build() -> System {
        let mut machine = Machine::new(MachineConfig::xeon_e5520()).expect("preset");
        machine.settle_idle();
        let mut system = System::new(machine);
        for _ in 0..machine_cores() {
            system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite()));
        }
        system
    }

    fn machine_cores() -> usize {
        MachineConfig::xeon_e5520().num_cores
    }

    fn spec_in(tag: &str) -> RunCheckpointSpec {
        let dir = std::env::temp_dir().join(format!("run-ckpt-test-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut spec = RunCheckpointSpec::new(dir);
        spec.every_events = 40;
        spec
    }

    fn machine_bytes(system: &System) -> Vec<u8> {
        let mut enc = Enc::new();
        system.machine().snapshot().encode_state(&mut enc);
        enc.into_bytes()
    }

    #[test]
    fn chunked_run_is_bit_identical_to_run_until() {
        let deadline = SimTime::ZERO + SimDuration::from_secs(5);
        let mut plain = build();
        plain.run_until(deadline);

        let spec = spec_in("chunked");
        let mut chunked = build();
        let report =
            run_until_checkpointed(&mut chunked, deadline, 0xC0FFEE, "test", &spec).expect("run");
        assert!(report.checkpoints_written > 0, "span long enough to checkpoint");
        assert_eq!(machine_bytes(&plain), machine_bytes(&chunked));
        assert_eq!(plain.now(), chunked.now());
        std::fs::remove_dir_all(&spec.dir).ok();
    }

    #[test]
    fn restore_verifies_replay_and_continues_identically() {
        let deadline = SimTime::ZERO + SimDuration::from_secs(5);
        let mut plain = build();
        plain.run_until(deadline);

        // First attempt "dies" mid-run, leaving checkpoints behind.
        let spec = spec_in("restore");
        {
            let mut system = build();
            let half = SimTime::ZERO + SimDuration::from_millis(2_500);
            run_until_checkpointed(&mut system, half, 0xBEEF, "test", &spec).expect("first run");
        }

        let mut restore = spec.clone();
        restore.restore = true;
        let mut system = build();
        let report =
            run_until_checkpointed(&mut system, deadline, 0xBEEF, "test", &restore).expect("restore");
        assert!(report.verified_events > 0, "restore verified a checkpoint");
        assert_eq!(machine_bytes(&plain), machine_bytes(&system));
        std::fs::remove_dir_all(&spec.dir).ok();
    }

    #[test]
    fn replay_divergence_is_a_typed_state_mismatch() {
        let spec = spec_in("diverge");
        let deadline = SimTime::ZERO + SimDuration::from_secs(2);
        {
            let mut system = build();
            run_until_checkpointed(&mut system, deadline, 0xD1CE, "test", &spec).expect("run");
        }
        // Restore into a *different* system (hotter machine): the replay
        // cannot reproduce the checkpointed machine bytes.
        let mut restore = spec.clone();
        restore.restore = true;
        let mut machine =
            Machine::new(MachineConfig::xeon_e5520().with_fan_speed(0.5)).expect("preset");
        machine.settle_idle();
        let mut system = System::new(machine);
        for _ in 0..machine_cores() {
            system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite()));
        }
        let err = run_until_checkpointed(
            &mut system,
            SimTime::ZERO + SimDuration::from_secs(4),
            0xD1CE,
            "test",
            &restore,
        )
        .expect_err("divergent replay must fail");
        assert!(matches!(err, CkptError::StateMismatch), "got {err}");
        std::fs::remove_dir_all(&spec.dir).ok();
    }

    #[test]
    fn no_files_means_fresh_start() {
        let spec = spec_in("fresh");
        let mut restore = spec.clone();
        restore.restore = true;
        let mut system = build();
        let report = run_until_checkpointed(
            &mut system,
            SimTime::ZERO + SimDuration::from_secs(1),
            0xFEED,
            "test",
            &restore,
        )
        .expect("fresh start");
        assert_eq!(report.verified_events, 0);
        std::fs::remove_dir_all(&spec.dir).ok();
    }
}
