//! The common experiment runner: build a system, apply an actuation,
//! drive a workload, and take the paper's measurements.
//!
//! Measurement conventions follow §3.2–3.4:
//!
//! * **Temperature** is the mean core temperature averaged over the last
//!   `measure_window` of the run (default: last 30 s of 300 s).
//! * **Temperature reduction** is relative to the idle temperature:
//!   `(T_unconstrained − T_policy) / (T_unconstrained − T_idle)`.
//! * **Throughput** for saturating workloads is executed CPU time per
//!   core-second; **throughput reduction** is relative to the
//!   unconstrained run of the same workload.

use dimetrodon::{DimetrodonHook, InjectionModel, InjectionParams, PolicyHandle};
use dimetrodon_machine::{Machine, MachineConfig};
use dimetrodon_power::PStateId;
use dimetrodon_sched::{System, ThreadId, ThreadKind};
use dimetrodon_sim_core::{SimDuration, SimTime, TimeSeries};
use dimetrodon_workload::{CpuBurn, SpecBenchmark};

/// Which thermal-management mechanism a run applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Actuation {
    /// Unconstrained execution (race-to-idle).
    None,
    /// Dimetrodon idle-cycle injection with the given parameters.
    Injection {
        /// The `(p, L)` policy.
        params: InjectionParams,
        /// Probabilistic (paper) or deterministic (ablation) drawing.
        model: InjectionModel,
    },
    /// Chip-wide voltage/frequency scaling pinned at a P-state.
    Vfs {
        /// The operating point, 0 = fastest.
        pstate: PStateId,
    },
    /// `p4tcc`-style clock duty cycling.
    Tcc {
        /// Clock duty in `(0, 1)`.
        duty: f64,
    },
}

/// Timing parameters of a characterisation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Total simulated run length (the paper: 300 s).
    pub duration: SimDuration,
    /// Tail window over which temperature is averaged (the paper: 30 s).
    pub measure_window: SimDuration,
    /// Unactuated warm-start prefix. For the first `warmup` of the run the
    /// workload executes with no actuation installed; the policy under
    /// test attaches only when the prefix ends. Because that prefix is a
    /// pure function of (machine, workload, warmup) — the null hook draws
    /// no randomness, so the seed plays no part until actuation attaches —
    /// every point of a parameter grid shares it, and the sweep engine
    /// pays for it once and forks (see [`crate::snapshot`]). `ZERO`
    /// (the default everywhere, and what [`paper`](RunConfig::paper) and
    /// [`quick`](RunConfig::quick) produce) preserves the original
    /// semantics bit for bit: actuation installed before the first
    /// dispatch.
    pub warmup: SimDuration,
    /// Simulation seed.
    pub seed: u64,
}

impl RunConfig {
    /// The paper's 300 s / 30 s setup.
    pub fn paper(seed: u64) -> Self {
        RunConfig {
            duration: SimDuration::from_secs(300),
            measure_window: SimDuration::from_secs(30),
            warmup: SimDuration::ZERO,
            seed,
        }
    }

    /// A shortened setup for tests: long enough to approach steady state
    /// on the calibrated machine (global time constant ≈ 60 s) without
    /// the full five minutes.
    pub fn quick(seed: u64) -> Self {
        RunConfig {
            duration: SimDuration::from_secs(150),
            measure_window: SimDuration::from_secs(20),
            warmup: SimDuration::ZERO,
            seed,
        }
    }

    /// This config with a warm-start prefix of `warmup`.
    ///
    /// # Panics
    ///
    /// Panics if `warmup` is not shorter than the run duration.
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        assert!(
            warmup < self.duration,
            "warmup ({warmup}) must be shorter than the run ({})",
            self.duration
        );
        self.warmup = warmup;
        self
    }

    fn measure_from(&self) -> SimTime {
        SimTime::ZERO + (self.duration - self.measure_window)
    }
}

/// What a characterisation run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Idle (all-cores-idle steady state) mean die temperature, °C.
    pub idle_temp: f64,
    /// Mean core temperature over the tail measurement window, °C.
    pub tail_temp: f64,
    /// Executed CPU time per core-second of run, in `[0, 1]`.
    pub throughput: f64,
    /// The sampled (true, die-bulk) mean-core-temperature series of the
    /// whole run — physical ground truth for diagnostics.
    pub temp_series: TimeSeries,
    /// The observed temperature curve: dispatch-point sensor readings
    /// binned into one-second means — what the paper's monitor plots.
    pub observed_curve: Vec<(f64, f64)>,
    /// Total idle quanta injected.
    pub injected_idles: u64,
}

impl RunOutcome {
    /// Temperature rise over idle, °C.
    pub fn rise_over_idle(&self) -> f64 {
        self.tail_temp - self.idle_temp
    }

    /// The paper's relative temperature reduction versus an unconstrained
    /// run: `(T_unconstrained − T_this) / (T_unconstrained − T_idle)`.
    ///
    /// # Panics
    ///
    /// Panics if the unconstrained run is not hotter than idle.
    pub fn temp_reduction_vs(&self, unconstrained: &RunOutcome) -> f64 {
        let denom = unconstrained.tail_temp - unconstrained.idle_temp;
        assert!(
            denom > 0.0,
            "unconstrained run must rise above idle (rise = {denom})"
        );
        (unconstrained.tail_temp - self.tail_temp) / denom
    }

    /// Throughput reduction versus an unconstrained run, in `[0, 1]`.
    pub fn throughput_reduction_vs(&self, unconstrained: &RunOutcome) -> f64 {
        if unconstrained.throughput <= 0.0 {
            return 0.0;
        }
        (1.0 - self.throughput / unconstrained.throughput).max(0.0)
    }
}

/// Builds a system on the standard test platform with the given actuation
/// installed, returning the system and (for injection runs) the policy
/// handle.
pub fn build_system(actuation: Actuation, seed: u64) -> (System, Option<PolicyHandle>) {
    build_system_on(&MachineConfig::xeon_e5520(), actuation, seed)
}

/// Builds a system on an explicit machine configuration (used by
/// sensitivity and ablation studies that perturb the platform itself).
pub fn build_system_on(
    machine_config: &MachineConfig,
    actuation: Actuation,
    seed: u64,
) -> (System, Option<PolicyHandle>) {
    // simlint::allow(R1): every caller passes a preset or a perturbation of
    // one; an invalid config is a harness bug worth a loud stop.
    let mut machine = Machine::new(machine_config.clone()).expect("machine config is valid");
    machine.settle_idle();
    match actuation {
        Actuation::None => (System::new(machine), None),
        Actuation::Injection { params, model } => {
            let policy = PolicyHandle::new();
            policy.set_global(Some(params));
            let mut system = System::new(machine);
            system.set_hook(Box::new(DimetrodonHook::with_model(
                policy.clone(),
                model,
                seed ^ 0xD13E,
            )));
            (system, Some(policy))
        }
        Actuation::Vfs { pstate } => {
            machine.set_pstate(pstate);
            (System::new(machine), None)
        }
        Actuation::Tcc { duty } => {
            machine.set_tcc_duty(duty);
            (System::new(machine), None)
        }
    }
}

/// Installs `actuation` on an already-running system (the warm-start
/// path: the workload has executed unactuated for the warmup prefix and
/// the policy attaches now). Hook-based actuation takes effect at the
/// next scheduling decision; actuator knobs affect subsequently
/// scheduled work.
fn install_actuation(
    system: &mut System,
    actuation: Actuation,
    seed: u64,
) -> Option<PolicyHandle> {
    match actuation {
        Actuation::None => None,
        Actuation::Injection { params, model } => {
            let policy = PolicyHandle::new();
            policy.set_global(Some(params));
            // Same seed derivation as `build_system_on`, so a (p, L) grid
            // point keeps its per-point RNG stream regardless of when the
            // hook attaches.
            system.set_hook(Box::new(DimetrodonHook::with_model(
                policy.clone(),
                model,
                seed ^ 0xD13E,
            )));
            Some(policy)
        }
        Actuation::Vfs { pstate } => {
            system.machine_mut().set_pstate(pstate);
            None
        }
        Actuation::Tcc { duty } => {
            system.machine_mut().set_tcc_duty(duty);
            None
        }
    }
}

/// The workloads the characterisation runner can drive, one instance per
/// core (the paper "executed four instances of each benchmark in
/// parallel", §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaturatingWorkload {
    /// `cpuburn` (worst case).
    CpuBurn,
    /// A SPEC CPU2006-like profile.
    Spec(SpecBenchmark),
}

impl SaturatingWorkload {
    fn spawn_on(self, system: &mut System) -> Vec<ThreadId> {
        let cores = system.machine().num_cores();
        (0..cores)
            .map(|_| match self {
                SaturatingWorkload::CpuBurn => {
                    system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite()))
                }
                SaturatingWorkload::Spec(bench) => {
                    system.spawn(ThreadKind::User, Box::new(bench.body()))
                }
            })
            .collect()
    }
}

/// Runs the §3.4 characterisation: one saturating workload instance per
/// core under `actuation`, measuring tail temperature and throughput.
pub fn characterize(
    workload: SaturatingWorkload,
    actuation: Actuation,
    config: RunConfig,
) -> RunOutcome {
    characterize_on(&MachineConfig::xeon_e5520(), workload, actuation, config)
}

/// [`characterize`] on an explicit machine configuration.
///
/// With `config.warmup` zero this is the original cold-start run:
/// actuation installed before the first dispatch. With a non-zero warmup
/// the workload first executes unactuated for the prefix, which is shared
/// across grid points through the [`crate::snapshot`] cache: the first
/// point with a given (machine, workload, warmup) pays the prefix, later
/// points fork it. The fork resumes bit-identically to a run that never
/// stopped, so results do not depend on whether the cache was hit (or
/// enabled at all).
pub fn characterize_on(
    machine_config: &MachineConfig,
    workload: SaturatingWorkload,
    actuation: Actuation,
    config: RunConfig,
) -> RunOutcome {
    characterize_core(
        machine_config,
        workload,
        actuation,
        config,
        crate::ckpt::installed().as_ref(),
    )
    .unwrap_or_else(|err| {
        // Only the restore path errors (see `characterize_checkpointed`
        // for the Result-typed entry); inside a sweep worker the panic is
        // quarantined by the supervisor and surfaces as an incident.
        // simlint::allow(R1): deliberate panic — quarantined by the supervisor
        panic!("checkpoint restore failed: {err}")
    })
}

/// [`characterize_on`] under an explicit [`RunCheckpointSpec`]
/// (ignoring the process-global one), with restore failures as typed
/// errors instead of a panic — the CLI's `--restore` path.
///
/// # Errors
///
/// Returns a [`dimetrodon_ckpt::CkptError`] when `spec.restore` is set
/// and checkpoint files exist but none verifies, or the verified replay
/// diverges from the checkpointed state.
pub fn characterize_checkpointed(
    machine_config: &MachineConfig,
    workload: SaturatingWorkload,
    actuation: Actuation,
    config: RunConfig,
    spec: &crate::ckpt::RunCheckpointSpec,
) -> Result<RunOutcome, dimetrodon_ckpt::CkptError> {
    characterize_core(machine_config, workload, actuation, config, Some(spec))
}

fn characterize_core(
    machine_config: &MachineConfig,
    workload: SaturatingWorkload,
    actuation: Actuation,
    config: RunConfig,
    ckpt_spec: Option<&crate::ckpt::RunCheckpointSpec>,
) -> Result<RunOutcome, dimetrodon_ckpt::CkptError> {
    let (mut system, ids) = if config.warmup.is_zero() {
        let (mut system, _policy) = build_system_on(machine_config, actuation, config.seed);
        let ids = workload.spawn_on(&mut system);
        (system, ids)
    } else {
        assert!(
            config.warmup < config.duration,
            "warmup ({}) must be shorter than the run ({})",
            config.warmup,
            config.duration
        );
        let key = crate::snapshot::warm_key(machine_config, workload, config.warmup);
        let mut system = crate::snapshot::warmed(key, || {
            let mut machine = Machine::new(machine_config.clone())
                .expect("machine config is valid"); // simlint::allow(R1): every caller passes a preset or a perturbation of one; an invalid config is a harness bug
            machine.settle_idle();
            let mut system = System::new(machine);
            workload.spawn_on(&mut system);
            system.run_until(SimTime::ZERO + config.warmup);
            system
        });
        install_actuation(&mut system, actuation, config.seed);
        // Thread ids are allocated densely in spawn order, so the fork's
        // ids are exactly what `spawn_on` returned when the prefix was
        // built.
        let ids = system.thread_ids().collect();
        (system, ids)
    };
    let idle_temp = system.machine().idle_temperature();
    let deadline = SimTime::ZERO + config.duration;
    match ckpt_spec {
        Some(spec) => {
            let key = crate::ckpt::run_key(machine_config, workload, actuation, &config);
            let report =
                crate::ckpt::run_until_checkpointed(&mut system, deadline, key, "char", spec)?;
            if report.verified_events > 0 {
                eprintln!(
                    "[restore: verified {} replayed event(s) against the checkpoint]",
                    report.verified_events
                );
            }
        }
        None => system.run_until(deadline),
    }

    // The paper's temperature metric: coretemp reads taken by the
    // monitoring process, which land at scheduling boundaries.
    let tail_temp = system
        .observed_temp_over(config.measure_from())
        // simlint::allow(R1): the run always covers the measure window, so
        // dispatch samples exist; an empty window is a harness bug.
        .expect("run produced dispatch samples");
    let executed: f64 = ids
        .iter()
        .map(|&id| system.thread_stats(id).cpu_executed.as_secs_f64())
        .sum();
    let cores = system.machine().num_cores() as f64;

    // Bin all cores' dispatch readings into one-second means.
    let total_secs = config.duration.as_secs_f64().ceil() as usize + 1;
    let mut sums = vec![0.0f64; total_secs];
    let mut counts = vec![0u32; total_secs];
    for core in system.machine().core_ids().collect::<Vec<_>>() {
        for (t, v) in system.dispatch_temp_series(core).iter() {
            let bucket = t.as_secs_f64() as usize;
            if bucket < total_secs {
                sums[bucket] += v;
                counts[bucket] += 1;
            }
        }
    }
    let observed_curve = sums
        .iter()
        .zip(&counts)
        .enumerate()
        .filter(|(_, (_, &c))| c > 0)
        .map(|(sec, (&s, &c))| (sec as f64, s / c as f64))
        .collect();

    Ok(RunOutcome {
        idle_temp,
        tail_temp,
        throughput: executed / (cores * config.duration.as_secs_f64()),
        temp_series: system.mean_temp_series().clone(),
        observed_curve,
        injected_idles: system.total_injected_idles(),
    })
}

/// A full trade-off measurement: runs the workload unconstrained and
/// under `actuation`, returning `(temp_reduction, throughput_reduction)`.
pub fn tradeoff(
    workload: SaturatingWorkload,
    actuation: Actuation,
    config: RunConfig,
) -> (f64, f64) {
    let base = characterize(workload, Actuation::None, config);
    let run = characterize(workload, actuation, config);
    (
        run.temp_reduction_vs(&base),
        run.throughput_reduction_vs(&base),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunConfig {
        RunConfig {
            duration: SimDuration::from_secs(100),
            measure_window: SimDuration::from_secs(15),
            warmup: SimDuration::ZERO,
            seed: 1,
        }
    }

    #[test]
    fn unconstrained_cpuburn_saturates() {
        let out = characterize(SaturatingWorkload::CpuBurn, Actuation::None, quick());
        assert!(out.throughput > 0.99, "throughput {}", out.throughput);
        assert!(out.rise_over_idle() > 10.0, "rise {}", out.rise_over_idle());
        assert_eq!(out.injected_idles, 0);
    }

    #[test]
    fn injection_reduces_temperature_and_throughput() {
        let base = characterize(SaturatingWorkload::CpuBurn, Actuation::None, quick());
        let inj = characterize(
            SaturatingWorkload::CpuBurn,
            Actuation::Injection {
                params: InjectionParams::new(0.5, SimDuration::from_millis(100)),
                model: InjectionModel::Probabilistic,
            },
            quick(),
        );
        let temp_red = inj.temp_reduction_vs(&base);
        let thr_red = inj.throughput_reduction_vs(&base);
        assert!((0.2..0.9).contains(&temp_red), "temp reduction {temp_red}");
        assert!((0.3..0.65).contains(&thr_red), "throughput reduction {thr_red}");
        assert!(inj.injected_idles > 100);
    }

    #[test]
    fn vfs_reduces_both_superlinearly() {
        let base = characterize(SaturatingWorkload::CpuBurn, Actuation::None, quick());
        let vfs = characterize(
            SaturatingWorkload::CpuBurn,
            Actuation::Vfs { pstate: PStateId(5) },
            quick(),
        );
        let thr_red = vfs.throughput_reduction_vs(&base);
        let temp_red = vfs.temp_reduction_vs(&base);
        // Speed drops to 1600/2266 => ~29% throughput reduction.
        assert!((0.25..0.33).contains(&thr_red), "thr {thr_red}");
        // The quadratic power benefit: temperature reduction well above
        // the throughput cost (paper: ~50% at ~30%).
        assert!(temp_red > thr_red, "temp {temp_red} vs thr {thr_red}");
    }

    #[test]
    fn tcc_is_worse_than_one_to_one() {
        let base = characterize(SaturatingWorkload::CpuBurn, Actuation::None, quick());
        let tcc = characterize(
            SaturatingWorkload::CpuBurn,
            Actuation::Tcc { duty: 0.5 },
            quick(),
        );
        let thr_red = tcc.throughput_reduction_vs(&base);
        let temp_red = tcc.temp_reduction_vs(&base);
        assert!(
            temp_red < thr_red,
            "p4tcc should be sub-1:1: temp {temp_red} vs thr {thr_red}"
        );
    }

    #[test]
    fn spec_profiles_run_cooler_than_cpuburn() {
        let burn = characterize(SaturatingWorkload::CpuBurn, Actuation::None, quick());
        let astar = characterize(
            SaturatingWorkload::Spec(SpecBenchmark::Astar),
            Actuation::None,
            quick(),
        );
        assert!(astar.rise_over_idle() < burn.rise_over_idle() * 0.85);
    }

    #[test]
    fn relative_results_are_fan_speed_invariant() {
        // §3.4: absolute temperatures move with fan speed, but the
        // *relative* trade-off metrics barely do — which is why the paper
        // could fix fans at full without loss of generality.
        let reduction_at = |fan: f64, seed: u64| {
            let machine_config = MachineConfig::xeon_e5520().with_fan_speed(fan);
            let cfg = RunConfig {
                duration: SimDuration::from_secs(120),
                measure_window: SimDuration::from_secs(20),
                warmup: SimDuration::ZERO,
                seed,
            };
            let base = characterize_on(
                &machine_config,
                SaturatingWorkload::CpuBurn,
                Actuation::None,
                cfg,
            );
            let run = characterize_on(
                &machine_config,
                SaturatingWorkload::CpuBurn,
                Actuation::Injection {
                    params: InjectionParams::new(0.5, SimDuration::from_millis(25)),
                    model: InjectionModel::Probabilistic,
                },
                cfg,
            );
            (run.temp_reduction_vs(&base), base.rise_over_idle())
        };
        let (full_fan, full_rise) = reduction_at(1.0, 5);
        let (half_fan, half_rise) = reduction_at(0.6, 6);
        // Absolute rise changes materially...
        assert!(half_rise > full_rise + 1.0, "{half_rise} vs {full_rise}");
        // ...but the relative reduction metric is nearly unchanged.
        assert!(
            (full_fan - half_fan).abs() < 0.06,
            "fan invariance violated: {full_fan} vs {half_fan}"
        );
    }

    #[test]
    fn run_config_presets() {
        let p = RunConfig::paper(7);
        assert_eq!(p.duration, SimDuration::from_secs(300));
        assert_eq!(p.measure_window, SimDuration::from_secs(30));
        assert_eq!(p.seed, 7);
        assert!(RunConfig::quick(7).duration < p.duration);
    }
}
