//! Experiment harness for the Dimetrodon reproduction.
//!
//! This crate turns the workspace's substrates — machine, scheduler,
//! policies, workloads — into the paper's evaluation: a common
//! characterisation runner implementing §3.2–3.4's measurement
//! conventions, and one [`experiments`] module per table and figure. The
//! `dimetrodon-bench` crate's binaries print each experiment as a table;
//! integration tests assert the qualitative *shapes* the paper reports
//! (who wins where, crossovers, convexity) rather than absolute watts or
//! degrees.
//!
//! # Examples
//!
//! Reproduce one point of Figure 3's sweep:
//!
//! ```no_run
//! use dimetrodon::{InjectionModel, InjectionParams};
//! use dimetrodon_harness::{characterize, Actuation, RunConfig, SaturatingWorkload};
//! use dimetrodon_sim_core::SimDuration;
//!
//! let config = RunConfig::paper(42);
//! let base = characterize(SaturatingWorkload::CpuBurn, Actuation::None, config);
//! let run = characterize(
//!     SaturatingWorkload::CpuBurn,
//!     Actuation::Injection {
//!         params: InjectionParams::new(0.5, SimDuration::from_millis(10)),
//!         model: InjectionModel::Probabilistic,
//!     },
//!     config,
//! );
//! println!(
//!     "temp reduction {:.1}% for throughput reduction {:.1}%",
//!     run.temp_reduction_vs(&base) * 100.0,
//!     run.throughput_reduction_vs(&base) * 100.0,
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ckpt;
pub mod experiments;
mod runner;
pub mod snapshot;
pub mod supervise;
pub mod sweep;

pub use runner::{
    build_system, build_system_on, characterize, characterize_checkpointed, characterize_on,
    tradeoff, Actuation, RunConfig, RunOutcome, SaturatingWorkload,
};
