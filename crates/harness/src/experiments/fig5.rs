//! Figure 5: global versus thread-specific control.
//!
//! A periodic, short-running "cool" process (6 s of cpuburn, 60 s of
//! sleep) shares the machine with a hot CPU-bound application (four
//! instances of calculix). Under a *global* policy the cool process is
//! unfairly penalised for the hot process's heat; under *per-thread*
//! control only the hot threads absorb the slowdown and the cool process
//! runs essentially uninterrupted while the system still cools.

use dimetrodon::{DimetrodonHook, InjectionParams, PolicyHandle};
use dimetrodon_machine::{Machine, MachineConfig};
use dimetrodon_sched::{System, ThreadId, ThreadKind};
use dimetrodon_sim_core::{SimDuration, SimTime};
use dimetrodon_workload::{PeriodicBurn, SpecBenchmark};

use crate::runner::RunConfig;
use crate::sweep::parallel_map;

/// Whether the injection policy applies system-wide or only to the hot
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyScope {
    /// All user threads are eligible (chip-wide techniques like DVFS can
    /// only do this).
    Global,
    /// Only the hot application's threads are eligible — the flexibility
    /// that distinguishes software injection (§2.1, §3.6).
    PerThread,
}

/// One measured configuration.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Injection probability applied.
    pub p: f64,
    /// Scope of the policy.
    pub scope: PolicyScope,
    /// Temperature reduction over idle relative to the unconstrained mix.
    pub temp_reduction: f64,
    /// Cool process throughput relative to its unconstrained run, in
    /// `[0, 1]`: `nominal work phase / mean measured work phase`.
    pub cool_throughput: f64,
}

/// The sweep results.
#[derive(Debug, Clone)]
pub struct Fig5Data {
    /// All measured `(p, scope)` combinations.
    pub points: Vec<Fig5Point>,
}

impl Fig5Data {
    /// Points of one scope, ordered by temperature reduction.
    pub fn scope_points(&self, scope: PolicyScope) -> Vec<Fig5Point> {
        let mut pts: Vec<Fig5Point> = self
            .points
            .iter()
            .filter(|p| p.scope == scope)
            .copied()
            .collect();
        pts.sort_by(|a, b| a.temp_reduction.total_cmp(&b.temp_reduction));
        pts
    }
}

/// The probabilities swept (L is fixed at the timeslice, 100 ms).
pub const SWEEP_P: [f64; 4] = [0.25, 0.5, 0.75, 0.9];

struct MixOutcome {
    tail_temp: f64,
    idle_temp: f64,
    cool_cycle_wall: Option<f64>,
}


fn run_mix(p: Option<f64>, scope: PolicyScope, config: RunConfig) -> MixOutcome {
    // simlint::allow(R1): the Xeon preset is a static, always-valid config.
    let mut machine = Machine::new(MachineConfig::xeon_e5520()).expect("valid preset");
    machine.settle_idle();
    let idle_temp = machine.idle_temperature();
    let mut system = System::new(machine);

    // Hot application: four instances of calculix (the hottest SPEC
    // profile).
    let hot_ids: Vec<ThreadId> = (0..4)
        .map(|_| system.spawn(ThreadKind::User, Box::new(SpecBenchmark::Calculix.body())))
        .collect();
    // Cool process: the paper's 6 s burn / 60 s sleep loop.
    let (cool_body, cool_counter) = PeriodicBurn::paper_cool_process();
    let cool_id = system.spawn(ThreadKind::User, Box::new(cool_body));

    if let Some(p) = p {
        let policy = PolicyHandle::new();
        let params = InjectionParams::new(p, SimDuration::from_millis(100));
        match scope {
            PolicyScope::Global => policy.set_global(Some(params)),
            PolicyScope::PerThread => {
                for &id in &hot_ids {
                    policy.set_thread(id, Some(params));
                }
                // The cool thread keeps no policy entry: exempt.
                let _ = cool_id;
            }
        }
        system.set_hook(Box::new(DimetrodonHook::new(policy, config.seed ^ 0xF15)));
    }

    // Let scheduler priorities reach equilibrium (the cold-start cycle
    // runs before the hot threads have accumulated recent-CPU estimates),
    // then measure cycles from there.
    let warmup = SimDuration::from_secs(70).min(config.duration / 2);
    system.run_until(SimTime::ZERO + warmup);
    cool_counter.reset();
    system.run_until(SimTime::ZERO + config.duration);
    let tail_temp = system
        .observed_temp_over(SimTime::ZERO + (config.duration - config.measure_window))
        // simlint::allow(R1): the run always covers the measure window, so
        // dispatch samples exist; an empty window is a harness bug.
        .expect("samples exist");
    MixOutcome {
        tail_temp,
        idle_temp,
        cool_cycle_wall: cool_counter.mean_cycle_wall_secs(),
    }
}

/// Runs the Figure 5 sweep: each probability in [`SWEEP_P`] under both
/// scopes, measured against the unconstrained mix.
pub fn run(config: RunConfig) -> Fig5Data {
    run_subset(config, &SWEEP_P)
}

/// Runs a subset of probabilities (for tests).
pub fn run_subset(config: RunConfig, sweep_p: &[f64]) -> Fig5Data {
    // Job 0 is the unconstrained mix; then (p, scope) pairs in grid order.
    let grid: Vec<(usize, f64, PolicyScope)> = sweep_p
        .iter()
        .enumerate()
        .flat_map(|(i, &p)| {
            [PolicyScope::Global, PolicyScope::PerThread]
                .into_iter()
                .map(move |scope| (i, p, scope))
        })
        .collect();
    let outcomes = parallel_map(grid.len() + 1, |job| {
        if job == 0 {
            run_mix(None, PolicyScope::Global, config)
        } else {
            let (i, p, scope) = grid[job - 1];
            run_mix(
                Some(p),
                scope,
                RunConfig {
                    seed: config.seed.wrapping_add(i as u64 * 11 + 5),
                    ..config
                },
            )
        }
    });
    let base = &outcomes[0];
    let base_rise = base.tail_temp - base.idle_temp;
    let base_cycle = base
        .cool_cycle_wall
        // simlint::allow(R1): the uninjected baseline always completes
        // cool-process cycles inside the run window.
        .expect("baseline cool process completed cycles");

    let points = grid
        .iter()
        .zip(&outcomes[1..])
        .map(|(&(_, p, scope), outcome)| {
            let temp_reduction = (base.tail_temp - outcome.tail_temp) / base_rise;
            let cool_throughput = match outcome.cool_cycle_wall {
                // Relative throughput: how much the work phase stretched
                // versus the unconstrained mix.
                Some(wall) => (base_cycle / wall).min(1.0),
                // No cycle completed within the run: throughput
                // effectively zero.
                None => 0.0,
            };
            Fig5Point {
                p,
                scope,
                temp_reduction,
                cool_throughput,
            }
        })
        .collect();
    Fig5Data { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_thread_control_spares_the_cool_process() {
        let config = RunConfig {
            duration: SimDuration::from_secs(200),
            measure_window: SimDuration::from_secs(30),
            warmup: SimDuration::ZERO,
            seed: 51,
        };
        let data = run_subset(config, &[0.75]);
        let global = data.scope_points(PolicyScope::Global)[0];
        let per_thread = data.scope_points(PolicyScope::PerThread)[0];

        // Both lower the temperature materially.
        assert!(global.temp_reduction > 0.15, "global {:?}", global);
        assert!(per_thread.temp_reduction > 0.15, "per-thread {:?}", per_thread);

        // The cool process suffers under the global policy and runs
        // (nearly) uninterrupted under per-thread control.
        assert!(
            global.cool_throughput < 0.5,
            "global should penalise the cool process: {}",
            global.cool_throughput
        );
        assert!(
            per_thread.cool_throughput > 0.9,
            "per-thread should spare the cool process: {}",
            per_thread.cool_throughput
        );
    }
}
