//! Table 1: real-workload results — per-benchmark unconstrained
//! temperature rise (as a percentage of cpuburn's) and best-fit
//! `T(r) = α·r^β` parameters for the throughput/temperature trade-off.
//!
//! The paper's take-aways: absolute heat differs by workload (astar runs
//! ~28 % cooler than cpuburn), but the *relative* trade-off curves barely
//! differ — every workload fits a convex power law (β > 1) and achieves
//! better than 1:1 trade-offs until large reductions.

use dimetrodon::{InjectionModel, InjectionParams};
use dimetrodon_analysis::{fit_power_law, pareto_frontier, PowerLawFit, TradeoffPoint};
use dimetrodon_sim_core::SimDuration;
use dimetrodon_workload::SpecBenchmark;

use crate::runner::{Actuation, RunConfig, SaturatingWorkload};
use crate::sweep::{run_sweep, SweepPoint as EnginePoint};

/// The `(p, L)` grid each workload is swept over.
pub const SWEEP_P: [f64; 4] = [0.1, 0.25, 0.5, 0.75];
/// Quantum lengths (ms) in the per-workload sweep.
pub const SWEEP_L_MS: [u64; 3] = [5, 25, 100];

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Workload name as the paper prints it.
    pub workload: String,
    /// Unconstrained rise over idle as a percentage of cpuburn's.
    pub rise_pct: f64,
    /// The paper's reported rise percentage, for side-by-side reporting.
    pub paper_rise_pct: f64,
    /// Fitted `T(r) = α·r^β` over the pareto boundary.
    pub fit: PowerLawFit,
    /// The paper's reported (α, β).
    pub paper_alpha_beta: (f64, f64),
    /// The measured sweep points `(temp_reduction, throughput_reduction)`
    /// the fit was taken over.
    pub sweep: Vec<(f64, f64)>,
}

/// The rows of Table 1, cpuburn first then the six SPEC-like profiles.
pub fn run(config: RunConfig) -> Vec<Table1Row> {
    let mut workloads: Vec<(SaturatingWorkload, String, f64, (f64, f64))> = vec![(
        SaturatingWorkload::CpuBurn,
        "cpuburn".to_string(),
        100.0,
        (1.092, 1.541),
    )];
    for bench in SpecBenchmark::ALL {
        workloads.push((
            SaturatingWorkload::Spec(bench),
            bench.name().to_string(),
            bench.paper_rise_fraction() * 100.0,
            paper_fit(bench),
        ));
    }
    run_workloads(config, &workloads, &SWEEP_P, &SWEEP_L_MS)
}

/// Table 1's published (α, β) for a benchmark.
pub fn paper_fit(bench: SpecBenchmark) -> (f64, f64) {
    match bench {
        SpecBenchmark::Calculix => (1.282, 1.697),
        SpecBenchmark::Namd => (1.248, 1.546),
        SpecBenchmark::DealII => (1.324, 1.688),
        SpecBenchmark::Bzip2 => (1.529, 1.811),
        SpecBenchmark::Gcc => (1.425, 1.848),
        SpecBenchmark::Astar => (1.351, 1.416),
    }
}

/// Sweeps and fits an explicit workload list (used by tests to reduce
/// cost).
pub fn run_workloads(
    config: RunConfig,
    workloads: &[(SaturatingWorkload, String, f64, (f64, f64))],
    sweep_p: &[f64],
    sweep_l_ms: &[u64],
) -> Vec<Table1Row> {
    // One flat job list for the whole table: index 0 is cpuburn's
    // unconstrained run (normalises the "Rise (%)" column), then per
    // workload an unconstrained base (cpuburn reuses index 0) followed by
    // its `(p, L)` grid.
    let mut jobs = vec![EnginePoint::new(
        SaturatingWorkload::CpuBurn,
        Actuation::None,
        config,
    )];
    let mut slots = Vec::new();
    for (wi, (workload, _, _, _)) in workloads.iter().enumerate() {
        let base_index = if *workload == SaturatingWorkload::CpuBurn {
            0
        } else {
            jobs.push(EnginePoint::new(*workload, Actuation::None, config));
            jobs.len() - 1
        };
        let grid_start = jobs.len();
        for (i, &p) in sweep_p.iter().enumerate() {
            for (j, &l) in sweep_l_ms.iter().enumerate() {
                jobs.push(EnginePoint::new(
                    *workload,
                    Actuation::Injection {
                        params: InjectionParams::new(p, SimDuration::from_millis(l)),
                        model: InjectionModel::Probabilistic,
                    },
                    RunConfig {
                        seed: config
                            .seed
                            .wrapping_add((wi * 1009 + i * 53 + j * 17 + 7) as u64),
                        ..config
                    },
                ));
            }
        }
        slots.push((base_index, grid_start));
    }
    let outcomes = run_sweep(&jobs);
    let burn_rise = outcomes[0].rise_over_idle();
    let grid_len = sweep_p.len() * sweep_l_ms.len();

    let mut rows = Vec::new();
    for ((workload, name, paper_rise_pct, paper_ab), &(base_index, grid_start)) in
        workloads.iter().zip(&slots)
    {
        let base = &outcomes[base_index];
        let sweep: Vec<(f64, f64)> = outcomes[grid_start..grid_start + grid_len]
            .iter()
            .map(|outcome| {
                (
                    outcome.temp_reduction_vs(base),
                    outcome.throughput_reduction_vs(base),
                )
            })
            .collect();
        // Fit over the pareto boundary for r in [0, 0.5] (the paper's
        // Table 1 fit range; cpuburn's §3.4 fit extends to 0.75).
        let r_max = if *workload == SaturatingWorkload::CpuBurn {
            0.75
        } else {
            0.5
        };
        let points: Vec<TradeoffPoint<usize>> = sweep
            .iter()
            .enumerate()
            .map(|(k, &(r, t))| TradeoffPoint::new(r, t, k))
            .collect();
        let frontier = pareto_frontier(&points);
        let fit_points: Vec<(f64, f64)> = frontier
            .iter()
            .filter(|pt| pt.benefit <= r_max)
            .map(|pt| (pt.benefit, pt.cost))
            .collect();
        let fit = fit_power_law(&fit_points)
            // simlint::allow(R1): a failed fit means the sweep produced a
            // degenerate frontier; fail loudly with the workload name
            // rather than emit a half-empty table.
            .unwrap_or_else(|e| panic!("fit failed for {name}: {e}"));

        rows.push(Table1Row {
            workload: name.clone(),
            rise_pct: base.rise_over_idle() / burn_rise * 100.0,
            paper_rise_pct: *paper_rise_pct,
            fit,
            paper_alpha_beta: *paper_ab,
            sweep,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rise_percentages_track_table_1() {
        // Two contrasting workloads suffice to validate the calibration.
        let config = RunConfig::quick(71);
        let rows = run_workloads(
            config,
            &[
                (
                    SaturatingWorkload::Spec(SpecBenchmark::Calculix),
                    "calculix".into(),
                    99.3,
                    paper_fit(SpecBenchmark::Calculix),
                ),
                (
                    SaturatingWorkload::Spec(SpecBenchmark::Astar),
                    "astar".into(),
                    71.7,
                    paper_fit(SpecBenchmark::Astar),
                ),
            ],
            &[0.5],
            &[5, 25],
        );
        for row in &rows {
            let err = (row.rise_pct - row.paper_rise_pct).abs();
            assert!(
                err < 8.0,
                "{}: measured rise {}% vs paper {}%",
                row.workload,
                row.rise_pct,
                row.paper_rise_pct
            );
        }
    }

    #[test]
    fn fits_are_convex_power_laws() {
        let config = RunConfig::quick(72);
        let rows = run_workloads(
            config,
            &[(
                SaturatingWorkload::CpuBurn,
                "cpuburn".into(),
                100.0,
                (1.092, 1.541),
            )],
            &[0.1, 0.25, 0.5, 0.75],
            &[5, 100],
        );
        let fit = rows[0].fit;
        // Table 1's qualitative property: beta > 1 (convex trade-off) and
        // alpha of order one.
        assert!(fit.beta > 1.0, "beta {}", fit.beta);
        assert!((0.4..4.0).contains(&fit.alpha), "alpha {}", fit.alpha);
        assert!(fit.r_squared > 0.7, "r^2 {}", fit.r_squared);
    }
}
