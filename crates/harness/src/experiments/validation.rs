//! §3.3 model validation: throughput against `D(t)` and energy against
//! race-to-idle.
//!
//! * **Throughput**: a finite cpuburn of known CPU demand runs under each
//!   `(p, L)` configuration; its measured wall time is compared with
//!   `D(t) = R + (R/q)·p/(1−p)·L`. The paper saw throughputs "on average
//!   1.0 % lower than expected", with deviation growing with `p` (context
//!   switching and state-monitoring overheads — reproduced here by the
//!   switch cost and cold-resume penalty).
//! * **Energy**: Dimetrodon and race-to-idle execute the same 7 s finite
//!   cpuburn over equal windows; both are measured with the simulated
//!   current clamp. The paper: 97.6 %–103.7 % of race-to-idle energy,
//!   average deviation −0.37 %.

use dimetrodon::model::predicted_runtime;
use dimetrodon::{InjectionModel, InjectionParams};
use dimetrodon_analysis::Summary;
use dimetrodon_power::PowerMeter;
use dimetrodon_sched::ThreadKind;
use dimetrodon_sim_core::{SimDuration, SimRng, SimTime};
use dimetrodon_workload::CpuBurn;

use crate::runner::{build_system, Actuation};
use crate::sweep::parallel_map;

/// The paper's throughput-validation grid: probabilities.
pub const THROUGHPUT_P: [f64; 3] = [0.25, 0.5, 0.75];
/// The paper's throughput-validation grid: quanta (ms).
pub const THROUGHPUT_L_MS: [u64; 4] = [25, 50, 75, 100];
/// The paper's energy-validation grid: quanta (ms).
pub const ENERGY_L_MS: [u64; 2] = [50, 100];
/// CPU demand of the finite cpuburn (the paper's energy runs: 7 s).
pub const WORK: SimDuration = SimDuration::from_secs(7);
/// The scheduler quantum `q` (the 4.4BSD timeslice).
pub const QUANTUM: SimDuration = SimDuration::from_millis(100);

/// One configuration's throughput-validation result.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Injection probability.
    pub p: f64,
    /// Idle quantum, ms.
    pub l_ms: u64,
    /// `D(t)` predicted wall time, s.
    pub predicted_s: f64,
    /// Mean measured wall time across trials, s.
    pub measured_s: f64,
    /// Per-trial relative deviations `(measured − predicted)/predicted`.
    pub deviations: Vec<f64>,
}

impl ThroughputRow {
    /// Mean relative deviation of this configuration.
    pub fn mean_deviation(&self) -> f64 {
        Summary::of(&self.deviations).mean
    }
}

/// The whole throughput validation.
#[derive(Debug, Clone)]
pub struct ThroughputValidation {
    /// One row per `(p, L)`.
    pub rows: Vec<ThroughputRow>,
    /// Summary of all deviations pooled.
    pub overall: Summary,
}

/// Measures one finite-cpuburn trial's wall time under `(p, L)`.
fn one_trial(p: f64, l_ms: u64, seed: u64) -> f64 {
    let (mut system, _policy) = build_system(
        Actuation::Injection {
            params: InjectionParams::new(p, SimDuration::from_millis(l_ms)),
            model: InjectionModel::Probabilistic,
        },
        seed,
    );
    let id = system.spawn(ThreadKind::User, Box::new(CpuBurn::finite(WORK)));
    let deadline = SimTime::from_secs(600);
    assert!(system.run_until_exited(&[id], deadline), "trial did not finish");
    system
        .thread_stats(id)
        .wall_time()
        // simlint::allow(R1): run_until_exited success is asserted on the
        // line above, so wall_time is present.
        .expect("exited")
        .as_secs_f64()
}

/// Runs the §3.3 throughput validation with `trials` per configuration
/// (the paper used 100).
pub fn throughput(trials: usize, seed: u64) -> ThroughputValidation {
    throughput_grid(trials, seed, &THROUGHPUT_P, &THROUGHPUT_L_MS)
}

/// Runs the validation over an explicit grid (tests use a reduced one).
pub fn throughput_grid(
    trials: usize,
    seed: u64,
    grid_p: &[f64],
    grid_l_ms: &[u64],
) -> ThroughputValidation {
    assert!(trials > 0, "need at least one trial");
    // Trial seeds are drawn from one sequential fork chain (exactly as
    // the sequential implementation did), so trials stay bit-identical;
    // the trials themselves then fan across the pool.
    let mut rng = SimRng::new(seed);
    let mut cells = Vec::new();
    for &p in grid_p {
        for &l_ms in grid_l_ms {
            let seeds: Vec<u64> = (0..trials)
                .map(|_| rng.fork(0).uniform().to_bits())
                .collect();
            cells.push((p, l_ms, seeds));
        }
    }
    let walls = parallel_map(cells.len() * trials, |job| {
        let (p, l_ms, ref seeds) = cells[job / trials];
        one_trial(p, l_ms, seeds[job % trials])
    });

    let mut rows = Vec::new();
    let mut all = Vec::new();
    for (cell, (p, l_ms, _)) in cells.iter().enumerate() {
        let predicted = predicted_runtime(
            WORK.as_secs_f64(),
            QUANTUM.as_secs_f64(),
            *p,
            SimDuration::from_millis(*l_ms).as_secs_f64(),
        );
        let cell_walls = &walls[cell * trials..(cell + 1) * trials];
        let deviations: Vec<f64> = cell_walls
            .iter()
            .map(|wall| (wall - predicted) / predicted)
            .collect();
        all.extend_from_slice(&deviations);
        rows.push(ThroughputRow {
            p: *p,
            l_ms: *l_ms,
            predicted_s: predicted,
            measured_s: cell_walls.iter().sum::<f64>() / trials as f64,
            deviations,
        });
    }
    ThroughputValidation {
        rows,
        overall: Summary::of(&all),
    }
}

/// One energy-validation configuration's result.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Injection probability.
    pub p: f64,
    /// Idle quantum, ms.
    pub l_ms: u64,
    /// Per-trial ratios `E_dimetrodon / E_race_to_idle`.
    pub ratios: Vec<f64>,
}

/// The whole energy validation.
#[derive(Debug, Clone)]
pub struct EnergyValidation {
    /// One row per `(p, L)`.
    pub rows: Vec<EnergyRow>,
    /// Summary of `ratio − 1` pooled over all trials (the paper's
    /// deviations from race-to-idle energy).
    pub overall_deviation: Summary,
}

/// One energy trial: measures Dimetrodon's and race-to-idle's energy over
/// equal windows with independently calibrated clamps.
fn energy_trial(p: f64, l_ms: u64, seed: u64) -> f64 {
    // Dimetrodon run: measure until the thread completes at D.
    let (mut system, _policy) = build_system(
        Actuation::Injection {
            params: InjectionParams::new(p, SimDuration::from_millis(l_ms)),
            model: InjectionModel::Probabilistic,
        },
        seed,
    );
    let mut rng = SimRng::new(seed ^ 0xE6);
    // The Fluke clamp's per-trial calibration: ~1% gain std plus
    // per-sample noise (its 3.5% figure is a worst-case accuracy spec).
    system.attach_power_meter(PowerMeter::new(
        PowerMeter::PAPER_INTERVAL,
        0.01,
        0.004,
        &mut rng,
    ));
    let id = system.spawn(ThreadKind::User, Box::new(CpuBurn::finite(WORK)));
    assert!(
        system.run_until_exited(&[id], SimTime::from_secs(600)),
        "dimetrodon trial did not finish"
    );
    let window = system.now();
    system.run_until(window); // flush machine advance to `now`
    // simlint::allow(R1): the meter is attached earlier in this function.
    let dimetrodon_joules = system.power_meter().expect("attached").measured_joules();

    // Race-to-idle run over the same window length.
    let (mut base, _none) = build_system(Actuation::None, seed);
    base.attach_power_meter(PowerMeter::new(
        PowerMeter::PAPER_INTERVAL,
        0.01,
        0.004,
        &mut rng,
    ));
    let id = base.spawn(ThreadKind::User, Box::new(CpuBurn::finite(WORK)));
    base.run_until(window);
    assert!(base.has_exited(id), "race-to-idle must finish within the window");
    // simlint::allow(R1): the meter is attached earlier in this function.
    let rti_joules = base.power_meter().expect("attached").measured_joules();

    dimetrodon_joules / rti_joules
}

/// Runs the §3.3 energy validation with `trials` per configuration (the
/// paper used five).
pub fn energy(trials: usize, seed: u64) -> EnergyValidation {
    energy_grid(trials, seed, &THROUGHPUT_P, &ENERGY_L_MS)
}

/// Energy validation over an explicit grid.
pub fn energy_grid(
    trials: usize,
    seed: u64,
    grid_p: &[f64],
    grid_l_ms: &[u64],
) -> EnergyValidation {
    assert!(trials > 0, "need at least one trial");
    // Same scheme as `throughput_grid`: sequential seed derivation,
    // parallel trials.
    let mut rng = SimRng::new(seed);
    let mut cells = Vec::new();
    for &p in grid_p {
        for &l_ms in grid_l_ms {
            let seeds: Vec<u64> = (0..trials)
                .map(|_| rng.fork(1).uniform().to_bits())
                .collect();
            cells.push((p, l_ms, seeds));
        }
    }
    let all_ratios = parallel_map(cells.len() * trials, |job| {
        let (p, l_ms, ref seeds) = cells[job / trials];
        energy_trial(p, l_ms, seeds[job % trials])
    });

    let mut rows = Vec::new();
    let mut deviations = Vec::new();
    for (cell, (p, l_ms, _)) in cells.iter().enumerate() {
        let ratios = all_ratios[cell * trials..(cell + 1) * trials].to_vec();
        deviations.extend(ratios.iter().map(|r| r - 1.0));
        rows.push(EnergyRow { p: *p, l_ms: *l_ms, ratios });
    }
    EnergyValidation {
        rows,
        overall_deviation: Summary::of(&deviations),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_model_holds_within_a_few_percent() {
        // Per-trial wall time has geometric-sum variance (sd ≈ 2.9 s at
        // p = 0.75 on a 28 s prediction), so this asserts the mean over a
        // modest trial count stays within a few percent; the directional
        // "deviation grows with p" claim needs the 100-trial binary
        // (`validate_model`) to resolve.
        let v = throughput_grid(16, 81, &[0.25, 0.75], &[50]);
        for row in &v.rows {
            let dev = row.mean_deviation();
            assert!(
                dev.abs() < 0.05,
                "p={} L={}ms: deviation {dev} (measured {} vs predicted {})",
                row.p,
                row.l_ms,
                row.measured_s,
                row.predicted_s
            );
        }
        assert_eq!(v.overall.n, 32);
    }

    #[test]
    fn energy_is_race_to_idle_equivalent() {
        let v = energy_grid(3, 82, &[0.5], &[100]);
        for row in &v.rows {
            for &ratio in &row.ratios {
                assert!(
                    (0.93..1.07).contains(&ratio),
                    "energy ratio {ratio} outside the plausible band"
                );
            }
        }
        // Pooled deviation small, as in the paper (-0.37% avg).
        assert!(
            v.overall_deviation.mean.abs() < 0.04,
            "mean deviation {}",
            v.overall_deviation.mean
        );
    }
}
