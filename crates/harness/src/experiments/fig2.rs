//! Figure 2: average core temperature rise over idle during five minutes
//! of cpuburn, for idle proportions p ∈ {0, .25, .5, .75} at L = 100 ms.
//!
//! The curves order by `p` (more injection, less rise), fluctuate because
//! the implementation is probabilistic, and stabilise within the run.

use dimetrodon::{InjectionModel, InjectionParams};
use dimetrodon_sim_core::SimDuration;

use crate::runner::{Actuation, RunConfig, SaturatingWorkload};
use crate::sweep::{run_sweep, SweepPoint};

/// The injection proportions the paper plots.
pub const PROPORTIONS: [f64; 4] = [0.0, 0.25, 0.5, 0.75];

/// One curve of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Curve {
    /// The injection probability this curve used.
    pub p: f64,
    /// `(seconds, °C rise over idle)` samples of the mean core
    /// temperature.
    pub rise: Vec<(f64, f64)>,
    /// Mean rise over the tail measurement window, °C.
    pub tail_rise: f64,
}

/// All four curves.
#[derive(Debug, Clone)]
pub struct Fig2Data {
    /// One curve per entry of [`PROPORTIONS`].
    pub curves: Vec<Fig2Curve>,
    /// The idle temperature the rises are relative to, °C.
    pub idle_temp: f64,
}

/// Runs the Figure 2 experiment with the paper's L = 100 ms.
pub fn run(config: RunConfig) -> Fig2Data {
    let points: Vec<SweepPoint> = PROPORTIONS
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let actuation = if p <= 0.0 {
                Actuation::None
            } else {
                Actuation::Injection {
                    params: InjectionParams::new(p, SimDuration::from_millis(100)),
                    model: InjectionModel::Probabilistic,
                }
            };
            SweepPoint::new(
                SaturatingWorkload::CpuBurn,
                actuation,
                RunConfig {
                    seed: config.seed.wrapping_add(i as u64),
                    ..config
                },
            )
        })
        .collect();
    let outcomes = run_sweep(&points);
    let idle_temp = outcomes.last().map_or(0.0, |o| o.idle_temp);
    let curves = PROPORTIONS
        .iter()
        .zip(&outcomes)
        .map(|(&p, outcome)| Fig2Curve {
            p,
            rise: outcome
                .observed_curve
                .iter()
                .map(|&(t, v)| (t, v - outcome.idle_temp))
                .collect(),
            tail_rise: outcome.rise_over_idle(),
        })
        .collect();
    Fig2Data { curves, idle_temp }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_order_by_p() {
        let data = run(RunConfig::quick(21));
        assert_eq!(data.curves.len(), 4);
        let rises: Vec<f64> = data.curves.iter().map(|c| c.tail_rise).collect();
        for w in rises.windows(2) {
            assert!(
                w[0] > w[1],
                "higher p must lower the tail rise: {rises:?}"
            );
        }
        // Figure 2's scale: unconstrained rise around 20 °C, p = 0.75 well
        // below half of it.
        assert!((14.0..30.0).contains(&rises[0]), "p=0 rise {}", rises[0]);
        assert!(rises[3] < rises[0] * 0.5, "p=.75 rise {}", rises[3]);
    }

    #[test]
    fn probabilistic_curves_fluctuate() {
        let data = run(RunConfig::quick(22));
        // Sample-to-sample jitter (mean absolute first difference of the
        // tail) separates fluctuation from the settling trend: the
        // injected curves jump between hot and post-idle readings, the
        // unconstrained one warms smoothly.
        let tail_jitter = |curve: &Fig2Curve| {
            let tail: Vec<f64> = curve
                .rise
                .iter()
                .filter(|(t, _)| *t > 60.0)
                .map(|&(_, r)| r)
                .collect();
            assert!(tail.len() > 10, "tail too short");
            tail.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (tail.len() - 1) as f64
        };
        let smooth = tail_jitter(&data.curves[0]);
        let noisy = tail_jitter(&data.curves[2]); // p = 0.5
        assert!(
            noisy > smooth * 2.0,
            "probabilistic curve should fluctuate: jitter {noisy} vs {smooth}"
        );
    }
}
