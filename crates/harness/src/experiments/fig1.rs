//! Figure 1: race-to-idle versus Dimetrodon power consumption.
//!
//! A multi-threaded CPU-bound process (four finite cpuburn threads) runs
//! to completion; the package power trace is sampled each millisecond.
//! Unconstrained, the process races at full power then drops to idle.
//! Under Dimetrodon the trace spends time at the four intermediate power
//! plateaus corresponding to 1–4 cores idling, and the burst stretches —
//! same total energy, lower average power while computing.

use dimetrodon::{InjectionModel, InjectionParams};
use dimetrodon_power::PowerMeter;
use dimetrodon_sched::ThreadKind;
use dimetrodon_sim_core::{SimDuration, SimRng, SimTime};
use dimetrodon_workload::CpuBurn;

use crate::runner::{build_system, Actuation};

/// One power trace: `(seconds, watts)` samples.
pub type PowerTrace = Vec<(f64, f64)>;

/// The two traces of Figure 1 plus their measured energies.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// Unconstrained (race-to-idle) power trace.
    pub race_to_idle: PowerTrace,
    /// Dimetrodon (p = 0.5, L = 100 ms) power trace.
    pub dimetrodon: PowerTrace,
    /// Energy of the race-to-idle trace over the window, joules.
    pub race_to_idle_joules: f64,
    /// Energy of the Dimetrodon trace over the window, joules.
    pub dimetrodon_joules: f64,
    /// The observation window, seconds.
    pub window_secs: f64,
}

/// Per-thread CPU demand of the multi-threaded burst.
const WORK: SimDuration = SimDuration::from_millis(1500);
/// Observation window covering both variants' completions (the paper's
/// x-axis runs to ~3.8 s).
const WINDOW: SimDuration = SimDuration::from_millis(3800);

fn trace(actuation: Actuation, seed: u64) -> (PowerTrace, f64) {
    let (mut system, _policy) = build_system(actuation, seed);
    let mut rng = SimRng::new(seed ^ 0xF16);
    system.attach_power_meter(PowerMeter::ideal(SimDuration::from_millis(1), &mut rng));
    let ids: Vec<_> = (0..4)
        .map(|_| system.spawn(ThreadKind::User, Box::new(CpuBurn::finite(WORK))))
        .collect();
    system.run_until_exited(&ids, SimTime::ZERO + WINDOW);
    system.run_until(SimTime::ZERO + WINDOW);
    // simlint::allow(R1): the meter is attached a few lines up.
    let meter = system.power_meter().expect("attached");
    let samples = meter
        .series()
        .iter()
        .map(|(t, w)| (t.as_secs_f64(), w))
        .collect();
    (samples, meter.measured_joules())
}

/// Runs the Figure 1 experiment.
pub fn run(seed: u64) -> Fig1Data {
    let (race_to_idle, race_to_idle_joules) = trace(Actuation::None, seed);
    let (dimetrodon, dimetrodon_joules) = trace(
        Actuation::Injection {
            params: InjectionParams::new(0.5, SimDuration::from_millis(100)),
            model: InjectionModel::Probabilistic,
        },
        seed,
    );
    Fig1Data {
        race_to_idle,
        dimetrodon,
        race_to_idle_joules,
        dimetrodon_joules,
        window_secs: WINDOW.as_secs_f64(),
    }
}

impl Fig1Data {
    /// Mean power while any thread was still computing, for a trace: the
    /// quantity Dimetrodon lowers.
    pub fn mean_active_power(trace: &PowerTrace, idle_floor_w: f64) -> f64 {
        let active: Vec<f64> = trace
            .iter()
            .map(|&(_, w)| w)
            .filter(|&w| w > idle_floor_w)
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().sum::<f64>() / active.len() as f64
    }

    /// Distinct power plateaus in a trace (rounded to the nearest
    /// `bucket_w` watts) — Figure 1's caption notes four levels as
    /// different numbers of cores idle.
    pub fn plateau_count(trace: &PowerTrace, bucket_w: f64) -> usize {
        let mut buckets: Vec<i64> = trace
            .iter()
            .map(|&(_, w)| (w / bucket_w).round() as i64)
            .collect();
        buckets.sort_unstable();
        buckets.dedup();
        buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_parity_and_lower_average_power() {
        let data = run(42);
        // §2.2: same total energy (within a few percent).
        let ratio = data.dimetrodon_joules / data.race_to_idle_joules;
        assert!((0.95..1.05).contains(&ratio), "energy ratio {ratio}");
        // Lower average power during computation.
        let rti_active = Fig1Data::mean_active_power(&data.race_to_idle, 20.0);
        let dim_active = Fig1Data::mean_active_power(&data.dimetrodon, 20.0);
        assert!(
            dim_active < rti_active - 5.0,
            "dimetrodon should compute at lower power: {dim_active} vs {rti_active}"
        );
    }

    #[test]
    fn dimetrodon_trace_shows_intermediate_levels() {
        let data = run(43);
        // Race-to-idle: essentially two levels (full burn, then idle).
        let rti_levels = Fig1Data::plateau_count(&data.race_to_idle, 8.0);
        // Dimetrodon passes through intermediate plateaus.
        let dim_levels = Fig1Data::plateau_count(&data.dimetrodon, 8.0);
        assert!(dim_levels > rti_levels, "{dim_levels} vs {rti_levels}");
        assert!(dim_levels >= 4, "expected >= 4 power levels, got {dim_levels}");
    }

    #[test]
    fn dimetrodon_stretches_the_burst() {
        let data = run(44);
        let last_busy = |trace: &PowerTrace| {
            trace
                .iter()
                .rev()
                .find(|&&(_, w)| w > 20.0)
                .map(|&(t, _)| t)
                .unwrap_or(0.0)
        };
        let rti_done = last_busy(&data.race_to_idle);
        let dim_done = last_busy(&data.dimetrodon);
        assert!(
            dim_done > rti_done * 1.5,
            "dimetrodon should stretch execution: {dim_done} vs {rti_done}"
        );
    }
}
