//! Sensitivity of the reproduction to its own calibration: where does
//! Figure 3's efficiency knee come from?
//!
//! DESIGN.md §4.1 claims the knee in efficiency-vs-L sits at the hotspot
//! time constant (and §3.4 of the paper puts the optimum "closer to the
//! order of one ms"). This experiment sweeps the hotspot time constant
//! and measures, for each, the quantum length at which efficiency has
//! fallen to half its short-quantum value — if the model is honest, that
//! half-efficiency length tracks the time constant.

use dimetrodon::{InjectionModel, InjectionParams};
use dimetrodon_machine::MachineConfig;
use dimetrodon_sim_core::SimDuration;

use crate::runner::{Actuation, RunConfig, SaturatingWorkload};
use crate::sweep::{run_sweep, SweepPoint};

/// One hotspot-time-constant configuration's efficiency curve.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// The configured hotspot time constant, ms.
    pub tau_ms: f64,
    /// `(L_ms, efficiency)` points at p = 0.25.
    pub curve: Vec<(u64, f64)>,
}

impl SensitivityRow {
    /// The shortest measured quantum length, in ms, at which efficiency
    /// has fallen to at most half the shortest-quantum efficiency —
    /// a proxy for the knee. `None` if efficiency never halves in range.
    pub fn half_efficiency_l_ms(&self) -> Option<u64> {
        let peak = self.curve.first()?.1;
        self.curve
            .iter()
            .find(|&&(_, e)| e <= peak / 2.0)
            .map(|&(l, _)| l)
    }
}

/// Default time constants swept (ms).
pub const SWEEP_TAU_MS: [f64; 3] = [0.5, 1.5, 6.0];
/// Quantum lengths measured (ms).
pub const SWEEP_L_MS: [u64; 6] = [1, 2, 5, 10, 25, 100];

/// Runs the hotspot-time-constant sensitivity sweep.
pub fn run(config: RunConfig) -> Vec<SensitivityRow> {
    run_subset(config, &SWEEP_TAU_MS, &SWEEP_L_MS)
}

/// Runs a subset of the sweep.
pub fn run_subset(config: RunConfig, taus_ms: &[f64], quanta_ms: &[u64]) -> Vec<SensitivityRow> {
    // Per tau: one unconstrained base followed by the quantum curve, all
    // flattened into a single job list.
    let stride = 1 + quanta_ms.len();
    let mut jobs = Vec::with_capacity(taus_ms.len() * stride);
    for &tau_ms in taus_ms {
        // Scale the hotspot capacitance to hit the requested time
        // constant at the preset conductance, keeping the steady
        // excess unchanged.
        let mut machine_config = MachineConfig::xeon_e5520();
        machine_config.thermal.hotspot_capacitance =
            machine_config.thermal.hotspot_to_die * tau_ms / 1e3;

        jobs.push(SweepPoint::on(
            machine_config.clone(),
            SaturatingWorkload::CpuBurn,
            Actuation::None,
            config,
        ));
        for &l_ms in quanta_ms {
            jobs.push(SweepPoint::on(
                machine_config.clone(),
                SaturatingWorkload::CpuBurn,
                Actuation::Injection {
                    params: InjectionParams::new(0.25, SimDuration::from_millis(l_ms)),
                    model: InjectionModel::Probabilistic,
                },
                RunConfig {
                    seed: config.seed.wrapping_add(l_ms),
                    ..config
                },
            ));
        }
    }
    let outcomes = run_sweep(&jobs);

    taus_ms
        .iter()
        .enumerate()
        .map(|(t, &tau_ms)| {
            let base = &outcomes[t * stride];
            let curve = quanta_ms
                .iter()
                .zip(&outcomes[t * stride + 1..(t + 1) * stride])
                .map(|(&l_ms, run)| {
                    let thr = run.throughput_reduction_vs(base).max(1e-6);
                    (l_ms, run.temp_reduction_vs(base) / thr)
                })
                .collect();
            SensitivityRow { tau_ms, curve }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_tracks_hotspot_time_constant() {
        let rows = run_subset(
            RunConfig::quick(91),
            &[0.5, 6.0],
            &[1, 2, 5, 10, 25, 100],
        );
        let fast = rows[0].half_efficiency_l_ms().expect("fast knee in range");
        let slow = rows[1].half_efficiency_l_ms().expect("slow knee in range");
        assert!(
            slow > fast,
            "a slower hotspot should push the knee to longer quanta: \
             tau=0.5ms -> {fast} ms, tau=6ms -> {slow} ms"
        );
    }

    #[test]
    fn efficiency_declines_with_l_for_all_taus() {
        let rows = run_subset(RunConfig::quick(92), &[1.5], &[1, 10, 100]);
        let curve = &rows[0].curve;
        assert!(curve[0].1 > curve[1].1 && curve[1].1 > curve[2].1, "{curve:?}");
    }
}
