//! Figure 6: QoS versus temperature reduction for the web workload.
//!
//! The SPECWeb-like workload (440 connections, 15–25 % per-core load)
//! runs under a sweep of `(p, L)` policies; each run is scored against
//! the "good" (3 s) and "tolerable" (5 s) response-time thresholds,
//! relative to the unconstrained baseline. The paper's findings: the
//! tolerable metric holds to ~20 % temperature reductions with virtually
//! no drop-off, the good metric degrades sharply past ~30 %, and shorter
//! quanta remain the efficient choice.

use dimetrodon::{DimetrodonHook, InjectionParams, PolicyHandle};
use dimetrodon_machine::{Machine, MachineConfig};
use dimetrodon_sched::System;
use dimetrodon_sim_core::{SimDuration, SimRng, SimTime};
use dimetrodon_workload::{spawn_web_workload, QosStats, WebConfig};

use crate::runner::RunConfig;
use crate::sweep::parallel_map;

/// The probabilities swept.
pub const SWEEP_P: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];
/// The quantum lengths swept (ms).
pub const SWEEP_L_MS: [u64; 3] = [25, 50, 100];

/// One web-workload measurement.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Injection probability (0 = baseline).
    pub p: f64,
    /// Idle quantum, ms.
    pub l_ms: u64,
    /// Temperature reduction over idle relative to the unconstrained web
    /// run.
    pub temp_reduction: f64,
    /// "Good" QoS (≤ 3 s) relative to baseline, in `[0, ~1]`.
    pub good_qos: f64,
    /// "Tolerable" QoS (≤ 5 s) relative to baseline.
    pub tolerable_qos: f64,
    /// Raw QoS statistics of the run.
    pub stats: QosStats,
}

/// The sweep results.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// The unconstrained baseline's statistics.
    pub baseline: QosStats,
    /// Unconstrained temperature rise over idle, °C (the paper observed
    /// ≈ 6 °C).
    pub baseline_rise: f64,
    /// All swept configurations.
    pub points: Vec<Fig6Point>,
}

struct WebOutcome {
    tail_temp: f64,
    idle_temp: f64,
    stats: QosStats,
}

fn run_web(policy_params: Option<InjectionParams>, config: RunConfig) -> WebOutcome {
    // simlint::allow(R1): the Xeon preset is a static, always-valid config.
    let mut machine = Machine::new(MachineConfig::xeon_e5520()).expect("valid preset");
    machine.settle_idle();
    let idle_temp = machine.idle_temperature();
    let mut system = System::new(machine);
    if let Some(params) = policy_params {
        let policy = PolicyHandle::new();
        policy.set_global(Some(params));
        system.set_hook(Box::new(DimetrodonHook::new(policy, config.seed ^ 0xF16)));
    }
    let mut rng = SimRng::new(config.seed ^ 0x3EB);
    let (_ids, qos) = spawn_web_workload(&mut system, WebConfig::paper_setup(), &mut rng);
    system.run_until(SimTime::ZERO + config.duration);
    let tail_temp = system
        .observed_temp_over(SimTime::ZERO + (config.duration - config.measure_window))
        // simlint::allow(R1): the run always covers the measure window, so
        // dispatch samples exist; an empty window is a harness bug.
        .expect("samples exist");
    WebOutcome {
        tail_temp,
        idle_temp,
        stats: qos.snapshot(),
    }
}

/// Runs the full Figure 6 sweep.
pub fn run(config: RunConfig) -> Fig6Data {
    run_subset(config, &SWEEP_P, &SWEEP_L_MS)
}

/// Runs a reduced sweep (for tests).
pub fn run_subset(config: RunConfig, sweep_p: &[f64], sweep_l_ms: &[u64]) -> Fig6Data {
    // Job 0 is the unconstrained baseline; then the (p, L) grid.
    let grid: Vec<(usize, usize, f64, u64)> = sweep_p
        .iter()
        .enumerate()
        .flat_map(|(i, &p)| {
            sweep_l_ms
                .iter()
                .enumerate()
                .map(move |(j, &l_ms)| (i, j, p, l_ms))
        })
        .collect();
    let mut outcomes = parallel_map(grid.len() + 1, |job| {
        if job == 0 {
            run_web(None, config)
        } else {
            let (i, j, p, l_ms) = grid[job - 1];
            run_web(
                Some(InjectionParams::new(p, SimDuration::from_millis(l_ms))),
                RunConfig {
                    seed: config.seed.wrapping_add((i * 31 + j * 7 + 9) as u64),
                    ..config
                },
            )
        }
    });
    let base = outcomes.remove(0);
    let base_rise = base.tail_temp - base.idle_temp;
    let base_good = base.stats.good_fraction().max(1e-9);
    let base_tolerable = base.stats.tolerable_fraction().max(1e-9);

    let points = grid
        .iter()
        .zip(outcomes)
        .map(|(&(_, _, p, l_ms), outcome)| Fig6Point {
            p,
            l_ms,
            temp_reduction: (base.tail_temp - outcome.tail_temp) / base_rise,
            good_qos: outcome.stats.good_fraction() / base_good,
            tolerable_qos: outcome.stats.tolerable_fraction() / base_tolerable,
            stats: outcome.stats,
        })
        .collect();
    Fig6Data {
        baseline: base.stats,
        baseline_rise: base_rise,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RunConfig {
        RunConfig {
            duration: SimDuration::from_secs(150),
            measure_window: SimDuration::from_secs(30),
            warmup: SimDuration::ZERO,
            seed: 61,
        }
    }

    #[test]
    fn baseline_matches_paper_setup() {
        let data = run_subset(config(), &[0.25], &[100]);
        // ~15-25% load, thousands of requests, modest rise (paper: ~6 C).
        assert!(data.baseline.total() > 2000, "requests {}", data.baseline.total());
        assert!(
            (1.5..12.0).contains(&data.baseline_rise),
            "baseline rise {}",
            data.baseline_rise
        );
        // Unconstrained: everything is good.
        assert!(data.baseline.good_fraction() > 0.99);
    }

    #[test]
    fn moderate_injection_preserves_tolerable_qos() {
        // Below the capacity knee the two §3.7 effects nearly cancel —
        // injected idles cool the sensor reads, deferral bunches work and
        // heats them — so the temperature change is small (either sign)
        // while both QoS metrics hold: the flat left side of Figure 6.
        let data = run_subset(config(), &[0.75], &[50]);
        let pt = &data.points[0];
        assert!(
            pt.temp_reduction.abs() < 0.3,
            "sub-knee temperature effect should be small: {}",
            pt.temp_reduction
        );
        assert!(
            pt.tolerable_qos > 0.95,
            "tolerable QoS should hold at moderate injection: {}",
            pt.tolerable_qos
        );
        assert!(
            pt.good_qos > 0.9,
            "good QoS should mostly hold at moderate injection: {}",
            pt.good_qos
        );
    }

    #[test]
    fn aggressive_injection_degrades_good_qos() {
        // Past the capacity knee (p = 0.9, L = 100 ms pushes per-request
        // core time past what four cores can serve), requests queue up:
        // large temperature reductions, collapsing "good" QoS — the right
        // side of Figure 6.
        let data = run_subset(config(), &[0.9], &[100]);
        let pt = &data.points[0];
        assert!(
            pt.good_qos < 0.7,
            "good QoS should degrade under heavy injection: {}",
            pt.good_qos
        );
        assert!(pt.tolerable_qos >= pt.good_qos);
        assert!(
            pt.temp_reduction > 0.3,
            "deep injection should cool substantially: {}",
            pt.temp_reduction
        );
    }
}
