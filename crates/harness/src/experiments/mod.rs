//! One module per table/figure of the paper's evaluation (§3).
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`fig1`] | Figure 1 — race-to-idle vs Dimetrodon power traces |
//! | [`fig2`] | Figure 2 — temperature rise during cpuburn across `p` |
//! | [`fig3`] | Figure 3 — efficiency vs quantum length |
//! | [`fig4`] | Figure 4 — Dimetrodon vs VFS vs `p4tcc` sweeps |
//! | [`fig5`] | Figure 5 — global vs thread-specific control |
//! | [`fig6`] | Figure 6 — web-workload QoS vs temperature reduction |
//! | [`table1`] | Table 1 — per-workload rises and `T(r) = α·r^β` fits |
//! | [`validation`] | §3.3 — throughput-model and energy validations |
//! | [`sensitivity`] | reproduction-specific: where Figure 3's knee comes from |
//! | [`robustness`] | reproduction-specific: degraded telemetry × controller hardening |

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod robustness;
pub mod sensitivity;
pub mod table1;
pub mod validation;
