//! Figure 4: wide-range parameter sweeps of Dimetrodon against VFS and
//! `p4tcc` clock duty cycling, with pareto boundaries.
//!
//! The paper's comparison: Dimetrodon wins for temperature reductions up
//! to ~30 % (short idle quanta are extremely efficient), VFS wins beyond
//! (its quadratic `V²f` power reduction compounds), and `p4tcc` never
//! reaches a 1:1 trade-off because sub-quantum clock gating saves dynamic
//! power only and never enters a low-power state.

use dimetrodon::{InjectionModel, InjectionParams};
use dimetrodon_analysis::{pareto_frontier, TradeoffPoint};
use dimetrodon_power::PStateId;
use dimetrodon_sim_core::SimDuration;

use crate::runner::{Actuation, RunConfig, RunOutcome, SaturatingWorkload};
use crate::sweep::{run_sweep, SweepPoint as EnginePoint};

/// Dimetrodon's sweep grid: probabilities.
pub const SWEEP_P: [f64; 6] = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95];
/// Dimetrodon's sweep grid: quantum lengths (ms).
pub const SWEEP_L_MS: [u64; 6] = [1, 5, 10, 25, 50, 100];
/// TCC duty cycles swept (the hardware's 12.5 % granularity).
pub const SWEEP_TCC: [f64; 7] = [0.875, 0.75, 0.625, 0.5, 0.375, 0.25, 0.125];

/// A labelled trade-off point: benefit = temperature reduction, cost =
/// throughput reduction.
pub type SweepPoint = TradeoffPoint<String>;

/// The three mechanisms' sweeps and pareto boundaries.
#[derive(Debug, Clone)]
pub struct Fig4Data {
    /// All Dimetrodon `(p, L)` configurations.
    pub dimetrodon: Vec<SweepPoint>,
    /// All VFS setpoints.
    pub vfs: Vec<SweepPoint>,
    /// All TCC duty setpoints.
    pub tcc: Vec<SweepPoint>,
}

impl Fig4Data {
    /// Dimetrodon's pareto boundary.
    pub fn dimetrodon_pareto(&self) -> Vec<SweepPoint> {
        pareto_frontier(&self.dimetrodon)
    }

    /// VFS's pareto boundary.
    pub fn vfs_pareto(&self) -> Vec<SweepPoint> {
        pareto_frontier(&self.vfs)
    }

    /// TCC's pareto boundary.
    pub fn tcc_pareto(&self) -> Vec<SweepPoint> {
        pareto_frontier(&self.tcc)
    }
}

fn point(outcome: &RunOutcome, base: &RunOutcome, tag: String) -> SweepPoint {
    TradeoffPoint::new(
        outcome.temp_reduction_vs(base),
        outcome.throughput_reduction_vs(base),
        tag,
    )
}

/// Runs the full Figure 4 sweep.
pub fn run(config: RunConfig) -> Fig4Data {
    run_subset(config, &SWEEP_P, &SWEEP_L_MS, true)
}

/// Runs a reduced sweep (for tests): a subset of the Dimetrodon grid,
/// optionally including the baselines' full ladders (they are cheap — six
/// and seven runs).
pub fn run_subset(
    config: RunConfig,
    sweep_p: &[f64],
    sweep_l_ms: &[u64],
    include_baselines: bool,
) -> Fig4Data {
    // One flat job list: baseline, the Dimetrodon grid, then (optionally)
    // the VFS and TCC ladders, all fanned across the pool together.
    let mut sweep = vec![EnginePoint::new(
        SaturatingWorkload::CpuBurn,
        Actuation::None,
        config,
    )];
    let mut tags = Vec::new();
    for (i, &p) in sweep_p.iter().enumerate() {
        for (j, &l) in sweep_l_ms.iter().enumerate() {
            tags.push(format!("p={p},L={l}ms"));
            sweep.push(EnginePoint::new(
                SaturatingWorkload::CpuBurn,
                Actuation::Injection {
                    params: InjectionParams::new(p, SimDuration::from_millis(l)),
                    model: InjectionModel::Probabilistic,
                },
                RunConfig {
                    seed: config.seed.wrapping_add((i * 61 + j * 7 + 3) as u64),
                    ..config
                },
            ));
        }
    }
    let grid_len = tags.len();
    let mut vfs_tags = Vec::new();
    let mut tcc_tags = Vec::new();
    if include_baselines {
        for idx in 1..=5usize {
            vfs_tags.push(format!("P{idx}"));
            sweep.push(EnginePoint::new(
                SaturatingWorkload::CpuBurn,
                Actuation::Vfs {
                    pstate: PStateId(idx),
                },
                config,
            ));
        }
        for &duty in &SWEEP_TCC {
            tcc_tags.push(format!("duty={duty}"));
            sweep.push(EnginePoint::new(
                SaturatingWorkload::CpuBurn,
                Actuation::Tcc { duty },
                config,
            ));
        }
    }

    let outcomes = run_sweep(&sweep);
    let base = &outcomes[0];
    let grid = &outcomes[1..1 + grid_len];
    let vfs_runs = &outcomes[1 + grid_len..1 + grid_len + vfs_tags.len()];
    let tcc_runs = &outcomes[1 + grid_len + vfs_tags.len()..];

    let label = |runs: &[RunOutcome], run_tags: Vec<String>| -> Vec<SweepPoint> {
        runs.iter()
            .zip(run_tags)
            .map(|(outcome, tag)| point(outcome, base, tag))
            .collect()
    };
    Fig4Data {
        dimetrodon: label(grid, tags),
        vfs: label(vfs_runs, vfs_tags),
        tcc: label(tcc_runs, tcc_tags),
    }
}

/// Where the Dimetrodon and VFS pareto boundaries cross: the largest
/// temperature reduction — within the range both mechanisms can reach —
/// at which Dimetrodon's frontier cost is still at or below VFS's. The
/// paper reports ≈ 30 %. (Beyond VFS's frequency floor only Dimetrodon
/// can go at all; that region is excluded, since "crossover" means the
/// point where one should switch mechanism.)
pub fn crossover_temp_reduction(data: &Fig4Data) -> Option<f64> {
    let dim = data.dimetrodon_pareto();
    let vfs = data.vfs_pareto();
    let mut best = None;
    for step in 0..=100 {
        let r = step as f64 / 100.0;
        let dim_cost = dimetrodon_analysis::frontier_cost_at(&dim, r);
        let vfs_cost = dimetrodon_analysis::frontier_cost_at(&vfs, r);
        if let (Some(d), Some(v)) = (dim_cost, vfs_cost) {
            if d <= v {
                best = Some(r);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_shapes_hold() {
        // Reduced grid, full baselines.
        let data = run_subset(RunConfig::quick(41), &[0.25, 0.75], &[5, 100], true);
        assert_eq!(data.dimetrodon.len(), 4);
        assert_eq!(data.vfs.len(), 5);
        assert_eq!(data.tcc.len(), 7);

        // p4tcc: sub-1:1 everywhere (cost exceeds benefit).
        for p in &data.tcc {
            assert!(
                p.benefit < p.cost,
                "p4tcc should be sub-1:1: {} vs {} ({})",
                p.benefit,
                p.cost,
                p.tag
            );
        }

        // VFS: superior to 1:1 (quadratic power benefit).
        for p in &data.vfs {
            assert!(
                p.benefit > p.cost,
                "VFS should beat 1:1: {} vs {} ({})",
                p.benefit,
                p.cost,
                p.tag
            );
        }

        // Dimetrodon short-L point beats VFS at small reductions: compare
        // frontier costs at the smallest dimetrodon benefit.
        let dim = data.dimetrodon_pareto();
        assert!(!dim.is_empty());
        let small = &dim[0];
        assert!(
            small.efficiency() > 2.0,
            "short-quantum point should be efficient: {}",
            small.efficiency()
        );
    }

    #[test]
    fn vfs_has_limited_range_dimetrodon_does_not() {
        let data = run_subset(RunConfig::quick(42), &[0.9], &[100], true);
        // VFS bottoms out at the frequency floor (~50% temperature
        // reduction); Dimetrodon p=0.9 L=100ms reaches further.
        let max_vfs = data
            .vfs
            .iter()
            .map(|p| p.benefit)
            .fold(f64::MIN, f64::max);
        let max_dim = data
            .dimetrodon
            .iter()
            .map(|p| p.benefit)
            .fold(f64::MIN, f64::max);
        assert!(
            max_dim > max_vfs,
            "dimetrodon should reach deeper reductions: {max_dim} vs {max_vfs}"
        );
    }
}
