//! Robustness of closed-loop control under degraded telemetry
//! (reproduction-specific; no paper artefact).
//!
//! The paper's controllers assume trustworthy DTS readings. This
//! experiment asks what each controller variant does as the sensor path
//! degrades: a grid of fault intensity × controller hardening, where each
//! cell runs a saturating workload under a setpoint controller whose
//! temperature reads flow through a [`FaultyTelemetry`] source, with the
//! machine's reactive [`ThermalTrip`] armed as the safety net. Reported
//! per cell: setpoint tracking error over the tail, peak sensor
//! temperature, trip activations, throughput cost, and how much telemetry
//! was lost.
//!
//! The zero-intensity column runs an ideal sensor spec with an empty
//! plan — exact DTS reads, no randomness drawn — so it doubles as a live
//! check that the fault machinery at rest changes nothing.

use dimetrodon::{DimetrodonHook, PolicyHandle, SetpointController, TelemetryFilter};
use dimetrodon_faults::{
    FaultKind, FaultPlan, FaultTarget, FaultyHook, FaultyTelemetry, SensorSpec,
};
use dimetrodon_machine::{CoreId, Machine, MachineConfig, ThermalTrip};
use dimetrodon_sched::{SchedHook, System, ThreadKind};
use dimetrodon_sim_core::{derive_seed, SimDuration, SimTime};
use dimetrodon_workload::CpuBurn;

use crate::runner::RunConfig;
use crate::sweep::parallel_map;

/// The mean-hotspot setpoint the preventive controller holds, °C.
pub const SETPOINT_CELSIUS: f64 = 45.0;
/// The reactive trip's critical hotspot threshold, °C. Below the
/// unconstrained full-load hotspot (~54 °C on the calibrated platform),
/// so losing the preventive loop genuinely engages the trip.
pub const CRITICAL_CELSIUS: f64 = 51.0;
/// The controller's idle quantum.
pub const QUANTUM: SimDuration = SimDuration::from_millis(10);

/// Default fault intensities swept. `0.0` is the pristine path; at
/// `0.5` and above the hot core's sensor also drops out entirely and a
/// fraction of scheduler hooks goes missing.
pub const SWEEP_INTENSITY: [f64; 4] = [0.0, 0.25, 0.5, 0.75];

/// How much telemetry conditioning the controller gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerVariant {
    /// Raw readings straight into the integrator (pre-hardening).
    Baseline,
    /// Median filtering, outlier rejection, dropout fallback.
    Hardened,
}

impl ControllerVariant {
    /// Both variants, in sweep order.
    pub const ALL: [ControllerVariant; 2] =
        [ControllerVariant::Baseline, ControllerVariant::Hardened];

    /// The variant's column label.
    pub fn label(self) -> &'static str {
        match self {
            ControllerVariant::Baseline => "baseline",
            ControllerVariant::Hardened => "hardened",
        }
    }
}

/// One cell of the robustness grid.
#[derive(Debug, Clone)]
pub struct RobustnessCell {
    /// Fault intensity in `[0, 1]`.
    pub intensity: f64,
    /// Which controller hardening ran.
    pub variant: ControllerVariant,
    /// RMS of (dispatch-observed sensor temperature − setpoint) over the
    /// tail window, °C.
    pub tracking_rms: f64,
    /// Hottest dispatch-observed sensor temperature of the whole run, °C.
    pub peak_temp: f64,
    /// Times the reactive trip latched.
    pub trips: u64,
    /// Executed CPU time per core-second, in `[0, 1]`.
    pub throughput: f64,
    /// The injection probability in force at the end of the run.
    pub final_p: f64,
    /// Controller ticks spent with telemetry lost (fallback engaged).
    pub fallback_ticks: u64,
    /// Sensor reads lost to dropout faults.
    pub dropped_reads: u64,
}

/// The sensor degradation at `intensity`: noise and ambient dropout grow
/// linearly; quantization and staleness switch on with any fault at all.
fn spec_at(intensity: f64) -> SensorSpec {
    if intensity <= 0.0 {
        return SensorSpec::ideal();
    }
    SensorSpec {
        noise_sigma: 2.0 * intensity,
        quantum_celsius: 0.5,
        staleness: SimDuration::from_millis(1),
        dropout_p: intensity,
        power_noise_sigma: 0.0,
    }
}

/// The scheduled faults at `intensity`: from 0.5 the hot core's sensor
/// goes permanently dark a third of the way in, and a slice of scheduler
/// hook invocations is dropped for the middle third.
fn plan_at(intensity: f64, duration: SimDuration) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if intensity >= 0.5 {
        let third = SimDuration::from_nanos(duration.as_nanos() / 3);
        plan = plan
            .with(
                SimTime::ZERO + third,
                FaultTarget::Core(0),
                FaultKind::Dropout,
                None,
            )
            .with(
                SimTime::ZERO + third,
                FaultTarget::All,
                FaultKind::DropHooks(intensity / 2.0),
                Some(third),
            );
    }
    plan
}

/// Builds one cell's system. Returns the system and the policy handle so
/// callers can read the commanded `p`.
fn build_cell(
    intensity: f64,
    variant: ControllerVariant,
    config: RunConfig,
) -> (System, PolicyHandle) {
    let mut machine_config = MachineConfig::xeon_e5520();
    machine_config.thermal_trip = Some(ThermalTrip::prochot_at(CRITICAL_CELSIUS));
    // simlint::allow(R1): a perturbed preset; invalid means a harness bug.
    let mut machine = Machine::new(machine_config).expect("machine config is valid");
    machine.settle_idle();

    let policy = PolicyHandle::new();
    let hook = DimetrodonHook::new(policy.clone(), config.seed ^ 0xD13E);
    let plan = plan_at(intensity, config.duration);
    // Every cell reads the per-core DTS path so the controlled quantity
    // (mean hotspot temperature) is the same across the grid; at zero
    // intensity the spec is ideal and the plan empty, so the reads are
    // exact and draw no randomness.
    let mut controller = SetpointController::new(hook, SETPOINT_CELSIUS, QUANTUM)
        .with_telemetry(Box::new(FaultyTelemetry::new(
            spec_at(intensity),
            plan.clone(),
            config.seed ^ 0x5E45,
        )));
    if variant == ControllerVariant::Hardened {
        controller = controller.with_filter(TelemetryFilter::hardened());
    }
    let installed: Box<dyn SchedHook> = if plan.has_scheduler_faults() {
        Box::new(FaultyHook::new(
            Box::new(controller),
            plan,
            config.seed ^ 0xFA17,
        ))
    } else {
        Box::new(controller)
    };

    let mut system = System::new(machine);
    system.set_hook(installed);
    (system, policy)
}

/// The installed controller, whether or not a [`FaultyHook`] wraps it.
fn controller_of(system: &System) -> &SetpointController {
    let hook = system.hook();
    let direct = hook
        .as_any()
        // simlint::allow(R1): build_cell installs a known hook shape.
        .expect("robustness hook exposes as_any");
    if let Some(controller) = direct.downcast_ref::<SetpointController>() {
        return controller;
    }
    direct
        .downcast_ref::<FaultyHook>()
        .and_then(|faulty| faulty.inner().as_any())
        .and_then(|any| any.downcast_ref::<SetpointController>())
        // simlint::allow(R1): same known shape, one level deeper.
        .expect("wrapped robustness hook is a SetpointController")
}

/// Runs one cell of the grid.
pub fn run_cell(intensity: f64, variant: ControllerVariant, config: RunConfig) -> RobustnessCell {
    let (mut system, policy) = build_cell(intensity, variant, config);
    let cores = system.machine().num_cores();
    let ids: Vec<_> = (0..cores)
        .map(|_| system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite())))
        .collect();
    system.run_until(SimTime::ZERO + config.duration);

    let measure_from = SimTime::ZERO + (config.duration - config.measure_window);
    let mut sq_sum = 0.0;
    let mut samples = 0usize;
    let mut peak = f64::MIN;
    for core in 0..cores {
        for (t, v) in system.dispatch_temp_series(CoreId(core)).iter() {
            peak = peak.max(v);
            if t >= measure_from {
                sq_sum += (v - SETPOINT_CELSIUS).powi(2);
                samples += 1;
            }
        }
    }
    let executed: f64 = ids
        .iter()
        .map(|&id| system.thread_stats(id).cpu_executed.as_secs_f64())
        .sum();

    let controller = controller_of(&system);
    RobustnessCell {
        intensity,
        variant,
        tracking_rms: if samples == 0 {
            f64::NAN
        } else {
            (sq_sum / samples as f64).sqrt()
        },
        peak_temp: peak,
        trips: system.machine().trip_count(),
        throughput: executed / (cores as f64 * config.duration.as_secs_f64()),
        final_p: policy.global().map_or(0.0, |params| params.p()),
        fallback_ticks: controller.fallback_ticks(),
        dropped_reads: controller.telemetry().dropped_reads(),
    }
}

/// Runs the full grid (intensities × variants) across the worker pool.
pub fn run(config: RunConfig) -> Vec<RobustnessCell> {
    run_subset(config, &SWEEP_INTENSITY, &ControllerVariant::ALL)
}

/// Runs a subset of the grid. Cells are seeded from their grid index, so
/// results are bit-identical across worker counts.
pub fn run_subset(
    config: RunConfig,
    intensities: &[f64],
    variants: &[ControllerVariant],
) -> Vec<RobustnessCell> {
    let cells: Vec<(f64, ControllerVariant)> = intensities
        .iter()
        .flat_map(|&i| variants.iter().map(move |&v| (i, v)))
        .collect();
    parallel_map(cells.len(), |index| {
        let (intensity, variant) = cells[index];
        run_cell(
            intensity,
            variant,
            RunConfig {
                seed: derive_seed(config.seed, index as u64),
                ..config
            },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::set_jobs;

    #[test]
    fn acceptance_hot_core_dropout_never_diverges_and_trip_bounds_peak() {
        // The PR's acceptance criterion: ambient dropout at 50% plus the
        // hot core permanently dark. The hardened controller must keep p
        // in bounds, temperatures finite, and the trip must bound the
        // peak near the critical threshold.
        let cell = run_cell(0.5, ControllerVariant::Hardened, RunConfig::quick(31));
        assert!(
            cell.final_p.is_finite()
                && (0.0..=SetpointController::DEFAULT_P_MAX).contains(&cell.final_p),
            "p diverged: {}",
            cell.final_p
        );
        assert!(cell.peak_temp.is_finite(), "peak temperature is not a number");
        assert!(
            cell.peak_temp < CRITICAL_CELSIUS + 1.0,
            "trip failed to bound the peak: {} vs critical {}",
            cell.peak_temp,
            CRITICAL_CELSIUS
        );
        assert!(cell.dropped_reads > 0, "the scenario must actually drop reads");
    }

    #[test]
    fn trip_engages_once_telemetry_is_lost() {
        // Intensity 1.0: ambient dropout probability 1, every sensor
        // dark. The preventive loop stands down and the reactive trip
        // must be what holds the line.
        let cell = run_cell(1.0, ControllerVariant::Hardened, RunConfig::quick(32));
        assert!(cell.trips > 0, "reactive trip never latched");
        assert!(cell.fallback_ticks > 0, "controller never entered fallback");
        assert!(cell.peak_temp < CRITICAL_CELSIUS + 1.0, "peak {}", cell.peak_temp);
    }

    #[test]
    fn zero_intensity_cells_track_tightly_and_never_trip() {
        let cell = run_cell(0.0, ControllerVariant::Baseline, RunConfig::quick(33));
        assert_eq!(cell.trips, 0);
        assert_eq!(cell.dropped_reads, 0);
        assert_eq!(cell.fallback_ticks, 0);
        // Dispatch-point hotspot reads ripple several degrees around the
        // mean during injection, so "tight" is a few °C of RMS.
        assert!(cell.tracking_rms < 5.0, "clean tracking RMS {}", cell.tracking_rms);
    }

    #[test]
    fn grid_is_bit_identical_across_worker_counts() {
        let reference = run_subset(
            RunConfig::quick(34),
            &[0.0, 0.5],
            &ControllerVariant::ALL,
        );
        for jobs in [1, 4] {
            set_jobs(jobs);
            let cells = run_subset(
                RunConfig::quick(34),
                &[0.0, 0.5],
                &ControllerVariant::ALL,
            );
            set_jobs(0);
            for (a, b) in reference.iter().zip(&cells) {
                assert_eq!(a.tracking_rms.to_bits(), b.tracking_rms.to_bits(), "jobs {jobs}");
                assert_eq!(a.peak_temp.to_bits(), b.peak_temp.to_bits(), "jobs {jobs}");
                assert_eq!(a.trips, b.trips, "jobs {jobs}");
                assert_eq!(a.throughput.to_bits(), b.throughput.to_bits(), "jobs {jobs}");
            }
        }
    }

    #[test]
    fn hardening_beats_baseline_under_heavy_faults() {
        // Under heavy sensor faults the hardened variant should track the
        // setpoint no worse than the raw integrator.
        let cells = run_subset(RunConfig::quick(35), &[0.75], &ControllerVariant::ALL);
        let baseline = &cells[0];
        let hardened = &cells[1];
        assert!(
            hardened.tracking_rms <= baseline.tracking_rms + 0.5,
            "hardened {} vs baseline {}",
            hardened.tracking_rms,
            baseline.tracking_rms
        );
    }
}
