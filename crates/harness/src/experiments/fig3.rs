//! Figure 3: efficiency (temperature : throughput trade-off ratio) of
//! Dimetrodon on cpuburn, varying idle quantum length L and proportion p.
//!
//! The paper's central characterisation: short idle quanta are
//! disproportionately efficient (up to ~16:1 at small reductions) because
//! each core cools exponentially quickly within a short window; longer
//! quanta show diminishing marginal benefit. Lower-p curves are noisier
//! because they rest on fewer injections.

use dimetrodon::{InjectionModel, InjectionParams};
use dimetrodon_sim_core::SimDuration;

use crate::runner::{Actuation, RunConfig, SaturatingWorkload};
use crate::sweep::{run_sweep, SweepPoint};

/// The probabilities plotted in Figure 3.
pub const PROPORTIONS: [f64; 4] = [0.1, 0.25, 0.5, 0.75];
/// The quantum lengths swept (ms), spanning the figure's log axis.
pub const QUANTA_MS: [u64; 7] = [1, 2, 5, 10, 25, 50, 100];

/// One `(p, L)` measurement.
#[derive(Debug, Clone, Copy)]
pub struct EfficiencyPoint {
    /// Injection probability.
    pub p: f64,
    /// Idle quantum length, ms.
    pub l_ms: u64,
    /// Temperature reduction over idle, relative to unconstrained.
    pub temp_reduction: f64,
    /// Throughput reduction relative to unconstrained.
    pub throughput_reduction: f64,
}

impl EfficiencyPoint {
    /// The figure's y-axis: temperature : throughput reduction ratio.
    pub fn efficiency(&self) -> f64 {
        if self.throughput_reduction <= 0.0 {
            return 0.0;
        }
        self.temp_reduction / self.throughput_reduction
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// One point per `(p, L)` combination.
    pub points: Vec<EfficiencyPoint>,
}

impl Fig3Data {
    /// The points of one probability's curve, ordered by L.
    pub fn curve(&self, p: f64) -> Vec<EfficiencyPoint> {
        let mut pts: Vec<EfficiencyPoint> = self
            .points
            .iter()
            .filter(|pt| (pt.p - p).abs() < 1e-9)
            .copied()
            .collect();
        pts.sort_by_key(|pt| pt.l_ms);
        pts
    }
}

/// Runs the Figure 3 sweep. The unconstrained baseline is measured once
/// and shared.
pub fn run(config: RunConfig) -> Fig3Data {
    run_subset(config, &PROPORTIONS, &QUANTA_MS)
}

/// Runs a subset of the sweep (for tests and quick looks).
pub fn run_subset(config: RunConfig, proportions: &[f64], quanta_ms: &[u64]) -> Fig3Data {
    // Point 0 is the shared unconstrained baseline; the grid follows.
    let mut sweep = vec![SweepPoint::new(
        SaturatingWorkload::CpuBurn,
        Actuation::None,
        config,
    )];
    let mut grid = Vec::new();
    for (i, &p) in proportions.iter().enumerate() {
        for (j, &l_ms) in quanta_ms.iter().enumerate() {
            grid.push((p, l_ms));
            sweep.push(SweepPoint::new(
                SaturatingWorkload::CpuBurn,
                Actuation::Injection {
                    params: InjectionParams::new(p, SimDuration::from_millis(l_ms)),
                    model: InjectionModel::Probabilistic,
                },
                RunConfig {
                    seed: config.seed.wrapping_add((i * 97 + j * 13 + 1) as u64),
                    ..config
                },
            ));
        }
    }
    let mut outcomes = run_sweep(&sweep);
    let base = outcomes.remove(0);
    let points = grid
        .into_iter()
        .zip(&outcomes)
        .map(|((p, l_ms), outcome)| EfficiencyPoint {
            p,
            l_ms,
            temp_reduction: outcome.temp_reduction_vs(&base),
            throughput_reduction: outcome.throughput_reduction_vs(&base),
        })
        .collect();
    Fig3Data { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::characterize;
    use crate::sweep;

    /// The pre-engine implementation, kept verbatim as the golden
    /// sequential reference for the determinism regression test.
    fn run_subset_sequential(
        config: RunConfig,
        proportions: &[f64],
        quanta_ms: &[u64],
    ) -> Fig3Data {
        let base = characterize(SaturatingWorkload::CpuBurn, Actuation::None, config);
        let mut points = Vec::new();
        for (i, &p) in proportions.iter().enumerate() {
            for (j, &l_ms) in quanta_ms.iter().enumerate() {
                let outcome = characterize(
                    SaturatingWorkload::CpuBurn,
                    Actuation::Injection {
                        params: InjectionParams::new(p, SimDuration::from_millis(l_ms)),
                        model: InjectionModel::Probabilistic,
                    },
                    RunConfig {
                        seed: config.seed.wrapping_add((i * 97 + j * 13 + 1) as u64),
                        ..config
                    },
                );
                points.push(EfficiencyPoint {
                    p,
                    l_ms,
                    temp_reduction: outcome.temp_reduction_vs(&base),
                    throughput_reduction: outcome.throughput_reduction_vs(&base),
                });
            }
        }
        Fig3Data { points }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        // Parallelism must never change science output: the engine at any
        // worker count reproduces the old sequential loop bit for bit.
        let config = RunConfig {
            duration: SimDuration::from_secs(50),
            measure_window: SimDuration::from_secs(10),
            warmup: SimDuration::ZERO,
            seed: 33,
        };
        let golden = run_subset_sequential(config, &[0.25, 0.75], &[5, 100]);
        for jobs in [1, 4] {
            sweep::set_jobs(jobs);
            let data = run_subset(config, &[0.25, 0.75], &[5, 100]);
            sweep::set_jobs(0);
            assert_eq!(data.points.len(), golden.points.len(), "jobs={jobs}");
            for (got, want) in data.points.iter().zip(&golden.points) {
                assert_eq!(got.p.to_bits(), want.p.to_bits(), "jobs={jobs}");
                assert_eq!(got.l_ms, want.l_ms, "jobs={jobs}");
                assert_eq!(
                    got.temp_reduction.to_bits(),
                    want.temp_reduction.to_bits(),
                    "jobs={jobs}: temp {} vs {}",
                    got.temp_reduction,
                    want.temp_reduction
                );
                assert_eq!(
                    got.throughput_reduction.to_bits(),
                    want.throughput_reduction.to_bits(),
                    "jobs={jobs}: throughput {} vs {}",
                    got.throughput_reduction,
                    want.throughput_reduction
                );
            }
        }
    }

    #[test]
    fn short_quanta_are_more_efficient() {
        // A reduced sweep: p = 0.5 across short/medium/long quanta.
        let data = run_subset(RunConfig::quick(31), &[0.5], &[2, 25, 100]);
        let curve = data.curve(0.5);
        assert_eq!(curve.len(), 3);
        let effs: Vec<f64> = curve.iter().map(|p| p.efficiency()).collect();
        assert!(
            effs[0] > effs[1] && effs[1] > effs[2],
            "efficiency should fall with L: {effs:?}"
        );
        // Figure 3's magnitudes: several-to-one at short L, near 1:1 at
        // L = 100 ms.
        assert!(effs[0] > 3.0, "short-quantum efficiency {}", effs[0]);
        assert!((0.5..2.5).contains(&effs[2]), "long-quantum efficiency {}", effs[2]);
    }

    #[test]
    fn throughput_cost_grows_with_l_at_fixed_p() {
        let data = run_subset(RunConfig::quick(32), &[0.25], &[5, 100]);
        let curve = data.curve(0.25);
        assert!(
            curve[1].throughput_reduction > curve[0].throughput_reduction,
            "longer L must cost more throughput"
        );
        assert!(
            curve[1].temp_reduction > curve[0].temp_reduction,
            "longer L must buy more cooling"
        );
    }
}
