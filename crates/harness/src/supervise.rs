//! Sweep supervision: panic quarantine, deadlines, bounded retry, and a
//! crash-resumable journal.
//!
//! The bare pool in [`crate::sweep`] treats a sweep as all-or-nothing: one
//! panicking point tears the whole run down, a hung point hangs it
//! forever, and a killed process restarts from zero. For the short sweeps
//! of the paper that is fine; for the long fleet-style runs ROADMAP aims
//! at it is not. This module wraps every point of a sweep in a supervisor
//! that can
//!
//! * **quarantine** a panicking point ([`PanicPolicy::Quarantine`]) and
//!   keep the rest of the grid running, surfacing the failure as a
//!   [`PointOutcome::Panicked`] and an [`Incident`] instead of an abort
//!   (`--strict` restores the abort-on-panic behaviour bit-for-bit);
//! * enforce a **per-point deadline** via a watchdog thread and a
//!   **sweep-level time budget**, so a pathological `(p, L)` point times
//!   out ([`PointOutcome::TimedOut`]) or is skipped
//!   ([`PointOutcome::Skipped`]) instead of hanging `run_all`;
//! * **retry** transiently failing points a bounded number of times with
//!   deterministic backoff — attempt 0 runs the point's own seed, attempt
//!   `k > 0` runs `derive_seed(derive_seed(seed, index), k)`, so retried
//!   output is still a pure function of the grid, never of wall clock;
//! * **journal** completed points to disk (`results/.journal/`) in a
//!   dependency-free text format, keyed by a stable fingerprint of the
//!   [`SweepPoint`]; a killed run restarted with `--resume` replays
//!   journaled points instead of recomputing them and produces
//!   byte-identical CSVs.
//!
//! # Determinism
//!
//! Supervision never changes *values*, only *availability*. A point that
//! completes produces exactly the outcome the bare pool would have
//! produced: quarantine is `catch_unwind` around the same call, the
//! watchdog runs the point on a dedicated thread with the same inputs,
//! and replay restores the journaled measurements bit-for-bit (floats
//! travel as IEEE-754 bit patterns, never through decimal). Wall-clock
//! time decides only whether a point is *attempted*; it never flows into
//! any result value — which is why this module carries the workspace's
//! only sanctioned `Instant::now` suppressions.
//!
//! The journal stores the **measurement projection** of a
//! [`RunOutcome`] — the scalar metrics and the observed dispatch curve,
//! which is everything any sweep-shaped experiment reads and everything
//! any CSV contains. The raw diagnostic `temp_series` (hundreds of
//! thousands of samples per sweep) is deliberately not journaled; a
//! replayed outcome carries an empty series whose name records the
//! original sample count.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;
// simlint::allow(D1): the supervisor is the one sanctioned wall-clock
// consumer — deadlines and budgets gate *whether* a point runs, and no
// reading ever flows into a result value.
use std::time::Instant;

use dimetrodon_sim_core::{derive_seed, TimeSeries};

use crate::runner::{characterize_on, RunOutcome};
use crate::sweep::{parallel_map, SweepPoint};

/// What the supervisor does when a point panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicPolicy {
    /// Re-raise the panic and let the pool abort the sweep — today's
    /// behaviour, selected by `--strict`.
    Strict,
    /// Catch the panic, retry if attempts remain, and otherwise record an
    /// [`Incident`] and return [`PointOutcome::Panicked`].
    Quarantine,
}

/// Configuration of the supervision layer, installed globally with
/// [`install`] (the bench binaries and CLI build one from their flags)
/// and consulted by [`crate::sweep::run_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Panic handling; defaults to [`PanicPolicy::Quarantine`].
    pub policy: PanicPolicy,
    /// Wall-clock deadline for a single attempt of a single point; `None`
    /// (the default) lets a point run forever.
    pub point_deadline: Option<Duration>,
    /// Wall-clock budget for a whole sweep: points whose *start* would
    /// fall past the budget are skipped. `None` (the default) is
    /// unbounded.
    pub sweep_budget: Option<Duration>,
    /// Extra attempts after a failed first one; retries re-run the point
    /// with a seed derived from `(point seed, index, attempt)`.
    pub retries: u32,
    /// Directory for journal files (`results/.journal`); `None` disables
    /// journaling entirely.
    pub journal_dir: Option<PathBuf>,
    /// Replay completed points from an existing journal (`--resume`).
    /// When `false` a pre-existing journal for the sweep is truncated.
    pub resume: bool,
    /// Whether retries sleep the deterministic linear backoff between
    /// attempts. The delay only spaces out attempts against transient
    /// environmental trouble — it never influences results — so the
    /// default is on for the binaries but off under `cfg(test)`, where
    /// retried deterministic points would just burn wall-clock.
    pub backoff: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            policy: PanicPolicy::Quarantine,
            point_deadline: None,
            sweep_budget: None,
            retries: 0,
            journal_dir: None,
            resume: false,
            backoff: !cfg!(test),
        }
    }
}

/// The supervised result of one sweep point.
#[derive(Debug, Clone)]
pub enum PointOutcome {
    /// The point completed (possibly after retries, possibly replayed
    /// from the journal) with exactly the outcome the bare pool would
    /// have produced.
    Ok(RunOutcome),
    /// Every attempt panicked; `msg` is the first attempt's payload.
    Panicked {
        /// The panic message of the first failed attempt.
        msg: String,
    },
    /// Every attempt overran the per-point deadline.
    TimedOut,
    /// The sweep-level time budget was exhausted before the point
    /// started.
    Skipped,
}

impl PointOutcome {
    /// Whether the point produced a real outcome.
    pub fn is_ok(&self) -> bool {
        matches!(self, PointOutcome::Ok(_))
    }

    /// Collapses to a [`RunOutcome`]: real measurements for
    /// [`PointOutcome::Ok`], the [`unavailable_outcome`] placeholder
    /// (NaN temperatures, zero throughput) for every failure.
    pub fn into_outcome(self) -> RunOutcome {
        match self {
            PointOutcome::Ok(outcome) => outcome,
            _ => unavailable_outcome(),
        }
    }
}

/// The placeholder outcome a quarantined/timed-out/skipped point
/// contributes to a sweep: NaN temperatures, zero throughput, an empty
/// series, and no injected idles. Downstream reductions treat NaN rows
/// as missing data.
pub fn unavailable_outcome() -> RunOutcome {
    RunOutcome {
        idle_temp: f64::NAN,
        tail_temp: f64::NAN,
        throughput: 0.0,
        temp_series: TimeSeries::new("unavailable"),
        observed_curve: Vec::new(),
        injected_idles: 0,
    }
}

/// Why a point failed under supervision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// All attempts panicked and the point was quarantined.
    Quarantined,
    /// All attempts overran the per-point deadline.
    TimedOut,
    /// The sweep budget was exhausted before the point started.
    Skipped,
}

/// A point failure recorded for end-of-run reporting: the bench binaries
/// print incidents and exit nonzero when any occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Hex fingerprint of the sweep the point belonged to.
    pub sweep: String,
    /// Index of the point within its sweep.
    pub point: usize,
    /// What went wrong.
    pub kind: IncidentKind,
    /// Attempts made (0 for a skipped point).
    pub attempts: u32,
    /// Human-readable detail (panic message for quarantines).
    pub detail: String,
}

impl std::fmt::Display for Incident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            IncidentKind::Quarantined => write!(
                f,
                "sweep {} point {}: quarantined after {} attempt(s): {}",
                self.sweep, self.point, self.attempts, self.detail
            ),
            IncidentKind::TimedOut => write!(
                f,
                "sweep {} point {}: timed out after {} attempt(s)",
                self.sweep, self.point, self.attempts
            ),
            IncidentKind::Skipped => write!(
                f,
                "sweep {} point {}: skipped ({})",
                self.sweep, self.point, self.detail
            ),
        }
    }
}

/// The globally installed supervisor configuration, if any.
static CONFIG: Mutex<Option<SupervisorConfig>> = Mutex::new(None);
/// Incidents accumulated across every supervised sweep in this process.
static INCIDENTS: Mutex<Vec<Incident>> = Mutex::new(Vec::new());
/// Points replayed from journals instead of recomputed.
static REPLAYED: AtomicUsize = AtomicUsize::new(0);

/// Installs `config` as the process-wide supervisor;
/// [`crate::sweep::run_sweep`] consults it on every call.
pub fn install(config: SupervisorConfig) {
    *CONFIG.lock().unwrap_or_else(|e| e.into_inner()) = Some(config);
}

/// Removes the installed supervisor; sweeps revert to the bare pool.
pub fn clear() {
    *CONFIG.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The currently installed supervisor configuration, if any.
pub fn installed() -> Option<SupervisorConfig> {
    CONFIG.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Drains the incidents recorded since the last call (or process start).
pub fn take_incidents() -> Vec<Incident> {
    std::mem::take(&mut *INCIDENTS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Drains the count of points replayed from journals since the last call.
pub fn take_replayed() -> usize {
    REPLAYED.swap(0, Ordering::Relaxed)
}

fn record_incident(incident: Incident) {
    INCIDENTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(incident);
}

// --- Fingerprints -------------------------------------------------------

/// FNV-1a 64-bit over a byte slice: tiny, dependency-free, and stable
/// across runs and platforms. Public so downstream crates (the fleet
/// journal) fingerprint with the same hash the sweep journal uses.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A stable fingerprint of one sweep point: FNV-1a64 over its exhaustive
/// `Debug` rendering (machine, workload, actuation, run config, seed).
/// Two points fingerprint equal exactly when they describe the same
/// computation, in which case their outcomes are interchangeable.
pub fn fingerprint_point(point: &SweepPoint) -> u64 {
    fnv1a64(format!("{point:?}").as_bytes())
}

/// A stable fingerprint of a whole sweep (order-sensitive), used to name
/// the sweep's journal file.
pub fn fingerprint_sweep(points: &[SweepPoint]) -> u64 {
    let mut text = String::new();
    for point in points {
        text.push_str(&format!("{point:?}"));
        text.push('\n');
    }
    fnv1a64(text.as_bytes())
}

// --- Journal format -----------------------------------------------------
//
// One text line per completed point, whitespace-separated, floats as
// 16-hex-digit IEEE-754 bit patterns (exact round-trip, no decimal):
//
//   point <fp> <idle> <tail> <throughput> <idles> <name-hex> <series-len>
//         <curve-len> <t:v,t:v,...|->
//
// Lines starting with `#` are comments; a truncated final line (the
// process was SIGKILLed mid-write) fails to decode and is ignored.

/// Serializes one completed point as a single journal line (no trailing
/// newline). Exposed for the journal property tests.
pub fn encode_entry(fingerprint: u64, outcome: &RunOutcome) -> String {
    let mut name_hex = String::with_capacity(2 + outcome.temp_series.name().len() * 2);
    name_hex.push('n');
    for b in outcome.temp_series.name().bytes() {
        name_hex.push_str(&format!("{b:02x}"));
    }
    let mut curve = String::with_capacity(outcome.observed_curve.len() * 34);
    for (i, (t, v)) in outcome.observed_curve.iter().enumerate() {
        if i > 0 {
            curve.push(',');
        }
        curve.push_str(&format!("{:016x}:{:016x}", t.to_bits(), v.to_bits()));
    }
    if curve.is_empty() {
        curve.push('-');
    }
    format!(
        "point {:016x} {:016x} {:016x} {:016x} {} {} {} {} {}",
        fingerprint,
        outcome.idle_temp.to_bits(),
        outcome.tail_temp.to_bits(),
        outcome.throughput.to_bits(),
        outcome.injected_idles,
        name_hex,
        outcome.temp_series.len(),
        outcome.observed_curve.len(),
        curve,
    )
}

/// Parses a full-width (16-digit) hex `u64`. The fixed width is what
/// makes SIGKILL truncation detectable: a bit pattern cut short never
/// parses, so a partial final line is dropped instead of misread.
fn parse_hex_u64(token: &str) -> Option<u64> {
    if token.len() != 16 {
        return None;
    }
    u64::from_str_radix(token, 16).ok()
}

fn parse_finite_f64(token: &str) -> Option<f64> {
    let value = f64::from_bits(parse_hex_u64(token)?);
    value.is_finite().then_some(value)
}

fn decode_name(token: &str) -> Option<String> {
    let hex = token.strip_prefix('n')?;
    if hex.len() % 2 != 0 {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for i in (0..hex.len()).step_by(2) {
        bytes.push(u8::from_str_radix(&hex[i..i + 2], 16).ok()?);
    }
    String::from_utf8(bytes).ok()
}

/// Parses one journal line back into `(fingerprint, outcome)`. Returns
/// `None` for comments, blanks, and malformed or truncated lines — a
/// journal whose final line was cut short by SIGKILL simply loses that
/// one point. Exposed for the journal property tests.
pub fn decode_entry(line: &str) -> Option<(u64, RunOutcome)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() != 10 || tokens[0] != "point" {
        return None;
    }
    let fingerprint = parse_hex_u64(tokens[1])?;
    let idle_temp = parse_finite_f64(tokens[2])?;
    let tail_temp = parse_finite_f64(tokens[3])?;
    let throughput = parse_finite_f64(tokens[4])?;
    let injected_idles: u64 = tokens[5].parse().ok()?;
    let name = decode_name(tokens[6])?;
    let series_len: usize = tokens[7].parse().ok()?;
    let curve_len: usize = tokens[8].parse().ok()?;
    let mut observed_curve = Vec::with_capacity(curve_len);
    if curve_len > 0 {
        for pair in tokens[9].split(',') {
            let (t, v) = pair.split_once(':')?;
            observed_curve.push((parse_finite_f64(t)?, parse_finite_f64(v)?));
        }
    } else if tokens[9] != "-" {
        return None;
    }
    if observed_curve.len() != curve_len {
        return None;
    }
    // The raw series is not journaled (see module docs): a replayed
    // outcome carries an empty series whose name records the original
    // name and sample count for diagnostics.
    let temp_series = TimeSeries::new(format!("replayed:{name}:{series_len}"));
    Some((
        fingerprint,
        RunOutcome {
            idle_temp,
            tail_temp,
            throughput,
            temp_series,
            observed_curve,
            injected_idles,
        },
    ))
}

/// The journal file path for a sweep inside `dir`.
pub fn journal_path(dir: &Path, sweep_fingerprint: u64) -> PathBuf {
    dir.join(format!("sweep-{sweep_fingerprint:016x}.journal"))
}

/// Keep-last-K retention for the journal directory (`--journal-gc K`):
/// deletes `*.journal` files beyond the `keep` most recently modified,
/// except that a file whose name embeds any of `active_fingerprints`
/// (the hex forms every journal family uses) is **never** deleted, no
/// matter how old — garbage collection must not eat the journal the
/// current run is appending to or about to resume from. Returns how
/// many files were removed; all I/O errors are best-effort skips, so a
/// GC pass can never fail a run.
pub fn gc_journals(dir: &Path, keep: usize, active_fingerprints: &[u64]) -> usize {
    let active: Vec<String> = active_fingerprints
        .iter()
        .map(|fp| format!("{fp:016x}"))
        .collect();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    // simlint::allow(D1): file mtimes order GC candidates only; no
    // simulated result ever observes them.
    let mut journals: Vec<(std::time::SystemTime, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            let name = path.file_name()?.to_str()?;
            if !name.ends_with(".journal") {
                return None;
            }
            if active.iter().any(|hex| name.contains(hex.as_str())) {
                return None;
            }
            let modified = entry.metadata().ok()?.modified().ok()?;
            Some((modified, path))
        })
        .collect();
    // Newest first; ties break on the path so the order is total.
    journals.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let mut removed = 0;
    for (_, path) in journals.into_iter().skip(keep) {
        if std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Loads every decodable entry of a journal file; keyed by point
/// fingerprint, later entries win. A missing file is an empty journal.
fn load_journal(path: &Path) -> std::collections::BTreeMap<u64, RunOutcome> {
    let mut replayed = std::collections::BTreeMap::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        for line in text.lines() {
            if let Some((fingerprint, outcome)) = decode_entry(line) {
                replayed.insert(fingerprint, outcome);
            }
        }
    }
    replayed
}

/// Opens the journal for appending (resume) or truncated fresh (normal
/// run). Returns `None`, with a warning, if the directory or file cannot
/// be created — the sweep still runs, just without crash resumability.
fn open_journal(path: &Path, resume: bool, points: usize, sweep: u64) -> Option<File> {
    if let Some(dir) = path.parent() {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create journal dir {}: {err}", dir.display());
            return None;
        }
    }
    let fresh = !resume || !path.exists();
    // A SIGKILL mid-write leaves a torn final line with no newline;
    // terminate it before appending so the next entry starts clean
    // instead of merging into (and corrupting) the fragment.
    let torn_tail = resume
        && std::fs::read(path).is_ok_and(|bytes| bytes.last().is_some_and(|&b| b != b'\n'));
    let opened = if resume {
        OpenOptions::new().create(true).append(true).open(path)
    } else {
        File::create(path)
    };
    match opened {
        Ok(mut file) => {
            if torn_tail {
                if let Err(err) = file.write_all(b"\n") {
                    eprintln!("warning: journal write failed ({err}); journaling disabled");
                    return None;
                }
            }
            if fresh {
                let header =
                    format!("# dimetrodon sweep journal v1 sweep {sweep:016x} points {points}\n");
                if let Err(err) = file.write_all(header.as_bytes()) {
                    eprintln!("warning: journal write failed ({err}); journaling disabled");
                    return None;
                }
            }
            Some(file)
        }
        Err(err) => {
            eprintln!(
                "warning: cannot open journal {}: {err}; journaling disabled",
                path.display()
            );
            None
        }
    }
}

/// Appends one completed point to the journal and flushes, so a SIGKILL
/// can lose at most the line being written.
fn journal_append(journal: &Mutex<Option<File>>, entry: &str) {
    let mut guard = journal.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(file) = guard.as_mut() {
        let mut line = String::with_capacity(entry.len() + 1);
        line.push_str(entry);
        line.push('\n');
        let ok = file.write_all(line.as_bytes()).and_then(|()| file.flush());
        if let Err(err) = ok {
            eprintln!("warning: journal write failed ({err}); journaling disabled");
            *guard = None;
        }
    }
}

// --- Supervised execution ----------------------------------------------

/// How one attempt of one point ended, internally.
enum AttemptError {
    Panicked(String),
    TimedOut,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The point as attempt `attempt` runs it: attempt 0 is the grid's own
/// point, later attempts re-derive the seed from `(seed, index, attempt)`
/// so retried output stays a pure function of the grid.
fn attempt_point(point: &SweepPoint, index: usize, attempt: u32) -> SweepPoint {
    if attempt == 0 {
        return point.clone();
    }
    let mut retried = point.clone();
    retried.config.seed = derive_seed(
        derive_seed(point.config.seed, index as u64),
        u64::from(attempt),
    );
    retried
}

/// Deterministic retry backoff: linear in the attempt number, capped.
/// The delay only spaces out attempts; it never influences results.
fn retry_backoff(attempt: u32) -> Duration {
    Duration::from_millis(u64::from(attempt.min(10)) * 25)
}

/// Runs one attempt of one point, honouring the deadline and the panic
/// policy. Under [`PanicPolicy::Strict`] a panic propagates out of this
/// function (and poisons the pool) exactly as it would without
/// supervision.
fn run_attempt(
    point: &SweepPoint,
    index: usize,
    attempt: u32,
    config: &SupervisorConfig,
) -> Result<RunOutcome, AttemptError> {
    let prepared = attempt_point(point, index, attempt);
    let run = move || {
        characterize_on(
            &prepared.machine,
            prepared.workload,
            prepared.actuation,
            prepared.config,
        )
    };
    match config.point_deadline {
        None => {
            if config.policy == PanicPolicy::Strict {
                return Ok(run());
            }
            std::panic::catch_unwind(AssertUnwindSafe(run))
                .map_err(|payload| AttemptError::Panicked(panic_message(payload.as_ref())))
        }
        Some(deadline) => {
            let (tx, rx) = mpsc::channel();
            let spawned = std::thread::Builder::new()
                .name(format!("sweep-watchdog-{index}-{attempt}"))
                .spawn(move || {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(run));
                    // simlint::allow(R2): if the watchdog already gave up
                    // on this attempt the receiver is gone and the result
                    // is intentionally dropped with the thread.
                    let _ = tx.send(result);
                });
            let handle = match spawned {
                Ok(handle) => handle,
                Err(err) => {
                    return Err(AttemptError::Panicked(format!(
                        "could not spawn watchdog thread: {err}"
                    )))
                }
            };
            match rx.recv_timeout(deadline) {
                Ok(Ok(outcome)) => {
                    // The attempt finished; the thread is done or moments
                    // from it — joining cannot block meaningfully.
                    drop(handle.join());
                    Ok(outcome)
                }
                Ok(Err(payload)) => {
                    drop(handle.join());
                    if config.policy == PanicPolicy::Strict {
                        std::panic::resume_unwind(payload);
                    }
                    Err(AttemptError::Panicked(panic_message(payload.as_ref())))
                }
                Err(_) => {
                    // Deadline passed: abandon the attempt. The detached
                    // thread finishes (or hangs) on its own and its send
                    // fails harmlessly into a dropped channel.
                    drop(handle);
                    Err(AttemptError::TimedOut)
                }
            }
        }
    }
}

/// Runs one point under full supervision: bounded retries around
/// [`run_attempt`], incident recording, and journaling of success.
fn supervise_point(
    point: &SweepPoint,
    index: usize,
    fingerprint: u64,
    sweep_label: &str,
    config: &SupervisorConfig,
    journal: &Mutex<Option<File>>,
) -> PointOutcome {
    let mut first_error: Option<AttemptError> = None;
    for attempt in 0..=config.retries {
        if attempt > 0 && config.backoff {
            std::thread::sleep(retry_backoff(attempt));
        }
        match run_attempt(point, index, attempt, config) {
            Ok(outcome) => {
                journal_append(journal, &encode_entry(fingerprint, &outcome));
                return PointOutcome::Ok(outcome);
            }
            Err(error) => {
                first_error.get_or_insert(error);
            }
        }
    }
    let attempts = config.retries + 1;
    match first_error {
        Some(AttemptError::Panicked(msg)) => {
            record_incident(Incident {
                sweep: sweep_label.to_string(),
                point: index,
                kind: IncidentKind::Quarantined,
                attempts,
                detail: msg.clone(),
            });
            PointOutcome::Panicked { msg }
        }
        Some(AttemptError::TimedOut) | None => {
            record_incident(Incident {
                sweep: sweep_label.to_string(),
                point: index,
                kind: IncidentKind::TimedOut,
                attempts,
                detail: String::new(),
            });
            PointOutcome::TimedOut
        }
    }
}

/// Runs a sweep under the supervision layer: journal replay, per-point
/// quarantine/deadline/retry, and the sweep time budget. Outcomes come
/// back in point order; callers wanting plain [`RunOutcome`]s collapse
/// them with [`PointOutcome::into_outcome`].
pub fn run_supervised(points: &[SweepPoint], config: &SupervisorConfig) -> Vec<PointOutcome> {
    let sweep = fingerprint_sweep(points);
    let sweep_label = format!("{sweep:016x}");
    let mut replayed = std::collections::BTreeMap::new();
    let journal = match &config.journal_dir {
        Some(dir) => {
            let path = journal_path(dir, sweep);
            if config.resume {
                replayed = load_journal(&path);
            }
            Mutex::new(open_journal(&path, config.resume, points.len(), sweep))
        }
        None => Mutex::new(None),
    };
    // simlint::allow(D1): the budget clock gates whether points start; it
    // never flows into results.
    let start = Instant::now();
    parallel_map(points.len(), |index| {
        let point = &points[index];
        let fingerprint = fingerprint_point(point);
        if let Some(outcome) = replayed.get(&fingerprint) {
            REPLAYED.fetch_add(1, Ordering::Relaxed);
            return PointOutcome::Ok(outcome.clone());
        }
        if let Some(budget) = config.sweep_budget {
            if start.elapsed() >= budget {
                record_incident(Incident {
                    sweep: sweep_label.clone(),
                    point: index,
                    kind: IncidentKind::Skipped,
                    attempts: 0,
                    detail: "sweep time budget exhausted".to_string(),
                });
                return PointOutcome::Skipped;
            }
        }
        supervise_point(point, index, fingerprint, &sweep_label, config, &journal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Actuation, RunConfig, SaturatingWorkload};
    use dimetrodon_machine::MachineConfig;
    use dimetrodon_sim_core::SimDuration;

    fn tiny_config(seed: u64) -> RunConfig {
        RunConfig {
            duration: SimDuration::from_secs(2),
            measure_window: SimDuration::from_secs(1),
            warmup: SimDuration::ZERO,
            seed,
        }
    }

    fn tiny_point(seed: u64) -> SweepPoint {
        SweepPoint::new(SaturatingWorkload::CpuBurn, Actuation::None, tiny_config(seed))
    }

    /// A point whose machine config is invalid, so `build_system_on`
    /// panics deterministically.
    fn poisoned_point(seed: u64) -> SweepPoint {
        let mut machine = MachineConfig::xeon_e5520();
        machine.num_cores = 0;
        SweepPoint::on(
            machine,
            SaturatingWorkload::CpuBurn,
            Actuation::None,
            tiny_config(seed),
        )
    }

    #[test]
    fn entry_round_trips_exactly() {
        let outcome = RunOutcome {
            idle_temp: 48.125,
            tail_temp: 71.0625,
            throughput: 0.87312,
            temp_series: TimeSeries::new("mean_temp"),
            observed_curve: vec![(0.0, 48.5), (1.0, 50.25), (2.0, 51.125)],
            injected_idles: 42,
        };
        let line = encode_entry(0xdead_beef_0123_4567, &outcome);
        let (fp, decoded) = decode_entry(&line).unwrap();
        assert_eq!(fp, 0xdead_beef_0123_4567);
        assert_eq!(decoded.idle_temp.to_bits(), outcome.idle_temp.to_bits());
        assert_eq!(decoded.tail_temp.to_bits(), outcome.tail_temp.to_bits());
        assert_eq!(decoded.throughput.to_bits(), outcome.throughput.to_bits());
        assert_eq!(decoded.observed_curve, outcome.observed_curve);
        assert_eq!(decoded.injected_idles, 42);
        // Re-encoding the decoded outcome is byte-stable apart from the
        // series name (which records the replay provenance).
        let reencoded = encode_entry(fp, &decoded);
        let tail = |s: &str| {
            s.split_whitespace()
                .enumerate()
                .filter(|(i, _)| *i != 6)
                .map(|(_, t)| t.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(tail(&reencoded), tail(&line));
    }

    #[test]
    fn truncated_and_malformed_lines_are_ignored() {
        assert!(decode_entry("").is_none());
        assert!(decode_entry("# comment").is_none());
        assert!(decode_entry("point 0123").is_none());
        let outcome = unavailable_outcome();
        // NaN metrics never reach the journal, and decode rejects them.
        let line = encode_entry(1, &outcome);
        assert!(decode_entry(&line).is_none());
        let good = encode_entry(
            7,
            &RunOutcome {
                idle_temp: 1.0,
                tail_temp: 2.0,
                throughput: 0.5,
                temp_series: TimeSeries::new("s"),
                observed_curve: vec![(0.0, 1.5)],
                injected_idles: 0,
            },
        );
        assert!(decode_entry(&good).is_some());
        // Every strict prefix (a SIGKILL mid-write) fails cleanly: tokens
        // are fixed-width, so a cut bit pattern never parses.
        for cut in 0..good.len() {
            assert!(
                decode_entry(&good[..cut]).is_none(),
                "prefix of length {cut} decoded"
            );
        }
    }

    #[test]
    fn fingerprints_distinguish_points_and_track_equality() {
        let a = tiny_point(1);
        let b = tiny_point(2);
        assert_ne!(fingerprint_point(&a), fingerprint_point(&b));
        assert_eq!(fingerprint_point(&a), fingerprint_point(&a.clone()));
        assert_ne!(
            fingerprint_sweep(&[a.clone(), b.clone()]),
            fingerprint_sweep(&[b, a])
        );
    }

    #[test]
    fn quarantine_survives_a_panicking_point() {
        let points = vec![tiny_point(1), poisoned_point(2), tiny_point(3)];
        let config = SupervisorConfig::default();
        let outcomes = run_supervised(&points, &config);
        assert!(outcomes[0].is_ok());
        assert!(matches!(outcomes[1], PointOutcome::Panicked { .. }));
        assert!(outcomes[2].is_ok());
        let incidents = take_incidents();
        let ours: Vec<_> = incidents
            .iter()
            .filter(|i| i.kind == IncidentKind::Quarantined && i.point == 1)
            .collect();
        assert!(!ours.is_empty(), "quarantine must be recorded");
        assert!(ours[0].detail.contains("machine config is valid"));
    }

    #[test]
    fn strict_policy_aborts_like_the_bare_pool() {
        let points = vec![tiny_point(1), poisoned_point(2)];
        let config = SupervisorConfig {
            policy: PanicPolicy::Strict,
            ..SupervisorConfig::default()
        };
        let result =
            std::panic::catch_unwind(AssertUnwindSafe(|| run_supervised(&points, &config)));
        assert!(result.is_err(), "strict mode must re-raise the panic");
    }

    #[test]
    fn backoff_defaults_off_under_test_so_retries_spin_without_sleeping() {
        // In the binaries the default is on; under cfg(test) the linear
        // sleep would only slow deterministic retries down.
        assert!(!SupervisorConfig::default().backoff);
        let before = std::time::Instant::now();
        let config = SupervisorConfig {
            retries: 10,
            ..SupervisorConfig::default()
        };
        drop(run_supervised(&[poisoned_point(4)], &config));
        drop(take_incidents());
        assert!(
            before.elapsed() < retry_backoff(10),
            "retries must not sleep the backoff when the knob is off"
        );
    }

    #[test]
    fn retries_use_derived_seeds_and_give_up_deterministically() {
        let points = vec![poisoned_point(9)];
        let config = SupervisorConfig {
            retries: 2,
            ..SupervisorConfig::default()
        };
        let outcomes = run_supervised(&points, &config);
        assert!(matches!(outcomes[0], PointOutcome::Panicked { .. }));
        let incident = take_incidents()
            .into_iter()
            .find(|i| i.kind == IncidentKind::Quarantined)
            .expect("incident recorded");
        assert_eq!(incident.attempts, 3);
        // The retried point differs only in seed, derived from the grid.
        let retried = attempt_point(&points[0], 0, 1);
        assert_eq!(
            retried.config.seed,
            derive_seed(derive_seed(points[0].config.seed, 0), 1)
        );
        assert_eq!(attempt_point(&points[0], 0, 0), points[0]);
    }

    #[test]
    fn deadline_times_a_point_out_without_hanging() {
        // The point must be slow enough that it cannot finish before the
        // watchdog starts waiting (a tiny point under parallel-test CPU
        // contention can beat even a nanosecond recv_timeout): a
        // half-hour simulated run takes on the order of a second of wall
        // clock, against a 10 ms deadline.
        let slow = RunConfig {
            duration: SimDuration::from_secs(1800),
            measure_window: SimDuration::from_secs(1),
            warmup: SimDuration::ZERO,
            seed: 4,
        };
        let points = vec![SweepPoint::new(
            SaturatingWorkload::CpuBurn,
            Actuation::None,
            slow,
        )];
        let config = SupervisorConfig {
            point_deadline: Some(Duration::from_millis(10)),
            ..SupervisorConfig::default()
        };
        let outcomes = run_supervised(&points, &config);
        assert!(matches!(outcomes[0], PointOutcome::TimedOut));
        drop(take_incidents());
    }

    #[test]
    fn sweep_budget_skips_remaining_points() {
        let points: Vec<_> = (0..4).map(tiny_point).collect();
        let config = SupervisorConfig {
            sweep_budget: Some(Duration::ZERO),
            ..SupervisorConfig::default()
        };
        let outcomes = run_supervised(&points, &config);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, PointOutcome::Skipped)));
        drop(take_incidents());
    }

    #[test]
    fn journal_replay_restores_measurements_bit_for_bit() {
        let dir = std::env::temp_dir().join(format!(
            "dimetrodon-journal-test-{}",
            std::process::id()
        ));
        let points = vec![tiny_point(11), tiny_point(12)];
        let config = SupervisorConfig {
            journal_dir: Some(dir.clone()),
            ..SupervisorConfig::default()
        };
        let fresh = run_supervised(&points, &config);
        let resumed = run_supervised(
            &points,
            &SupervisorConfig {
                resume: true,
                ..config
            },
        );
        assert_eq!(take_replayed(), 2, "both points must replay");
        for (a, b) in fresh.iter().zip(&resumed) {
            let (PointOutcome::Ok(a), PointOutcome::Ok(b)) = (a, b) else {
                panic!("all points complete");
            };
            assert_eq!(a.idle_temp.to_bits(), b.idle_temp.to_bits());
            assert_eq!(a.tail_temp.to_bits(), b.tail_temp.to_bits());
            assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
            assert_eq!(a.observed_curve, b.observed_curve);
            assert_eq!(a.injected_idles, b.injected_idles);
        }
        drop(std::fs::remove_dir_all(&dir));
    }

    #[test]
    fn without_resume_an_existing_journal_is_truncated() {
        let dir = std::env::temp_dir().join(format!(
            "dimetrodon-journal-trunc-{}",
            std::process::id()
        ));
        let points = vec![tiny_point(21)];
        let config = SupervisorConfig {
            journal_dir: Some(dir.clone()),
            ..SupervisorConfig::default()
        };
        drop(run_supervised(&points, &config));
        drop(run_supervised(&points, &config));
        assert_eq!(take_replayed(), 0, "fresh runs never replay");
        let text = std::fs::read_to_string(journal_path(&dir, fingerprint_sweep(&points)))
            .expect("journal written");
        let entries = text.lines().filter(|l| l.starts_with("point")).count();
        assert_eq!(entries, 1, "truncation must discard the first run");
        drop(std::fs::remove_dir_all(&dir));
    }

    #[test]
    fn journal_gc_keeps_last_k_and_never_deletes_active_fingerprints() {
        let dir = std::env::temp_dir().join(format!("dimetrodon-journal-gc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create dir");
        let active_fp: u64 = 0xA11CE;
        // The active journal is the OLDEST file — worst case for an
        // mtime-ordered GC.
        let mut paths = vec![journal_path(&dir, active_fp)];
        for fp in 1..=4u64 {
            paths.push(dir.join(format!("fleet-{fp:016x}.journal")));
        }
        paths.push(dir.join("not-a-journal.txt"));
        let base = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000);
        for (age, path) in paths.iter().enumerate() {
            std::fs::write(path, "journal\n").expect("write");
            let file = std::fs::File::options().write(true).open(path).expect("open");
            file.set_modified(base + std::time::Duration::from_secs(age as u64))
                .expect("set mtime");
        }

        let removed = gc_journals(&dir, 2, &[active_fp]);
        assert_eq!(removed, 2, "4 inactive journals, keep 2");
        assert!(
            journal_path(&dir, active_fp).exists(),
            "GC must never delete the active fingerprint's journal"
        );
        assert!(dir.join("not-a-journal.txt").exists(), "non-journals untouched");
        // The two newest inactive journals survive, the two oldest are gone.
        assert!(!dir.join(format!("fleet-{:016x}.journal", 1u64)).exists());
        assert!(!dir.join(format!("fleet-{:016x}.journal", 2u64)).exists());
        assert!(dir.join(format!("fleet-{:016x}.journal", 3u64)).exists());
        assert!(dir.join(format!("fleet-{:016x}.journal", 4u64)).exists());

        assert_eq!(gc_journals(&dir, 2, &[active_fp]), 0, "GC is idempotent");
        std::fs::remove_dir_all(&dir).ok();
    }
}
