//! Bit-exactness of warm-prefix sharing: a forked snapshot must resume
//! exactly as a run that never stopped, at every worker count, with the
//! snapshot cache on or off. These are the properties that make the
//! `--no-snapshot` flag a timing knob rather than a correctness knob.

use std::sync::Mutex;

use dimetrodon::{InjectionModel, InjectionParams};
use dimetrodon_harness::sweep::parallel_map_with;
use dimetrodon_harness::{
    build_system, characterize, snapshot, Actuation, RunConfig, SaturatingWorkload,
};
use dimetrodon_machine::MachineConfig;
use dimetrodon_sched::{System, ThreadKind};
use dimetrodon_sim_core::{SimDuration, SimTime};
use dimetrodon_workload::CpuBurn;

/// The snapshot enable flag and reuse counters are process-global;
/// serialise the tests that depend on their state.
static SNAPSHOT_LOCK: Mutex<()> = Mutex::new(());

fn injection(p: f64, l_ms: u64) -> Actuation {
    Actuation::Injection {
        params: InjectionParams::new(p, SimDuration::from_millis(l_ms)),
        model: InjectionModel::Probabilistic,
    }
}

fn warm_config(seed: u64) -> RunConfig {
    RunConfig {
        duration: SimDuration::from_secs(40),
        measure_window: SimDuration::from_secs(10),
        warmup: SimDuration::from_secs(25),
        seed,
    }
}

/// Every bit of state a characterisation exposes, as comparable integers.
fn outcome_bits(out: &dimetrodon_harness::RunOutcome) -> (u64, u64, u64, u64, Vec<(u64, u64)>) {
    (
        out.idle_temp.to_bits(),
        out.tail_temp.to_bits(),
        out.throughput.to_bits(),
        out.injected_idles,
        out.observed_curve
            .iter()
            .map(|&(t, v)| (t.to_bits(), v.to_bits()))
            .collect(),
    )
}

#[test]
fn fork_resumes_bit_identically_to_the_original() {
    // Drive a full system (machine + scheduler + injection hook) to the
    // middle of a run, fork it, and let both copies finish: every
    // temperature bit and every counter must agree.
    let build = || {
        let (mut system, _policy) = build_system(injection(0.5, 25), 99);
        for _ in 0..system.machine().num_cores() {
            system.spawn(ThreadKind::User, Box::new(CpuBurn::infinite()));
        }
        system.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        system
    };
    let mut original = build();
    let mut fork = original.snapshot().fork();

    let end = SimTime::ZERO + SimDuration::from_secs(25);
    original.run_until(end);
    fork.run_until(end);

    assert_system_bits_equal(&original, &fork);
}

fn assert_system_bits_equal(a: &System, b: &System) {
    assert_eq!(a.now(), b.now());
    assert_eq!(a.total_injected_idles(), b.total_injected_idles());
    for core in a.machine().core_ids().collect::<Vec<_>>() {
        assert_eq!(
            a.machine().core_temperature(core).to_bits(),
            b.machine().core_temperature(core).to_bits(),
            "core {core:?} temperature diverged"
        );
    }
    for id in a.thread_ids() {
        assert_eq!(
            a.thread_stats(id),
            b.thread_stats(id),
            "thread {id} accounting diverged"
        );
    }
    assert_eq!(
        a.machine().energy().joules().to_bits(),
        b.machine().energy().joules().to_bits()
    );
}

#[test]
fn warm_runs_are_identical_with_and_without_the_cache() {
    let _guard = SNAPSHOT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let points = [injection(0.25, 10), injection(0.5, 100), Actuation::None];

    snapshot::set_enabled(true);
    snapshot::reset();
    let cached: Vec<_> = points
        .iter()
        .enumerate()
        .map(|(i, &a)| characterize(SaturatingWorkload::CpuBurn, a, warm_config(40 + i as u64)))
        .collect();
    let stats = snapshot::stats();
    assert_eq!(stats.warmups_paid, 1, "one shared prefix for the grid");
    assert_eq!(stats.forks_served, 2);

    snapshot::set_enabled(false);
    let cold: Vec<_> = points
        .iter()
        .enumerate()
        .map(|(i, &a)| characterize(SaturatingWorkload::CpuBurn, a, warm_config(40 + i as u64)))
        .collect();
    snapshot::set_enabled(true);
    snapshot::reset();

    for (hit, miss) in cached.iter().zip(&cold) {
        assert_eq!(outcome_bits(hit), outcome_bits(miss));
    }
}

#[test]
fn warm_sweep_is_bit_identical_at_every_worker_count() {
    let _guard = SNAPSHOT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    snapshot::set_enabled(true);
    let machine = MachineConfig::xeon_e5520();
    let grid: Vec<(Actuation, RunConfig)> = [2u64, 10, 25, 100]
        .iter()
        .enumerate()
        .map(|(j, &l_ms)| (injection(0.5, l_ms), warm_config(7 + j as u64)))
        .collect();

    snapshot::reset();
    let reference: Vec<_> = grid
        .iter()
        .map(|&(a, c)| {
            outcome_bits(&dimetrodon_harness::characterize_on(
                &machine,
                SaturatingWorkload::CpuBurn,
                a,
                c,
            ))
        })
        .collect();

    for workers in [1, 2, 3, 7] {
        snapshot::reset();
        let outcomes = parallel_map_with(workers, grid.len(), |i| {
            let (a, c) = grid[i];
            outcome_bits(&dimetrodon_harness::characterize_on(
                &machine,
                SaturatingWorkload::CpuBurn,
                a,
                c,
            ))
        });
        assert_eq!(outcomes, reference, "workers = {workers}");
    }
    snapshot::reset();
}
