//! Property tests for the sweep supervisor (`harness::supervise`):
//!
//! * the journal encoding preserves the measurement projection of a
//!   [`RunOutcome`] bit-for-bit across arbitrary re-serialization cycles,
//!   and point fingerprints are a pure function of the point's fields;
//! * a run killed after *any* k of n journal entries — including a torn
//!   final line, as a SIGKILL mid-write leaves behind — resumes with
//!   `--resume` to outcomes bit-identical to an uninterrupted run, at
//!   every worker count;
//! * a chaos grid poisoning an intensity-controlled fraction of points
//!   (the robustness experiment's intensity knob turned on the harness
//!   itself) quarantines exactly the poisoned points and leaves every
//!   healthy point's measurements untouched.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

use dimetrodon_harness::supervise::{
    decode_entry, encode_entry, fingerprint_point, fingerprint_sweep, journal_path,
    run_supervised, take_incidents, take_replayed, IncidentKind, PointOutcome, SupervisorConfig,
};
use dimetrodon_harness::sweep::{set_jobs, SweepPoint};
use dimetrodon_harness::{Actuation, RunConfig, RunOutcome, SaturatingWorkload};
use dimetrodon_sim_core::{derive_seed, SimDuration, SimTime, TimeSeries};
use proptest::prelude::*;

/// Tests that run sweeps share the process-global supervisor and jobs
/// state; serialize them so worker-count assertions stay meaningful.
static SWEEP_LOCK: Mutex<()> = Mutex::new(());

fn tiny_config(seed: u64) -> RunConfig {
    RunConfig {
        duration: SimDuration::from_secs(2),
        measure_window: SimDuration::from_secs(1),
        warmup: SimDuration::ZERO,
        seed,
    }
}

fn tiny_point(seed: u64) -> SweepPoint {
    SweepPoint::new(SaturatingWorkload::CpuBurn, Actuation::None, tiny_config(seed))
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dimetrodon-supervise-prop-{}-{tag}", std::process::id()))
}

/// Bit-level equality of everything the journal preserves — which is
/// everything any sweep consumer reads: the scalar metrics, the injected
/// idle count, and the full observed dispatch curve.
fn same_measurements(a: &RunOutcome, b: &RunOutcome) -> bool {
    a.idle_temp.to_bits() == b.idle_temp.to_bits()
        && a.tail_temp.to_bits() == b.tail_temp.to_bits()
        && a.throughput.to_bits() == b.throughput.to_bits()
        && a.injected_idles == b.injected_idles
        && a.observed_curve.len() == b.observed_curve.len()
        && a
            .observed_curve
            .iter()
            .zip(&b.observed_curve)
            .all(|((ta, va), (tb, vb))| ta.to_bits() == tb.to_bits() && va.to_bits() == vb.to_bits())
}

fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e9..1.0e9,
        -1.0e-12..1.0e-12,
        Just(0.0),
        Just(-0.0),
        Just(316.41948),
    ]
}

fn outcome_strategy() -> impl Strategy<Value = RunOutcome> {
    (
        finite_f64(),
        finite_f64(),
        finite_f64(),
        any::<u64>(),
        prop::collection::vec(32u8..127u8, 0..12),
        0usize..5,
        prop::collection::vec((finite_f64(), finite_f64()), 0..8),
    )
        .prop_map(
            |(idle, tail, throughput, idles, name_bytes, series_len, curve)| {
                let name: String = name_bytes.into_iter().map(char::from).collect();
                let mut series = TimeSeries::new(name);
                for i in 0..series_len {
                    series.push(SimTime::from_secs(i as u64), i as f64);
                }
                RunOutcome {
                    idle_temp: idle,
                    tail_temp: tail,
                    throughput,
                    temp_series: series,
                    observed_curve: curve,
                    injected_idles: idles,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode → encode → decode: the fingerprint key and every
    /// journaled measurement survive arbitrary re-serialization cycles
    /// bit-for-bit (floats travel as IEEE-754 bit patterns, never through
    /// decimal — `-0.0` and subnormals included).
    #[test]
    fn journal_entry_measurements_survive_reserialization(
        fingerprint in any::<u64>(),
        outcome in outcome_strategy(),
    ) {
        let line = encode_entry(fingerprint, &outcome);
        let (fp1, cycle1) = decode_entry(&line).expect("freshly encoded line must decode");
        prop_assert_eq!(fp1, fingerprint);
        prop_assert!(same_measurements(&outcome, &cycle1), "first cycle lost bits");
        // A second cycle (a replayed point being re-journaled on resume)
        // is just as lossless.
        let (fp2, cycle2) =
            decode_entry(&encode_entry(fp1, &cycle1)).expect("re-encoded line must decode");
        prop_assert_eq!(fp2, fingerprint);
        prop_assert!(same_measurements(&outcome, &cycle2), "second cycle lost bits");
    }

    /// Point fingerprints are a pure function of the point's fields: an
    /// independently reconstructed identical point fingerprints equal,
    /// any seed perturbation fingerprints different, and the sweep
    /// fingerprint is reproducible from a rebuilt grid.
    #[test]
    fn point_fingerprints_are_stable_and_discriminating(
        seed in any::<u64>(),
        perturb in 1u64..1000,
    ) {
        let a = tiny_point(seed);
        let rebuilt = tiny_point(seed);
        prop_assert_eq!(fingerprint_point(&a), fingerprint_point(&rebuilt));
        let other = tiny_point(seed.wrapping_add(perturb));
        prop_assert_ne!(fingerprint_point(&a), fingerprint_point(&other));
        prop_assert_eq!(
            fingerprint_sweep(&[a, other]),
            fingerprint_sweep(&[tiny_point(seed), tiny_point(seed.wrapping_add(perturb))])
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Kill-and-resume at any interrupt point: run a grid to completion,
    /// cut its journal back to the first `kill_after` entries plus a torn
    /// fragment of the next line, and resume. At every worker count the
    /// resumed outcomes are bit-identical to the uninterrupted run,
    /// exactly `kill_after` points are replayed rather than recomputed,
    /// and the journal ends up complete again.
    #[test]
    fn any_interrupt_point_resumes_bit_identical_at_every_worker_count(
        kill_after in 0usize..=4,
        seed in 0u64..1000,
    ) {
        const POINTS: usize = 4;
        let guard = SWEEP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let points: Vec<SweepPoint> = (0..POINTS as u64)
            .map(|i| tiny_point(derive_seed(seed, i)))
            .collect();
        let sweep = fingerprint_sweep(&points);

        // Uninterrupted reference run, journaling to a scratch dir.
        let ref_dir = scratch_dir(&format!("ref-{seed}-{kill_after}"));
        drop(std::fs::remove_dir_all(&ref_dir));
        set_jobs(2);
        let reference = run_supervised(
            &points,
            &SupervisorConfig {
                journal_dir: Some(ref_dir.clone()),
                ..SupervisorConfig::default()
            },
        );
        prop_assert!(reference.iter().all(PointOutcome::is_ok));

        // "Kill" the run after `kill_after` entries: keep the header and
        // the first entries (journal order is completion order, not grid
        // order), then tear the next line in half as SIGKILL would.
        let text = std::fs::read_to_string(journal_path(&ref_dir, sweep))
            .expect("reference journal written");
        let mut kept = String::new();
        let mut entries = 0usize;
        let mut torn = false;
        for line in text.lines() {
            if line.starts_with('#') {
                kept.push_str(line);
                kept.push('\n');
            } else if entries < kill_after {
                kept.push_str(line);
                kept.push('\n');
                entries += 1;
            } else if !torn {
                kept.push_str(&line[..line.len() / 2]);
                torn = true;
            }
        }
        prop_assert_eq!(entries, kill_after);

        for workers in [1, 2, 3] {
            let dir = scratch_dir(&format!("resume-{seed}-{kill_after}-{workers}"));
            drop(std::fs::remove_dir_all(&dir));
            std::fs::create_dir_all(&dir).expect("scratch dir");
            std::fs::write(journal_path(&dir, sweep), &kept).expect("write truncated journal");
            set_jobs(workers);
            take_replayed();
            let resumed = run_supervised(
                &points,
                &SupervisorConfig {
                    journal_dir: Some(dir.clone()),
                    resume: true,
                    ..SupervisorConfig::default()
                },
            );
            prop_assert_eq!(take_replayed(), kill_after, "replay count at {workers} workers");
            for (i, (r, o)) in reference.iter().zip(&resumed).enumerate() {
                match (r, o) {
                    (PointOutcome::Ok(a), PointOutcome::Ok(b)) => prop_assert!(
                        same_measurements(a, b),
                        "point {i} diverged at {workers} workers"
                    ),
                    _ => prop_assert!(false, "point {i} did not complete"),
                }
            }
            // The resumed run healed the journal: all points decode with
            // the reference measurements, so a *second* resume would be
            // pure replay.
            let healed = std::fs::read_to_string(journal_path(&dir, sweep)).expect("journal");
            let decoded: BTreeMap<u64, RunOutcome> =
                healed.lines().filter_map(decode_entry).collect();
            prop_assert_eq!(decoded.len(), POINTS);
            for (point, outcome) in points.iter().zip(&reference) {
                let PointOutcome::Ok(outcome) = outcome else {
                    unreachable!("checked above")
                };
                prop_assert!(
                    same_measurements(outcome, &decoded[&fingerprint_point(point)]),
                    "healed journal diverged at {workers} workers"
                );
            }
            drop(std::fs::remove_dir_all(&dir));
        }
        drop(std::fs::remove_dir_all(&ref_dir));
        drop(guard);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Chaos: poison a deterministic, intensity-controlled fraction of a
    /// grid with invalid machine configs (each poisoned point panics in
    /// `build_system_on`). The supervisor must quarantine exactly the
    /// poisoned points, record one incident each, and deliver every
    /// healthy point with exactly the measurements an all-healthy run
    /// produces.
    #[test]
    fn chaos_grid_quarantines_exactly_the_poisoned_points(
        intensity in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        const POINTS: usize = 5;
        let guard = SWEEP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Deterministic chaos, the robustness experiment's way: point i
        // is poisoned iff its seed-derived draw falls below `intensity`.
        let poisoned: Vec<bool> = (0..POINTS as u64)
            .map(|i| (derive_seed(seed, i) as f64 / u64::MAX as f64) < intensity)
            .collect();
        let healthy: Vec<SweepPoint> = (0..POINTS as u64)
            .map(|i| tiny_point(derive_seed(seed ^ 0xC4A0, i)))
            .collect();
        let chaos: Vec<SweepPoint> = healthy
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut point = p.clone();
                if poisoned[i] {
                    point.machine.num_cores = 0;
                }
                point
            })
            .collect();

        set_jobs(2);
        drop(take_incidents());
        let reference = run_supervised(&healthy, &SupervisorConfig::default());
        drop(take_incidents());
        let outcomes = run_supervised(&chaos, &SupervisorConfig::default());
        let incidents = take_incidents();

        let expected = poisoned.iter().filter(|&&p| p).count();
        prop_assert_eq!(incidents.len(), expected);
        for incident in &incidents {
            prop_assert_eq!(incident.kind, IncidentKind::Quarantined);
            prop_assert!(poisoned[incident.point], "healthy point {} reported", incident.point);
        }
        for (i, (r, o)) in reference.iter().zip(&outcomes).enumerate() {
            match (poisoned[i], o) {
                (true, PointOutcome::Panicked { msg }) => prop_assert!(
                    msg.contains("machine config is valid"),
                    "unexpected panic payload: {msg}"
                ),
                (false, PointOutcome::Ok(b)) => match r {
                    PointOutcome::Ok(a) => prop_assert!(
                        same_measurements(a, b),
                        "healthy point {i} diverged under chaos"
                    ),
                    _ => prop_assert!(false, "reference point {i} failed"),
                },
                _ => prop_assert!(false, "point {i} landed in the wrong outcome class"),
            }
        }
        drop(guard);
    }
}
