//! Threads: identity, behaviour, and accounting.
//!
//! A thread's behaviour is a [`ThreadBody`]: a state machine that, each
//! time it is consulted, yields its next [`Action`] — run a CPU burst,
//! sleep, or exit. The scheduler executes bursts in timeslice-sized pieces
//! and consults the body again when a burst completes. Workload crates
//! implement `ThreadBody` for cpuburn, SPEC-like profiles, web-server
//! connections, and so on.

use std::fmt;

use dimetrodon_sim_core::{SimDuration, SimTime};

/// Identifies a thread within a [`System`](crate::System).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u64);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// Whether a thread runs in kernel or user context.
///
/// The distinction matters to injection policy: the paper's implementation
/// "always schedules kernel-level threads" (§3.1) because delaying, say,
/// a network-interrupt thread would delay request processing twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadKind {
    /// An ordinary user thread — eligible for idle-cycle injection.
    User,
    /// A kernel thread — by default exempt from injection.
    Kernel,
}

/// A CPU burst: nominal CPU time at full machine speed, with the switching
/// activity the code exercises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// CPU time required at the fastest P-state with no clock modulation.
    pub cpu_time: SimDuration,
    /// Activity factor in `[0, 1]` (see
    /// [`Activity`](dimetrodon_power::Activity)).
    pub activity: f64,
}

impl Burst {
    /// Creates a burst.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_time` is zero or `activity` is outside `[0, 1]`.
    pub fn new(cpu_time: SimDuration, activity: f64) -> Self {
        assert!(!cpu_time.is_zero(), "burst must have positive CPU time");
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must be in [0, 1], got {activity}"
        );
        Burst { cpu_time, activity }
    }
}

/// What a thread does next, as reported by its [`ThreadBody`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Execute a CPU burst.
    Run(Burst),
    /// Block for a duration (I/O wait, timer, think time).
    Sleep(SimDuration),
    /// Terminate.
    Exit,
}

/// The behaviour of a thread.
///
/// The system calls [`next_action`](ThreadBody::next_action) when the
/// thread is spawned, when a burst completes, and when a sleep expires —
/// always at the simulated instant `now`, which lets bodies measure
/// latencies (e.g. a web connection computing response time as `now` minus
/// the instant its request was issued).
pub trait ThreadBody: fmt::Debug + ThreadBodyClone {
    /// The thread's next action. `now` is the current simulated time.
    fn next_action(&mut self, now: SimTime) -> Action;
}

/// Object-safe cloning for boxed thread bodies, so a whole
/// [`System`](crate::System) can be forked. Blanket-implemented for every
/// `Clone` body; implementors just derive (or write) `Clone`.
///
/// Bodies that share interior state through `Rc` (e.g. completion counters
/// read by a harness) clone the *handle*, not the state: forks of such a
/// system keep feeding the same counters.
pub trait ThreadBodyClone {
    /// Boxes a copy of `self`.
    fn clone_box(&self) -> Box<dyn ThreadBody>;
}

impl<T: ThreadBody + Clone + 'static> ThreadBodyClone for T {
    fn clone_box(&self) -> Box<dyn ThreadBody> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn ThreadBody> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Per-thread accounting maintained by the system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadStats {
    /// Nominal CPU time executed (progress at full speed), excluding
    /// context-switch and resume overheads.
    pub cpu_executed: SimDuration,
    /// Number of times the thread was dispatched onto a core (the paper's
    /// `S`, the number of scheduling quanta).
    pub scheduled_count: u64,
    /// Number of completed [`Action::Run`] bursts.
    pub bursts_completed: u64,
    /// Idle quanta injected in place of this thread.
    pub injected_idles: u64,
    /// Total injected idle time attributed to this thread.
    pub injected_idle_time: SimDuration,
    /// When the thread was spawned.
    pub spawned_at: SimTime,
    /// When the thread exited, if it has.
    pub exited_at: Option<SimTime>,
}

impl ThreadStats {
    /// Wall-clock runtime from spawn to exit, if exited.
    pub fn wall_time(&self) -> Option<SimDuration> {
        self.exited_at.map(|end| end - self.spawned_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_validation() {
        let b = Burst::new(SimDuration::from_millis(10), 0.8);
        assert_eq!(b.cpu_time, SimDuration::from_millis(10));
        assert_eq!(b.activity, 0.8);
    }

    #[test]
    #[should_panic(expected = "positive CPU time")]
    fn zero_burst_panics() {
        Burst::new(SimDuration::ZERO, 0.5);
    }

    #[test]
    #[should_panic(expected = "activity must be in [0, 1]")]
    fn bad_activity_panics() {
        Burst::new(SimDuration::from_millis(1), -0.1);
    }

    #[test]
    fn stats_wall_time() {
        let mut s = ThreadStats {
            spawned_at: SimTime::from_secs(1),
            ..ThreadStats::default()
        };
        assert_eq!(s.wall_time(), None);
        s.exited_at = Some(SimTime::from_secs(5));
        assert_eq!(s.wall_time(), Some(SimDuration::from_secs(4)));
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(ThreadId(3).to_string(), "tid3");
    }
}
