//! The scheduler hook: where idle-cycle injection plugs in.
//!
//! The paper modifies the kernel so that "when the scheduler selects the
//! next thread to run, we decide whether to run the thread or whether to
//! run the idle thread" (§3.1). [`SchedHook::on_schedule`] is that decision
//! point: it sees the thread about to be dispatched, the core, the time,
//! and the machine (for temperature-driven policies), and returns a
//! [`Decision`].
//!
//! The `dimetrodon` crate provides the paper's policies; [`NullHook`] is
//! the unmodified kernel (never injects), used for baselines.

use std::fmt;

use dimetrodon_machine::{CoreId, Machine};
use dimetrodon_sim_core::{SimDuration, SimTime};

use crate::thread::{ThreadId, ThreadKind};

/// What the hook decides at a scheduling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Dispatch the selected thread normally.
    Run,
    /// Pin the selected thread and run the idle thread for the given
    /// quantum instead (the paper's `L`).
    InjectIdle(SimDuration),
}

/// Context handed to the hook at each scheduling decision.
#[derive(Debug)]
pub struct ScheduleContext<'a> {
    /// The core making the decision.
    pub core: CoreId,
    /// The thread the scheduler selected.
    pub thread: ThreadId,
    /// Whether the selected thread is a kernel thread.
    pub kind: ThreadKind,
    /// Current simulated time.
    pub now: SimTime,
    /// The machine, for temperature- or power-aware policies.
    pub machine: &'a Machine,
}

/// A scheduler-decision hook (the Dimetrodon mechanism's attachment
/// point).
pub trait SchedHook: fmt::Debug + SchedHookClone {
    /// Called each time the scheduler is about to dispatch `ctx.thread`
    /// on `ctx.core`.
    fn on_schedule(&mut self, ctx: &ScheduleContext<'_>) -> Decision;

    /// Called about once per simulated second, after the machine has been
    /// advanced; closed-loop policies adapt here.
    fn on_tick(&mut self, _now: SimTime, _machine: &Machine) {}

    /// Downcasting escape hatch so experiment harnesses can read
    /// hook-specific counters back out of a running
    /// [`System`](crate::System). Hooks that expose post-run state
    /// override this to return `Some(self)`; the default opts out.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Object-safe cloning for boxed hooks, so a whole
/// [`System`](crate::System) can be forked with its policy state intact.
/// Blanket-implemented for every `Clone` hook; implementors just derive
/// (or write) `Clone`.
///
/// Hooks whose state lives behind `Rc` handles (e.g. a policy whose
/// counters a harness reads back) clone the *handle*: forks of such a
/// system keep feeding the same shared state.
pub trait SchedHookClone {
    /// Boxes a copy of `self`.
    fn clone_box(&self) -> Box<dyn SchedHook>;
}

impl<T: SchedHook + Clone + 'static> SchedHookClone for T {
    fn clone_box(&self) -> Box<dyn SchedHook> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn SchedHook> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The unmodified kernel: never injects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullHook;

impl SchedHook for NullHook {
    fn on_schedule(&mut self, _ctx: &ScheduleContext<'_>) -> Decision {
        Decision::Run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimetrodon_machine::MachineConfig;

    #[test]
    fn null_hook_always_runs() {
        let machine = Machine::new(MachineConfig::xeon_e5520()).unwrap();
        let ctx = ScheduleContext {
            core: CoreId(0),
            thread: ThreadId(1),
            kind: ThreadKind::User,
            now: SimTime::ZERO,
            machine: &machine,
        };
        assert_eq!(NullHook.on_schedule(&ctx), Decision::Run);
    }
}
