//! Elementary thread bodies used in tests and as building blocks.
//!
//! Richer workloads (SPEC-like profiles, the web server) live in the
//! `dimetrodon-workload` crate; these two cover the common cases of "burn
//! CPU forever" and "burn a fixed amount of CPU, then exit".

use dimetrodon_sim_core::{SimDuration, SimTime};

use crate::thread::{Action, Burst, ThreadBody};

/// Runs forever at a fixed activity, in fixed-size bursts.
///
/// # Examples
///
/// ```
/// use dimetrodon_sched::{Spin, ThreadBody, Action};
/// use dimetrodon_sim_core::SimTime;
///
/// let mut body = Spin::new(1.0);
/// assert!(matches!(body.next_action(SimTime::ZERO), Action::Run(_)));
/// ```
#[derive(Debug, Clone)]
pub struct Spin {
    activity: f64,
    burst: SimDuration,
}

impl Spin {
    /// A spinner at the given activity with 10 ms work units.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn new(activity: f64) -> Self {
        Self::with_burst(activity, SimDuration::from_millis(10))
    }

    /// A spinner with a custom work-unit size.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]` or `burst` is zero.
    pub fn with_burst(activity: f64, burst: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&activity), "activity must be in [0, 1]");
        assert!(!burst.is_zero(), "burst must be positive");
        Spin { activity, burst }
    }
}

impl ThreadBody for Spin {
    fn next_action(&mut self, _now: SimTime) -> Action {
        Action::Run(Burst::new(self.burst, self.activity))
    }
}

/// Executes a fixed amount of CPU work, then exits.
///
/// This is the "finite cpuburn" shape of the paper's model-validation
/// experiments (§3.3): a thread with known CPU demand `R` whose completion
/// time under injection is predicted by `D(t) = R + S · p/(1−p) · L`.
#[derive(Debug, Clone)]
pub struct FixedWork {
    remaining: SimDuration,
    burst: SimDuration,
    activity: f64,
}

impl FixedWork {
    /// A body requiring `total` CPU time at the given activity, consumed
    /// in 10 ms work units.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or `activity` is outside `[0, 1]`.
    pub fn new(total: SimDuration, activity: f64) -> Self {
        Self::with_burst(total, activity, SimDuration::from_millis(10))
    }

    /// A body with a custom work-unit size.
    ///
    /// # Panics
    ///
    /// Panics if `total` or `burst` is zero, or `activity` is outside
    /// `[0, 1]`.
    pub fn with_burst(total: SimDuration, activity: f64, burst: SimDuration) -> Self {
        assert!(!total.is_zero(), "total work must be positive");
        assert!(!burst.is_zero(), "burst must be positive");
        assert!((0.0..=1.0).contains(&activity), "activity must be in [0, 1]");
        FixedWork {
            remaining: total,
            burst,
            activity,
        }
    }

    /// CPU time still to execute.
    pub fn remaining(&self) -> SimDuration {
        self.remaining
    }
}

impl ThreadBody for FixedWork {
    fn next_action(&mut self, _now: SimTime) -> Action {
        if self.remaining.is_zero() {
            return Action::Exit;
        }
        let chunk = self.remaining.min(self.burst);
        self.remaining -= chunk;
        Action::Run(Burst::new(chunk, self.activity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_never_exits() {
        let mut s = Spin::new(0.5);
        for _ in 0..100 {
            assert!(matches!(s.next_action(SimTime::ZERO), Action::Run(_)));
        }
    }

    #[test]
    fn fixed_work_consumes_then_exits() {
        let mut w = FixedWork::with_burst(
            SimDuration::from_millis(25),
            1.0,
            SimDuration::from_millis(10),
        );
        let mut total = SimDuration::ZERO;
        let mut actions = 0;
        loop {
            match w.next_action(SimTime::ZERO) {
                Action::Run(b) => {
                    total += b.cpu_time;
                    actions += 1;
                }
                Action::Exit => break,
                Action::Sleep(_) => panic!("FixedWork never sleeps"),
            }
        }
        assert_eq!(total, SimDuration::from_millis(25));
        assert_eq!(actions, 3); // 10 + 10 + 5
        // Exit is stable.
        assert_eq!(w.next_action(SimTime::ZERO), Action::Exit);
    }

    #[test]
    #[should_panic(expected = "total work must be positive")]
    fn fixed_work_rejects_zero() {
        FixedWork::new(SimDuration::ZERO, 1.0);
    }

    #[test]
    #[should_panic(expected = "activity")]
    fn spin_rejects_bad_activity() {
        Spin::new(2.0);
    }
}
