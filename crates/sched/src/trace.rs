//! Structured scheduling trace: what the kernel decided, when.
//!
//! A [`DecisionTrace`] is a bounded ring buffer of scheduling events —
//! dispatches, injected idles, sleeps, wakeups, exits — that the
//! [`System`](crate::System) records when tracing is enabled. It exists
//! for the same reason a production scheduler has `ktrace`/`sched:`
//! tracepoints: debugging policies ("did the injection actually pin the
//! thread?") and auditing experiments ("how many decisions did this run
//! make?") without printf archaeology.

use std::collections::VecDeque;
use std::fmt;

use dimetrodon_machine::CoreId;
use dimetrodon_sim_core::{SimDuration, SimTime};

use crate::thread::ThreadId;

/// One scheduling decision or lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A thread was dispatched onto a core.
    Dispatch {
        /// Core that dispatched.
        core: CoreId,
        /// Thread dispatched.
        thread: ThreadId,
    },
    /// An idle quantum was injected in place of a thread (which is pinned
    /// for the duration).
    InjectIdle {
        /// Core that idles.
        core: CoreId,
        /// The displaced, pinned thread.
        thread: ThreadId,
        /// Quantum length.
        quantum: SimDuration,
    },
    /// A thread blocked.
    Sleep {
        /// The thread.
        thread: ThreadId,
        /// Sleep duration.
        duration: SimDuration,
    },
    /// A sleeping thread became runnable.
    Wakeup {
        /// The thread.
        thread: ThreadId,
    },
    /// A thread exited.
    Exit {
        /// The thread.
        thread: ThreadId,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Dispatch { core, thread } => write!(f, "{core}: dispatch {thread}"),
            TraceEvent::InjectIdle {
                core,
                thread,
                quantum,
            } => write!(f, "{core}: inject idle {quantum} (pin {thread})"),
            TraceEvent::Sleep { thread, duration } => write!(f, "{thread}: sleep {duration}"),
            TraceEvent::Wakeup { thread } => write!(f, "{thread}: wakeup"),
            TraceEvent::Exit { thread } => write!(f, "{thread}: exit"),
        }
    }
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// Bounded ring buffer of [`TraceRecord`]s.
///
/// # Examples
///
/// ```
/// use dimetrodon_sched::{DecisionTrace, TraceEvent, ThreadId};
/// use dimetrodon_sim_core::SimTime;
///
/// let mut trace = DecisionTrace::new(2);
/// trace.record(SimTime::ZERO, TraceEvent::Wakeup { thread: ThreadId(1) });
/// trace.record(SimTime::from_millis(1), TraceEvent::Exit { thread: ThreadId(1) });
/// trace.record(SimTime::from_millis(2), TraceEvent::Wakeup { thread: ThreadId(2) });
/// // Capacity 2: the oldest record was evicted.
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DecisionTrace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl DecisionTrace {
    /// Creates a trace keeping at most `capacity` records (oldest
    /// evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        DecisionTrace {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { at, event });
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest-first over retained records.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Count of retained records matching a predicate.
    pub fn count_matching(&self, mut predicate: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.records.iter().filter(|r| predicate(&r.event)).count()
    }

    /// Renders the retained records, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier records dropped ...\n", self.dropped));
        }
        for record in &self.records {
            out.push_str(&format!("[{}] {}\n", record.at, record.event));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(n: u64) -> TraceEvent {
        TraceEvent::Wakeup { thread: ThreadId(n) }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = DecisionTrace::new(3);
        for i in 0..5 {
            t.record(SimTime::from_millis(i), wake(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.iter().next().unwrap();
        assert_eq!(first.event, wake(2));
    }

    #[test]
    fn count_matching() {
        let mut t = DecisionTrace::new(10);
        t.record(SimTime::ZERO, wake(1));
        t.record(SimTime::ZERO, TraceEvent::Exit { thread: ThreadId(1) });
        t.record(SimTime::ZERO, wake(2));
        assert_eq!(t.count_matching(|e| matches!(e, TraceEvent::Wakeup { .. })), 2);
    }

    #[test]
    fn render_includes_drop_notice() {
        let mut t = DecisionTrace::new(1);
        t.record(SimTime::ZERO, wake(1));
        t.record(SimTime::from_millis(5), wake(2));
        let text = t.render();
        assert!(text.contains("1 earlier records dropped"));
        assert!(text.contains("tid2: wakeup"));
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::InjectIdle {
            core: CoreId(2),
            thread: ThreadId(7),
            quantum: SimDuration::from_millis(25),
        };
        assert_eq!(e.to_string(), "cpu2: inject idle 25.000ms (pin tid7)");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        DecisionTrace::new(0);
    }
}
