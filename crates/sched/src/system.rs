//! The full-system simulation: machine + scheduler + threads + hook.
//!
//! [`System`] is the discrete-event counterpart of the paper's modified
//! FreeBSD kernel running on the test server. Cores dispatch threads in
//! timeslices; at every scheduling decision the installed [`SchedHook`]
//! may replace the selected thread with an injected idle quantum, pinning
//! the thread exactly as §3.1 describes; between events the machine model
//! integrates power and heat.
//!
//! # Mechanism (§3.1, reproduced faithfully)
//!
//! * When a core needs work it asks the scheduler for the next thread and
//!   consults the hook. On [`Decision::InjectIdle`], the selected thread
//!   is *pinned* (unavailable to other cores), the core runs the idle
//!   thread — entering the machine's idle state — for the quantum, and the
//!   thread is then unpinned and made runnable again.
//! * Context switches cost [`SchedConfig::switch_cost`] of active time;
//!   resuming after an injected idle additionally costs
//!   [`SchedConfig::resume_penalty`] (cold microarchitectural state — the
//!   effect §2.2 and §3.3 cite as the source of the model's ≈1 %
//!   throughput deviation, which grows with `p`).
//! * Kernel-vs-user thread kind is visible to the hook so policies can
//!   exempt kernel threads, as the paper's implementation does.

use dimetrodon_machine::{CoreId, Machine};
use dimetrodon_power::{CoreState as PowerCoreState, PowerMeter};
use dimetrodon_sim_core::{EventQueue, SimDuration, SimTime, TimeSeries};

use crate::hook::{Decision, NullHook, SchedHook, ScheduleContext};
use crate::scheduler::{BsdScheduler, Scheduler};
use crate::thread::{Action, Burst, ThreadBody, ThreadId, ThreadKind, ThreadStats};
use crate::trace::{DecisionTrace, TraceEvent};

/// Tunables of the kernel mechanism itself (not of any policy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Active time consumed by a context switch.
    pub switch_cost: SimDuration,
    /// Extra active time the first dispatch after an injected idle pays
    /// (cold caches / microarchitectural state, §2.2).
    pub resume_penalty: SimDuration,
    /// Interval between temperature samples recorded into the system's
    /// time series.
    pub sample_interval: SimDuration,
    /// Interval between scheduler decay / hook ticks.
    pub tick_interval: SimDuration,
    /// Thermal-aware wake placement: when several cores are idle, offer a
    /// waking thread to the coolest one first (the temperature-aware
    /// placement of Moore et al. / Gomaa et al. the paper cites as
    /// complementary). Off by default — the paper's kernel places by
    /// queue order.
    pub thermal_aware_placement: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            switch_cost: SimDuration::from_micros(5),
            resume_penalty: SimDuration::from_micros(150),
            sample_interval: SimDuration::from_millis(100),
            tick_interval: SimDuration::from_secs(1),
            thermal_aware_placement: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreEventKind {
    SwitchDone,
    SliceEnd,
    BurstEnd,
    InjectedIdleEnd,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Core {
        core: usize,
        token: u64,
        kind: CoreEventKind,
    },
    Wakeup(ThreadId),
    Sample,
    Tick,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadRun {
    Runnable,
    Running(CoreId),
    Sleeping,
    /// Pinned to a core whose injected idle quantum it is waiting out.
    Pinned(CoreId),
    Exited,
}

#[derive(Debug, Clone)]
struct ThreadState {
    kind: ThreadKind,
    body: Box<dyn ThreadBody>,
    run: ThreadRun,
    /// The burst to execute next (present whenever runnable/running).
    pending: Option<Burst>,
    last_core: Option<CoreId>,
    stats: ThreadStats,
}

#[derive(Debug, Clone, Copy)]
enum SwitchTarget {
    Run(ThreadId),
    Idle { pinned: ThreadId, quantum: SimDuration },
}

#[derive(Debug, Clone, Copy)]
enum CoreRun {
    Idle,
    Switching {
        target: SwitchTarget,
    },
    Running {
        thread: ThreadId,
        slice_end: SimTime,
        segment_start: SimTime,
        speed: f64,
    },
    InjectedIdle {
        pinned: ThreadId,
    },
}

#[derive(Debug, Clone)]
struct CoreCtl {
    token: u64,
    run: CoreRun,
    last_thread: Option<ThreadId>,
    /// Set when an injected idle just ended; the next thread dispatch pays
    /// the resume penalty.
    cold: bool,
}

/// The full-system discrete-event simulation.
///
/// # Examples
///
/// Four cpuburn-like spinners on the four-core machine, with no injection:
///
/// ```
/// use dimetrodon_machine::{Machine, MachineConfig};
/// use dimetrodon_sched::{Spin, System, ThreadKind};
/// use dimetrodon_sim_core::SimTime;
///
/// # fn main() -> Result<(), dimetrodon_machine::MachineError> {
/// let machine = Machine::new(MachineConfig::xeon_e5520())?;
/// let mut system = System::new(machine);
/// for _ in 0..4 {
///     system.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
/// }
/// system.run_until(SimTime::from_secs(30));
/// assert!(system.machine().mean_core_temperature() > 33.0);
/// # Ok(())
/// # }
/// ```
/// Cloning deep-copies every piece of mutable simulation state — machine,
/// scheduler bookkeeping, threads, event calendar, recorded series — so a
/// clone advances independently and bit-identically to the original having
/// continued uninterrupted. (Immutable thermal topology is shared via
/// `Arc`; hook or body state held behind `Rc` handles stays shared, see
/// [`SchedHookClone`](crate::SchedHookClone).)
#[derive(Debug)]
pub struct System {
    machine: Machine,
    scheduler: Box<dyn Scheduler>,
    hook: Box<dyn SchedHook>,
    config: SchedConfig,
    threads: Vec<ThreadState>,
    cores: Vec<CoreCtl>,
    queue: EventQueue<Event>,
    now: SimTime,
    last_advance: SimTime,
    mean_temp: TimeSeries,
    core_temps: Vec<TimeSeries>,
    dispatch_temps: Vec<TimeSeries>,
    power_meter: Option<PowerMeter>,
    trace: Option<DecisionTrace>,
    total_injected_idles: u64,
}

// Hand-written (not derived) so every field copy is an explicit line the
// S1 snapshot-coverage lint can hold to account: a field added to the
// struct but missing here is a deny-level finding, not a silent replay
// divergence.
impl Clone for System {
    fn clone(&self) -> Self {
        System {
            machine: self.machine.clone(),
            scheduler: self.scheduler.clone(),
            hook: self.hook.clone(),
            config: self.config,
            threads: self.threads.clone(),
            cores: self.cores.clone(),
            queue: self.queue.clone(),
            now: self.now,
            last_advance: self.last_advance,
            mean_temp: self.mean_temp.clone(),
            core_temps: self.core_temps.clone(),
            dispatch_temps: self.dispatch_temps.clone(),
            power_meter: self.power_meter.clone(),
            trace: self.trace.clone(),
            total_injected_idles: self.total_injected_idles,
        }
    }
}

/// A forkable checkpoint of a [`System`], produced by
/// [`System::snapshot`].
///
/// Holds a deep copy of the simulation's mutable state (the immutable
/// thermal topology stays shared via `Arc`). Each [`fork`](Self::fork)
/// yields an independent `System` that resumes from the captured instant.
#[derive(Debug, Clone)]
pub struct SystemSnapshot {
    state: System,
}

impl SystemSnapshot {
    /// A fresh, independent system resuming from the captured instant.
    pub fn fork(&self) -> System {
        self.state.clone()
    }

    /// Consumes the snapshot, yielding the captured system without a copy.
    pub fn into_system(self) -> System {
        self.state
    }
}

impl System {
    /// Creates a system with the 4.4BSD scheduler, no injection, and
    /// default mechanism tunables.
    pub fn new(machine: Machine) -> Self {
        Self::with_parts(
            machine,
            Box::new(BsdScheduler::new()),
            Box::new(NullHook),
            SchedConfig::default(),
        )
    }

    /// Creates a system from explicit parts.
    pub fn with_parts(
        machine: Machine,
        scheduler: Box<dyn Scheduler>,
        hook: Box<dyn SchedHook>,
        config: SchedConfig,
    ) -> Self {
        let num_cores = machine.num_cores();
        // Pending events at steady state: a few per core plus per-thread
        // wakeups and the periodic Sample/Tick pair; 64 covers every
        // workload here without a single heap reallocation.
        let mut queue = EventQueue::with_capacity(64);
        queue.push(SimTime::ZERO, Event::Sample);
        queue.push(SimTime::ZERO + config.tick_interval, Event::Tick);
        System {
            machine,
            scheduler,
            hook,
            config,
            threads: Vec::new(),
            cores: (0..num_cores)
                .map(|_| CoreCtl {
                    token: 0,
                    run: CoreRun::Idle,
                    last_thread: None,
                    cold: false,
                })
                .collect(),
            queue,
            now: SimTime::ZERO,
            last_advance: SimTime::ZERO,
            mean_temp: TimeSeries::new("mean_core_temp_c"),
            core_temps: (0..num_cores)
                .map(|i| TimeSeries::new(format!("core{i}_temp_c")))
                .collect(),
            dispatch_temps: (0..num_cores)
                .map(|i| TimeSeries::new(format!("core{i}_dispatch_temp_c")))
                .collect(),
            power_meter: None,
            trace: None,
            total_injected_idles: 0,
        }
    }

    /// Replaces the scheduling hook (e.g. to install a Dimetrodon policy).
    /// Takes effect at the next scheduling decision.
    pub fn set_hook(&mut self, hook: Box<dyn SchedHook>) {
        self.hook = hook;
    }

    /// The installed scheduling hook. Combined with
    /// [`SchedHook::as_any`], lets harnesses read policy counters
    /// (injection totals, fault statistics) back out after a run.
    pub fn hook(&self) -> &dyn SchedHook {
        self.hook.as_ref()
    }

    /// Attaches a power meter that observes package power from now on.
    pub fn attach_power_meter(&mut self, meter: PowerMeter) {
        self.power_meter = Some(meter);
    }

    /// The attached power meter, if any.
    pub fn power_meter(&self) -> Option<&PowerMeter> {
        self.power_meter.as_ref()
    }

    /// Enables scheduling-decision tracing, keeping the last `capacity`
    /// records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(DecisionTrace::new(capacity));
    }

    /// The decision trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&DecisionTrace> {
        self.trace.as_ref()
    }

    fn record_trace(&mut self, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.record(self.now, event);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access, for configuring actuators (P-state, TCC
    /// duty) before or between runs. Changing the machine's speed while
    /// threads are mid-slice affects only subsequently scheduled work.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Per-thread accounting.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not spawned on this system.
    pub fn thread_stats(&self, id: ThreadId) -> &ThreadStats {
        &self.threads[id.0 as usize].stats
    }

    /// Whether a thread has exited.
    pub fn has_exited(&self, id: ThreadId) -> bool {
        self.threads[id.0 as usize].run == ThreadRun::Exited
    }

    /// Ids of all spawned threads.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> {
        (0..self.threads.len() as u64).map(ThreadId)
    }

    /// The mean-core-temperature series, sampled every
    /// [`SchedConfig::sample_interval`].
    pub fn mean_temp_series(&self) -> &TimeSeries {
        &self.mean_temp
    }

    /// A single core's temperature series.
    pub fn core_temp_series(&self, core: CoreId) -> &TimeSeries {
        &self.core_temps[core.index()]
    }

    /// A core's *observed* temperature series: the hotspot sensor read at
    /// every thread dispatch on that core.
    ///
    /// This models how temperature was actually measured on the paper's
    /// platform: the `coretemp` logger is itself a process, and on a
    /// saturated machine its reads land at scheduling boundaries — which
    /// under idle injection predominantly follow idle quanta, when the
    /// hotspot has collapsed toward die bulk. The paper's Figure 3 "short
    /// quanta are disproportionately efficient" observation lives in this
    /// series, not in the physically time-averaged one.
    pub fn dispatch_temp_series(&self, core: CoreId) -> &TimeSeries {
        &self.dispatch_temps[core.index()]
    }

    /// Mean of all dispatch-point sensor readings across cores with time
    /// `>= from` — the paper's "average core temperature over the last N
    /// seconds" measurement. `None` if no dispatches occurred in the
    /// window.
    pub fn observed_temp_over(&self, from: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for series in &self.dispatch_temps {
            for (t, v) in series.iter() {
                if t >= from {
                    sum += v;
                    n += 1;
                }
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Total idle quanta injected across all threads.
    pub fn total_injected_idles(&self) -> u64 {
        self.total_injected_idles
    }

    /// Captures the whole simulation for later forking: a deep copy of all
    /// mutable state, sharing the immutable thermal topology via `Arc`.
    ///
    /// Taking one snapshot and [`fork`](SystemSnapshot::fork)ing it N
    /// times is how a parameter sweep reuses a common warmup prefix: every
    /// fork resumes from the captured instant bit-identically to a run
    /// that never stopped.
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot {
            state: self.clone(),
        }
    }

    /// Spawns a thread; it becomes runnable (or sleeps/exits) immediately
    /// according to its body's first action.
    pub fn spawn(&mut self, kind: ThreadKind, body: Box<dyn ThreadBody>) -> ThreadId {
        let id = ThreadId(self.threads.len() as u64);
        self.scheduler.on_spawn(id, kind);
        self.threads.push(ThreadState {
            kind,
            body,
            run: ThreadRun::Sleeping, // resolved below
            pending: None,
            last_core: None,
            stats: ThreadStats {
                spawned_at: self.now,
                ..ThreadStats::default()
            },
        });
        self.resolve_action(id);
        id
    }

    /// Runs the simulation until simulated time `t` (inclusive of events
    /// at `t`), then advances the machine model to exactly `t`.
    pub fn run_until(&mut self, t: SimTime) {
        // Size the sample series for the whole horizon up front instead
        // of doubling through it.
        if t > self.now {
            let samples = ((t - self.now).as_secs_f64()
                / self.config.sample_interval.as_secs_f64())
            .ceil() as usize
                + 1;
            self.mean_temp.reserve(samples);
            for series in &mut self.core_temps {
                series.reserve(samples);
            }
        }
        while let Some(scheduled) = self.queue.pop_at_or_before(t) {
            self.advance_to(scheduled.at);
            self.dispatch(scheduled.event);
        }
        self.advance_to(t);
    }

    /// Dispatches at most `max_events` events at or before `deadline`
    /// and returns how many actually ran. The pop/advance/dispatch loop
    /// is the same one [`run_until`](Self::run_until) uses, so a run
    /// chunked through `run_events` (checkpointing between chunks) and
    /// finished with `run_until(deadline)` is bit-identical to a single
    /// uninterrupted `run_until(deadline)`.
    ///
    /// A return value smaller than `max_events` means the queue holds no
    /// more events at or before the deadline; the machine model has
    /// *not* been advanced to the deadline yet — that is
    /// `run_until(deadline)`'s closing step.
    pub fn run_events(&mut self, max_events: u64, deadline: SimTime) -> u64 {
        let mut dispatched = 0;
        while dispatched < max_events {
            match self.queue.pop_at_or_before(deadline) {
                Some(scheduled) => {
                    self.advance_to(scheduled.at);
                    self.dispatch(scheduled.event);
                    dispatched += 1;
                }
                None => break,
            }
        }
        dispatched
    }

    /// Runs until every thread in `ids` has exited or `deadline` passes.
    /// Returns `true` if all exited.
    pub fn run_until_exited(&mut self, ids: &[ThreadId], deadline: SimTime) -> bool {
        loop {
            if ids.iter().all(|&id| self.has_exited(id)) {
                return true;
            }
            match self.queue.pop_at_or_before(deadline) {
                Some(scheduled) => {
                    self.advance_to(scheduled.at);
                    self.dispatch(scheduled.event);
                }
                None => return ids.iter().all(|&id| self.has_exited(id)),
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn advance_to(&mut self, t: SimTime) {
        if t > self.last_advance {
            let dt = t - self.last_advance;
            let watts = self.machine.advance(dt);
            if let Some(meter) = &mut self.power_meter {
                meter.observe(self.last_advance, dt, watts);
            }
            self.last_advance = t;
            dimetrodon_sim_core::sim_invariant!(
                self.machine.energy().elapsed()
                    == self.last_advance.saturating_since(SimTime::ZERO),
                "energy accounting drifted from scheduler time: meter at {}, \
                 scheduler at {}",
                self.machine.energy().elapsed(),
                self.last_advance
            );
        }
        if t > self.now {
            self.now = t;
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Core { core, token, kind } => {
                if self.cores[core].token != token {
                    return; // stale plan
                }
                match kind {
                    CoreEventKind::SwitchDone => self.on_switch_done(core),
                    CoreEventKind::SliceEnd => self.on_slice_end(core),
                    CoreEventKind::BurstEnd => self.on_burst_end(core),
                    CoreEventKind::InjectedIdleEnd => self.on_injected_idle_end(core),
                }
            }
            Event::Wakeup(id) => self.on_wakeup(id),
            Event::Sample => {
                self.mean_temp
                    .push(self.now, self.machine.mean_core_temperature());
                for core in 0..self.cores.len() {
                    let t = self.machine.core_temperature(CoreId(core));
                    self.core_temps[core].push(self.now, t);
                }
                self.queue
                    .push(self.now + self.config.sample_interval, Event::Sample);
            }
            Event::Tick => {
                self.scheduler.decay();
                self.hook.on_tick(self.now, &self.machine);
                self.queue
                    .push(self.now + self.config.tick_interval, Event::Tick);
            }
        }
    }

    /// Resolves a thread's next action (after spawn, wakeup, or burst
    /// completion when its slice is over).
    fn resolve_action(&mut self, id: ThreadId) {
        let idx = id.0 as usize;
        loop {
            let action = self.threads[idx].body.next_action(self.now);
            match action {
                Action::Run(burst) => {
                    self.threads[idx].pending = Some(burst);
                    self.make_runnable(id);
                    return;
                }
                Action::Sleep(d) => {
                    if d.is_zero() {
                        continue; // zero sleeps resolve immediately
                    }
                    self.threads[idx].run = ThreadRun::Sleeping;
                    self.queue.push(self.now + d, Event::Wakeup(id));
                    self.record_trace(TraceEvent::Sleep {
                        thread: id,
                        duration: d,
                    });
                    return;
                }
                Action::Exit => {
                    self.threads[idx].run = ThreadRun::Exited;
                    self.threads[idx].stats.exited_at = Some(self.now);
                    self.scheduler.on_exit(id);
                    self.record_trace(TraceEvent::Exit { thread: id });
                    return;
                }
            }
        }
    }

    fn make_runnable(&mut self, id: ThreadId) {
        let idx = id.0 as usize;
        debug_assert!(self.threads[idx].pending.is_some(), "runnable without burst");
        self.threads[idx].run = ThreadRun::Runnable;
        let last_core = self.threads[idx].last_core;
        self.scheduler.enqueue(id, last_core);
        self.kick_idle_cores();
    }

    fn kick_idle_cores(&mut self) {
        if !self.config.thermal_aware_placement {
            // Core order: check-and-schedule directly, no staging list
            // (this runs on every wakeup/enqueue).
            for core in 0..self.cores.len() {
                if matches!(self.cores[core].run, CoreRun::Idle) {
                    self.schedule_core(core);
                }
            }
            return;
        }
        // Offer work to the coolest die first, spreading heat.
        let mut idle: Vec<usize> = (0..self.cores.len())
            .filter(|&core| matches!(self.cores[core].run, CoreRun::Idle))
            .collect();
        idle.sort_by(|&a, &b| {
            self.machine
                .core_temperature(CoreId(a))
                .total_cmp(&self.machine.core_temperature(CoreId(b)))
        });
        for core in idle {
            if matches!(self.cores[core].run, CoreRun::Idle) {
                self.schedule_core(core);
            }
        }
    }

    /// Core `core` is free: pick the next thread (consulting the hook) or
    /// go idle.
    fn schedule_core(&mut self, core: usize) {
        let Some(tid) = self.scheduler.pick(CoreId(core)) else {
            self.cores[core].token += 1;
            self.cores[core].run = CoreRun::Idle;
            self.machine.set_core_idle(CoreId(core));
            return;
        };
        let kind = self.threads[tid.0 as usize].kind;
        let decision = self.hook.on_schedule(&ScheduleContext {
            core: CoreId(core),
            thread: tid,
            kind,
            now: self.now,
            machine: &self.machine,
        });
        match decision {
            Decision::Run => self.begin_dispatch(core, tid),
            Decision::InjectIdle(quantum) => {
                assert!(!quantum.is_zero(), "injected idle quantum must be positive");
                let ts = &mut self.threads[tid.0 as usize];
                ts.run = ThreadRun::Pinned(CoreId(core));
                ts.stats.injected_idles += 1;
                ts.stats.injected_idle_time += quantum;
                self.total_injected_idles += 1;
                self.record_trace(TraceEvent::InjectIdle {
                    core: CoreId(core),
                    thread: tid,
                    quantum,
                });
                // Switching to the kernel idle thread costs a context
                // switch like any other.
                self.begin_switch(core, SwitchTarget::Idle { pinned: tid, quantum });
            }
        }
    }

    fn begin_dispatch(&mut self, core: usize, tid: ThreadId) {
        let same_thread = self.cores[core].last_thread == Some(tid);
        if same_thread && !self.cores[core].cold {
            // Quantum continuation: no switch cost.
            self.begin_run(core, tid);
        } else {
            self.begin_switch(core, SwitchTarget::Run(tid));
        }
    }

    fn begin_switch(&mut self, core: usize, target: SwitchTarget) {
        let mut cost = self.config.switch_cost;
        if matches!(target, SwitchTarget::Run(_)) && self.cores[core].cold {
            cost += self.config.resume_penalty;
            // Waking out of a deep (cache-flushing) idle state costs the
            // refill on top — the §2.2 "microarchitectural state" price.
            if self.machine.core_state(CoreId(core)) == PowerCoreState::IdleC6 {
                if let Some(deep) = self.machine.config().deep_idle {
                    cost += deep.extra_resume_penalty;
                }
            }
            self.cores[core].cold = false;
        }
        if cost.is_zero() {
            self.finish_switch(core, target);
            return;
        }
        self.cores[core].token += 1;
        let token = self.cores[core].token;
        self.cores[core].run = CoreRun::Switching { target };
        // Kernel switch code is ordinary active execution.
        self.machine
            .set_core_state(CoreId(core), PowerCoreState::active(0.5));
        self.queue.push(
            self.now + cost,
            Event::Core {
                core,
                token,
                kind: CoreEventKind::SwitchDone,
            },
        );
    }

    fn on_switch_done(&mut self, core: usize) {
        let CoreRun::Switching { target } = self.cores[core].run else {
            unreachable!("SwitchDone with valid token implies Switching");
        };
        self.finish_switch(core, target);
    }

    fn finish_switch(&mut self, core: usize, target: SwitchTarget) {
        match target {
            SwitchTarget::Run(tid) => self.begin_run(core, tid),
            SwitchTarget::Idle { pinned, quantum } => {
                self.cores[core].token += 1;
                let token = self.cores[core].token;
                self.cores[core].run = CoreRun::InjectedIdle { pinned };
                self.cores[core].last_thread = None;
                // The governor knows the quantum length up front, so it
                // can pick a deep state when the residency is worth it.
                self.machine.set_core_idle_for(CoreId(core), Some(quantum));
                self.queue.push(
                    self.now + quantum,
                    Event::Core {
                        core,
                        token,
                        kind: CoreEventKind::InjectedIdleEnd,
                    },
                );
            }
        }
    }

    fn begin_run(&mut self, core: usize, tid: ThreadId) {
        // The dispatch boundary is where a monitoring process's sensor
        // reads land on a loaded machine; record what it would see.
        let sensor = self.machine.core_sensor_temperature(CoreId(core));
        self.dispatch_temps[core].push(self.now, sensor);
        self.record_trace(TraceEvent::Dispatch {
            core: CoreId(core),
            thread: tid,
        });
        let ts = &mut self.threads[tid.0 as usize];
        ts.run = ThreadRun::Running(CoreId(core));
        ts.last_core = Some(CoreId(core));
        ts.stats.scheduled_count += 1;
        self.cores[core].last_thread = Some(tid);
        self.cores[core].cold = false;
        let speed = self.machine.core_relative_speed(CoreId(core));
        let slice_end = self.now + self.scheduler.timeslice();
        self.start_segment(core, tid, slice_end, speed);
    }

    /// Begins (or continues) executing the thread's pending burst within
    /// the current slice.
    fn start_segment(&mut self, core: usize, tid: ThreadId, slice_end: SimTime, speed: f64) {
        let burst = self.threads[tid.0 as usize]
            .pending
            // simlint::allow(R1): a dispatched thread always carries a
            // pending burst (make_runnable is only called with one); the
            // token mechanism keeps stale events from reaching here.
            .expect("running thread has a pending burst");
        self.machine
            .set_core_state(CoreId(core), PowerCoreState::active(burst.activity));
        self.cores[core].token += 1;
        let token = self.cores[core].token;
        self.cores[core].run = CoreRun::Running {
            thread: tid,
            slice_end,
            segment_start: self.now,
            speed,
        };
        let wall_needed = SimDuration::from_secs_f64(burst.cpu_time.as_secs_f64() / speed);
        let burst_end = self.now + wall_needed;
        if burst_end <= slice_end {
            self.queue.push(
                burst_end,
                Event::Core {
                    core,
                    token,
                    kind: CoreEventKind::BurstEnd,
                },
            );
        } else {
            self.queue.push(
                slice_end,
                Event::Core {
                    core,
                    token,
                    kind: CoreEventKind::SliceEnd,
                },
            );
        }
    }

    fn on_slice_end(&mut self, core: usize) {
        let CoreRun::Running {
            thread,
            segment_start,
            speed,
            ..
        } = self.cores[core].run
        else {
            unreachable!("SliceEnd with valid token implies Running");
        };
        let ran = self.now - segment_start;
        let progress = ran.mul_f64(speed);
        let ts = &mut self.threads[thread.0 as usize];
        // simlint::allow(R1): Running state implies a pending burst; see
        // start_segment.
        let burst = ts.pending.expect("running thread has a burst");
        let remaining = burst.cpu_time.saturating_sub(progress);
        ts.stats.cpu_executed += burst.cpu_time - remaining;
        self.scheduler.charge(thread, ran);
        if remaining.is_zero() {
            // Rounding made the burst finish exactly at the slice edge.
            ts.pending = None;
            ts.stats.bursts_completed += 1;
            self.thread_finished_burst(core, thread, None);
        } else {
            ts.pending = Some(Burst::new(remaining, burst.activity));
            self.make_runnable(thread);
            self.schedule_core(core);
        }
    }

    fn on_burst_end(&mut self, core: usize) {
        let CoreRun::Running {
            thread,
            slice_end,
            segment_start,
            speed,
        } = self.cores[core].run
        else {
            unreachable!("BurstEnd with valid token implies Running");
        };
        let ran = self.now - segment_start;
        let ts = &mut self.threads[thread.0 as usize];
        // simlint::allow(R1): Running state implies a pending burst; see
        // start_segment.
        let burst = ts.pending.take().expect("running thread has a burst");
        ts.stats.cpu_executed += burst.cpu_time;
        ts.stats.bursts_completed += 1;
        self.scheduler.charge(thread, ran);
        self.thread_finished_burst(core, thread, Some((slice_end, speed)));
    }

    /// A burst ended. If the slice continues and the next action is
    /// another run, keep executing; otherwise free the core.
    fn thread_finished_burst(
        &mut self,
        core: usize,
        tid: ThreadId,
        slice: Option<(SimTime, f64)>,
    ) {
        let idx = tid.0 as usize;
        let action = self.threads[idx].body.next_action(self.now);
        match action {
            Action::Run(burst) => {
                self.threads[idx].pending = Some(burst);
                match slice {
                    Some((slice_end, speed)) if self.now < slice_end => {
                        // Continue within the same slice: no scheduling
                        // decision, no hook.
                        self.start_segment(core, tid, slice_end, speed);
                    }
                    _ => {
                        self.make_runnable(tid);
                        self.schedule_core(core);
                    }
                }
            }
            Action::Sleep(d) => {
                if d.is_zero() {
                    // Treat zero sleeps as yields.
                    self.threads[idx].pending = None;
                    self.resolve_action(tid);
                } else {
                    self.threads[idx].run = ThreadRun::Sleeping;
                    self.queue.push(self.now + d, Event::Wakeup(tid));
                    self.record_trace(TraceEvent::Sleep {
                        thread: tid,
                        duration: d,
                    });
                }
                self.schedule_core(core);
            }
            Action::Exit => {
                self.threads[idx].run = ThreadRun::Exited;
                self.threads[idx].stats.exited_at = Some(self.now);
                self.scheduler.on_exit(tid);
                self.record_trace(TraceEvent::Exit { thread: tid });
                self.schedule_core(core);
            }
        }
    }

    fn on_injected_idle_end(&mut self, core: usize) {
        let CoreRun::InjectedIdle { pinned } = self.cores[core].run else {
            unreachable!("InjectedIdleEnd with valid token implies InjectedIdle");
        };
        self.cores[core].cold = true;
        // Unpin: the thread rejoins the runqueue (any core may now take
        // it); then this core schedules normally — possibly injecting
        // again, which is what makes idle quanta per execution quantum
        // geometric with mean p/(1-p).
        self.make_runnable(pinned);
        if matches!(self.cores[core].run, CoreRun::InjectedIdle { .. }) {
            // kick_idle_cores does not consider this core (it is not
            // Idle), so schedule it explicitly.
            self.schedule_core(core);
        }
    }

    fn on_wakeup(&mut self, id: ThreadId) {
        if self.threads[id.0 as usize].run == ThreadRun::Sleeping {
            self.record_trace(TraceEvent::Wakeup { thread: id });
            self.resolve_action(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{FixedWork, Spin};
    use crate::scheduler::UleScheduler;
    use dimetrodon_machine::MachineConfig;
    use dimetrodon_sim_core::SimRng;

    fn machine() -> Machine {
        Machine::new(MachineConfig::xeon_e5520()).expect("valid preset")
    }

    fn system() -> System {
        System::new(machine())
    }

    /// A probabilistic injection hook for exercising the mechanism from
    /// this crate's tests (the real policies live in `dimetrodon`).
    #[derive(Debug, Clone)]
    struct TestInjector {
        p: f64,
        quantum: SimDuration,
        rng: SimRng,
    }

    impl SchedHook for TestInjector {
        fn on_schedule(&mut self, _ctx: &ScheduleContext<'_>) -> Decision {
            if self.rng.bernoulli(self.p) {
                Decision::InjectIdle(self.quantum)
            } else {
                Decision::Run
            }
        }
    }

    #[test]
    fn fixed_work_completes_in_expected_wall_time() {
        let mut sys = system();
        let id = sys.spawn(
            ThreadKind::User,
            Box::new(FixedWork::new(SimDuration::from_secs(2), 1.0)),
        );
        assert!(sys.run_until_exited(&[id], SimTime::from_secs(10)));
        let stats = sys.thread_stats(id);
        assert_eq!(stats.cpu_executed, SimDuration::from_secs(2));
        let wall = stats.wall_time().expect("exited");
        // Alone on a four-core machine: wall ~= cpu + tiny switch costs.
        let slack = wall.as_secs_f64() - 2.0;
        assert!((0.0..0.01).contains(&slack), "slack {slack}");
    }

    #[test]
    fn four_spinners_share_four_cores_fully() {
        let mut sys = system();
        let ids: Vec<ThreadId> = (0..4)
            .map(|_| sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0))))
            .collect();
        sys.run_until(SimTime::from_secs(10));
        for id in ids {
            let done = sys.thread_stats(id).cpu_executed.as_secs_f64();
            assert!((9.8..=10.0).contains(&done), "thread got {done}s of 10");
        }
    }

    #[test]
    fn six_spinners_on_four_cores_get_two_thirds_each() {
        let mut sys = system();
        let ids: Vec<ThreadId> = (0..6)
            .map(|_| sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0))))
            .collect();
        sys.run_until(SimTime::from_secs(30));
        for id in ids {
            let done = sys.thread_stats(id).cpu_executed.as_secs_f64();
            let share = done / 30.0;
            assert!(
                (0.55..0.78).contains(&share),
                "fair share violated: {share}"
            );
        }
    }

    #[test]
    fn scheduled_count_reflects_timeslices() {
        let mut sys = system();
        // Two spinners forced onto contention by spawning six on four
        // cores would migrate; instead check the solo case: a spinner
        // running 10 s in 100 ms slices is dispatched ~100 times.
        let id = sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
        sys.run_until(SimTime::from_secs(10));
        let s = sys.thread_stats(id).scheduled_count;
        assert!((95..=105).contains(&s), "scheduled {s} times");
    }

    #[test]
    fn sleeping_thread_wakes_and_runs() {
        #[derive(Debug, Clone)]
        struct SleepThenWork {
            phase: u32,
        }
        impl ThreadBody for SleepThenWork {
            fn next_action(&mut self, _now: SimTime) -> Action {
                self.phase += 1;
                match self.phase {
                    1 => Action::Sleep(SimDuration::from_secs(1)),
                    2 => Action::Run(Burst::new(SimDuration::from_millis(50), 1.0)),
                    _ => Action::Exit,
                }
            }
        }
        let mut sys = system();
        let id = sys.spawn(ThreadKind::User, Box::new(SleepThenWork { phase: 0 }));
        assert!(sys.run_until_exited(&[id], SimTime::from_secs(5)));
        let stats = sys.thread_stats(id);
        assert_eq!(stats.cpu_executed, SimDuration::from_millis(50));
        let wall = stats.wall_time().unwrap().as_secs_f64();
        assert!((1.05..1.06).contains(&wall), "wall {wall}");
    }

    #[test]
    fn injection_slows_thread_as_model_predicts() {
        // R = 2 s of work in 100 ms slices => S = 20. p = 0.5, L = 100 ms
        // => D = R + S * 1.0 * 0.1 = 4 s.
        let mut sys = system();
        sys.set_hook(Box::new(TestInjector {
            p: 0.5,
            quantum: SimDuration::from_millis(100),
            rng: SimRng::new(42),
        }));
        let id = sys.spawn(
            ThreadKind::User,
            Box::new(FixedWork::new(SimDuration::from_secs(2), 1.0)),
        );
        assert!(sys.run_until_exited(&[id], SimTime::from_secs(30)));
        let wall = sys.thread_stats(id).wall_time().unwrap().as_secs_f64();
        // Probabilistic: allow a generous band around 4 s.
        assert!((3.0..5.2).contains(&wall), "wall {wall}");
        assert!(sys.thread_stats(id).injected_idles > 5);
        assert!(sys.total_injected_idles() > 5);
    }

    #[test]
    fn injection_cools_the_machine() {
        let run = |p: f64| {
            let mut sys = system();
            sys.machine_mut().settle_idle();
            sys.set_hook(Box::new(TestInjector {
                p,
                quantum: SimDuration::from_millis(100),
                rng: SimRng::new(7),
            }));
            for _ in 0..4 {
                sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
            }
            sys.run_until(SimTime::from_secs(120));
            sys.machine().mean_core_temperature()
        };
        let hot = run(0.0);
        let cooled = run(0.5);
        assert!(
            cooled < hot - 3.0,
            "injection should cool: p=0 -> {hot}, p=0.5 -> {cooled}"
        );
    }

    #[test]
    fn pinned_thread_is_not_run_elsewhere() {
        // One spinner, p = 1 would starve; use p high with 3 other cores
        // empty: while pinned, no other core may run the thread, so its
        // cpu share drops according to injection.
        let mut sys = system();
        sys.set_hook(Box::new(TestInjector {
            p: 0.75,
            quantum: SimDuration::from_millis(100),
            rng: SimRng::new(3),
        }));
        let id = sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
        sys.run_until(SimTime::from_secs(20));
        let done = sys.thread_stats(id).cpu_executed.as_secs_f64();
        let share = done / 20.0;
        // Expected share = 1/(1 + p/(1-p)) = 25%.
        assert!((0.17..0.35).contains(&share), "share {share}");
    }

    #[test]
    fn temperature_series_is_sampled() {
        let mut sys = system();
        sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
        sys.run_until(SimTime::from_secs(5));
        // 100 ms sampling for 5 s: ~50 samples.
        assert!((45..=55).contains(&sys.mean_temp_series().len()));
        assert!(sys.core_temp_series(CoreId(0)).len() >= 45);
    }

    #[test]
    fn power_meter_observes_trace() {
        let mut rng = SimRng::new(9);
        let mut sys = system();
        sys.machine_mut().settle_idle();
        sys.attach_power_meter(PowerMeter::ideal(SimDuration::from_millis(1), &mut rng));
        for _ in 0..4 {
            sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
        }
        sys.run_until(SimTime::from_secs(1));
        let meter = sys.power_meter().expect("attached");
        assert!(meter.series().len() > 900);
        // Full load: around 72 W.
        let mean = meter.series().mean().unwrap();
        assert!((60.0..85.0).contains(&mean), "mean power {mean}");
    }

    #[test]
    fn ule_scheduler_also_works() {
        let m = machine();
        let mut sys = System::with_parts(
            m,
            Box::new(UleScheduler::new(4)),
            Box::new(NullHook),
            SchedConfig::default(),
        );
        let ids: Vec<ThreadId> = (0..4)
            .map(|_| sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0))))
            .collect();
        sys.run_until(SimTime::from_secs(5));
        for id in ids {
            let done = sys.thread_stats(id).cpu_executed.as_secs_f64();
            assert!(done > 4.8, "ULE starved a thread: {done}");
        }
    }

    #[test]
    fn vfs_slows_execution_proportionally() {
        use dimetrodon_power::PStateId;
        let mut sys = system();
        let slowest = PStateId(sys.machine().config().pstates.len() - 1);
        sys.machine_mut().set_pstate(slowest);
        let id = sys.spawn(
            ThreadKind::User,
            Box::new(FixedWork::new(SimDuration::from_secs(1), 1.0)),
        );
        assert!(sys.run_until_exited(&[id], SimTime::from_secs(10)));
        let wall = sys.thread_stats(id).wall_time().unwrap().as_secs_f64();
        let expected = 2266.0 / 1600.0;
        assert!(
            (wall - expected).abs() < 0.02,
            "wall {wall} vs expected {expected}"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = || {
            let mut sys = system();
            sys.set_hook(Box::new(TestInjector {
                p: 0.5,
                quantum: SimDuration::from_millis(50),
                rng: SimRng::new(1234),
            }));
            let ids: Vec<ThreadId> = (0..4)
                .map(|_| {
                    sys.spawn(
                        ThreadKind::User,
                        Box::new(FixedWork::new(SimDuration::from_secs(1), 1.0)),
                    )
                })
                .collect();
            sys.run_until(SimTime::from_secs(20));
            ids.iter()
                .map(|&id| sys.thread_stats(id).clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exited_threads_stop_consuming() {
        let mut sys = system();
        let id = sys.spawn(
            ThreadKind::User,
            Box::new(FixedWork::new(SimDuration::from_millis(100), 1.0)),
        );
        sys.run_until(SimTime::from_secs(2));
        assert!(sys.has_exited(id));
        assert_eq!(sys.thread_stats(id).cpu_executed, SimDuration::from_millis(100));
        // Machine returns to idle after exit.
        assert!(!sys.machine().core_state(CoreId(0)).is_active());
    }

    #[test]
    fn thermal_aware_placement_spreads_heat() {
        // A single periodic hot thread: without placement it lands on
        // core 0 every wake (queue order); with thermal-aware placement
        // it rotates to the coolest die, so the hottest die stays cooler.
        #[derive(Debug, Clone)]
        struct PulsedBurn {
            working: bool,
            left: SimDuration,
        }
        impl ThreadBody for PulsedBurn {
            fn next_action(&mut self, _now: SimTime) -> Action {
                if !self.working {
                    self.working = true;
                    self.left = SimDuration::from_millis(300);
                }
                if self.left.is_zero() {
                    self.working = false;
                    // Short sleep: the just-used die is still warm at the
                    // next wake, so a coolest-first placement rotates.
                    return Action::Sleep(SimDuration::from_millis(60));
                }
                let chunk = self.left.min(SimDuration::from_millis(10));
                self.left -= chunk;
                Action::Run(Burst::new(chunk, 1.0))
            }
        }
        let hottest_die_tail_mean = |placement: bool| {
            let machine = machine();
            let config = SchedConfig {
                thermal_aware_placement: placement,
                ..SchedConfig::default()
            };
            let mut sys = System::with_parts(
                machine,
                Box::new(BsdScheduler::new()),
                Box::new(NullHook),
                config,
            );
            sys.machine_mut().settle_idle();
            sys.spawn(
                ThreadKind::User,
                Box::new(PulsedBurn {
                    working: false,
                    left: SimDuration::ZERO,
                }),
            );
            sys.run_until(SimTime::from_secs(60));
            (0..4)
                .map(|i| {
                    sys.core_temp_series(CoreId(i))
                        .mean_over(SimTime::from_secs(30))
                        .expect("sampled")
                })
                .fold(f64::MIN, f64::max)
        };
        let concentrated = hottest_die_tail_mean(false);
        let spread = hottest_die_tail_mean(true);
        assert!(
            spread < concentrated - 0.3,
            "placement should lower the hottest die: {spread} vs {concentrated}"
        );
    }

    #[test]
    fn deep_idle_cools_long_quanta_further() {
        // Same policy, platform with/without a C6-class state: the deep
        // state lowers the idle floor during long injected quanta.
        let run_on = |config: dimetrodon_machine::MachineConfig| {
            let mut machine = Machine::new(config).unwrap();
            machine.settle_idle();
            let mut sys = System::new(machine);
            sys.set_hook(Box::new(TestInjector {
                p: 0.6,
                quantum: SimDuration::from_millis(100),
                rng: SimRng::new(88),
            }));
            for _ in 0..4 {
                sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
            }
            sys.run_until(SimTime::from_secs(100));
            sys.mean_temp_series()
                .mean_over(SimTime::from_secs(80))
                .expect("sampled")
        };
        let c1e_only = run_on(dimetrodon_machine::MachineConfig::xeon_e5520());
        let with_c6 = run_on(dimetrodon_machine::MachineConfig::xeon_e5520_deep_idle());
        assert!(
            with_c6 < c1e_only - 0.1,
            "C6 should cool further: {with_c6} vs {c1e_only}"
        );
    }

    #[test]
    fn deep_idle_not_entered_for_short_quanta() {
        let mut machine =
            Machine::new(dimetrodon_machine::MachineConfig::xeon_e5520_deep_idle()).unwrap();
        machine.settle_idle();
        let mut sys = System::new(machine);
        sys.set_hook(Box::new(TestInjector {
            p: 0.6,
            quantum: SimDuration::from_micros(500), // below min residency
            rng: SimRng::new(89),
        }));
        sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
        // Step through events and check no core ever sits in C6.
        for step in 1..=200 {
            sys.run_until(SimTime::from_millis(step * 10));
            for core in 0..4 {
                assert_ne!(
                    sys.machine().core_state(CoreId(core)),
                    PowerCoreState::IdleC6,
                    "short quanta must not enter C6"
                );
            }
        }
    }

    #[test]
    fn trace_records_scheduling_story() {
        let mut sys = system();
        sys.enable_trace(100_000);
        sys.set_hook(Box::new(TestInjector {
            p: 0.5,
            quantum: SimDuration::from_millis(100),
            rng: SimRng::new(77),
        }));
        let id = sys.spawn(
            ThreadKind::User,
            Box::new(FixedWork::new(SimDuration::from_secs(1), 1.0)),
        );
        assert!(sys.run_until_exited(&[id], SimTime::from_secs(30)));
        let trace = sys.trace().expect("enabled");

        // Trace counts agree with the accounting.
        let injections = trace.count_matching(|e| matches!(e, TraceEvent::InjectIdle { .. }));
        assert_eq!(injections as u64, sys.total_injected_idles());
        let dispatches = trace.count_matching(|e| matches!(e, TraceEvent::Dispatch { .. }));
        assert_eq!(dispatches as u64, sys.thread_stats(id).scheduled_count);
        assert_eq!(trace.count_matching(|e| matches!(e, TraceEvent::Exit { .. })), 1);

        // Pinning invariant from the trace: after an InjectIdle that pins
        // the thread on a core, its next dispatch never occurs on a
        // *different* core at the same instant (it was unavailable).
        let mut pinned_until: Option<SimTime> = None;
        for record in trace.iter() {
            match record.event {
                TraceEvent::InjectIdle { .. } => {
                    pinned_until = Some(record.at + SimDuration::from_millis(100));
                }
                TraceEvent::Dispatch { .. } => {
                    if let Some(until) = pinned_until.take() {
                        assert!(
                            record.at >= until,
                            "thread dispatched at {} while pinned until {until}",
                            record.at
                        );
                    }
                }
                _ => {}
            }
        }
        // And the human-readable dump mentions the pinning.
        assert!(trace.render().contains("inject idle"));
    }

    #[test]
    fn threads_can_spawn_mid_run() {
        let mut sys = system();
        let first = sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
        sys.run_until(SimTime::from_secs(5));
        let late = sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
        sys.run_until(SimTime::from_secs(10));
        // The late thread runs from its spawn instant on a free core.
        let late_cpu = sys.thread_stats(late).cpu_executed.as_secs_f64();
        assert!((4.8..=5.0).contains(&late_cpu), "late thread got {late_cpu}");
        assert_eq!(sys.thread_stats(late).spawned_at, SimTime::from_secs(5));
        assert!(sys.thread_stats(first).cpu_executed.as_secs_f64() > 9.8);
    }

    #[test]
    fn run_until_is_idempotent_at_the_same_instant() {
        let mut sys = system();
        sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
        sys.run_until(SimTime::from_secs(2));
        let temp = sys.machine().mean_core_temperature();
        let energy = sys.machine().energy().joules();
        sys.run_until(SimTime::from_secs(2));
        assert_eq!(sys.machine().mean_core_temperature(), temp);
        assert_eq!(sys.machine().energy().joules(), energy);
        assert_eq!(sys.now(), SimTime::from_secs(2));
    }

    #[test]
    fn mid_run_pstate_change_slows_subsequent_work() {
        use dimetrodon_power::PStateId;
        let mut sys = system();
        let id = sys.spawn(ThreadKind::User, Box::new(Spin::new(1.0)));
        sys.run_until(SimTime::from_secs(5));
        let before = sys.thread_stats(id).cpu_executed.as_secs_f64();
        let slowest = PStateId(sys.machine().config().pstates.len() - 1);
        sys.machine_mut().set_pstate(slowest);
        sys.run_until(SimTime::from_secs(10));
        let gained = sys.thread_stats(id).cpu_executed.as_secs_f64() - before;
        // Second half progressed at ~71% speed (applied from the next
        // scheduled slice).
        assert!((3.3..3.8).contains(&gained), "gained {gained}");
    }

    #[test]
    fn kernel_threads_visible_to_hook() {
        #[derive(Debug, Default)]
        struct KindRecorder {
            kernel_seen: std::cell::Cell<bool>,
        }
        #[derive(Debug, Clone)]
        struct RecordingHook(std::rc::Rc<KindRecorder>);
        impl SchedHook for RecordingHook {
            fn on_schedule(&mut self, ctx: &ScheduleContext<'_>) -> Decision {
                if ctx.kind == ThreadKind::Kernel {
                    self.0.kernel_seen.set(true);
                }
                Decision::Run
            }
        }
        let recorder = std::rc::Rc::new(KindRecorder::default());
        let mut sys = system();
        sys.set_hook(Box::new(RecordingHook(recorder.clone())));
        sys.spawn(
            ThreadKind::Kernel,
            Box::new(FixedWork::new(SimDuration::from_millis(10), 0.5)),
        );
        sys.run_until(SimTime::from_secs(1));
        assert!(recorder.kernel_seen.get());
    }
}
