//! Runqueue policies: the 4.4BSD multi-level feedback queue the paper
//! modified, and a ULE-lite per-CPU variant for footnote 2's "the mechanism
//! generalises to ULE and other schedulers".

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use dimetrodon_machine::CoreId;
use dimetrodon_sim_core::SimDuration;

use crate::thread::{ThreadId, ThreadKind};

/// A runqueue policy: decides which runnable thread a core runs next.
///
/// The [`System`](crate::System) owns thread state; the scheduler only
/// tracks runnable membership and its own priority bookkeeping. Methods are
/// notifications from the system.
pub trait Scheduler: fmt::Debug + SchedulerClone {
    /// A thread came into existence.
    fn on_spawn(&mut self, id: ThreadId, kind: ThreadKind);
    /// A thread exited (it is guaranteed not runnable at this point).
    fn on_exit(&mut self, id: ThreadId);
    /// A thread became runnable. `last_core` is where it last ran, for
    /// affinity-aware policies.
    fn enqueue(&mut self, id: ThreadId, last_core: Option<CoreId>);
    /// Removes and returns the thread `core` should run next.
    fn pick(&mut self, core: CoreId) -> Option<ThreadId>;
    /// Charges `ran` of CPU time to a thread (priority decay input).
    fn charge(&mut self, id: ThreadId, ran: SimDuration);
    /// Periodic decay of recent-CPU estimates (called about once per
    /// simulated second).
    fn decay(&mut self);
    /// The scheduling quantum.
    fn timeslice(&self) -> SimDuration;
    /// Number of currently runnable (queued) threads.
    fn runnable_count(&self) -> usize;
}

/// Object-safe cloning for boxed schedulers, so a whole
/// [`System`](crate::System) can be forked mid-run with its runqueue and
/// priority bookkeeping intact. Blanket-implemented for every `Clone`
/// scheduler; implementors just derive (or write) `Clone`.
pub trait SchedulerClone {
    /// Boxes a copy of `self`.
    fn clone_box(&self) -> Box<dyn Scheduler>;
}

impl<T: Scheduler + Clone + 'static> SchedulerClone for T {
    fn clone_box(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Scheduler> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The 4.4BSD scheduler: a global multi-level feedback queue with a fixed
/// 100 ms timeslice (the FreeBSD 7.x default the paper modified, §3.1).
///
/// Priorities derive from an exponentially decayed estimate of recent CPU
/// use (`estcpu`), so CPU hogs sink and interactive threads rise; kernel
/// threads occupy a strictly higher-priority band than user threads.
///
/// # Examples
///
/// ```
/// use dimetrodon_sched::{BsdScheduler, Scheduler, ThreadId, ThreadKind};
/// use dimetrodon_machine::CoreId;
///
/// let mut sched = BsdScheduler::new();
/// sched.on_spawn(ThreadId(1), ThreadKind::User);
/// sched.on_spawn(ThreadId(2), ThreadKind::Kernel);
/// sched.enqueue(ThreadId(1), None);
/// sched.enqueue(ThreadId(2), None);
/// // The kernel thread outranks the user thread.
/// assert_eq!(sched.pick(CoreId(0)), Some(ThreadId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct BsdScheduler {
    timeslice: SimDuration,
    meta: BTreeMap<ThreadId, BsdEntity>,
    /// Priority band -> FIFO of runnable threads. Lower band runs first.
    queues: BTreeMap<u32, VecDeque<ThreadId>>,
    runnable: usize,
}

#[derive(Debug, Clone, Copy)]
struct BsdEntity {
    kind: ThreadKind,
    /// Decayed recent CPU use, in seconds.
    estcpu: f64,
}

impl BsdEntity {
    fn band(&self) -> u32 {
        let base = match self.kind {
            ThreadKind::Kernel => 10,
            ThreadKind::User => 50,
        };
        // Two priority steps per second of recent CPU, saturating the way
        // ESTCPULIM caps the real scheduler: long-running CPU hogs and
        // threads a few seconds into a burst land in the same band and
        // round-robin, while freshly woken threads briefly outrank both.
        base + ((self.estcpu * 2.0) as u32).min(20)
    }
}

impl BsdScheduler {
    /// The FreeBSD 4.4BSD scheduler's fixed timeslice.
    pub const TIMESLICE: SimDuration = SimDuration::from_millis(100);

    /// Creates the scheduler with the paper's 100 ms timeslice.
    pub fn new() -> Self {
        Self::with_timeslice(Self::TIMESLICE)
    }

    /// Creates the scheduler with a custom timeslice (for sensitivity
    /// studies).
    ///
    /// # Panics
    ///
    /// Panics if `timeslice` is zero.
    pub fn with_timeslice(timeslice: SimDuration) -> Self {
        assert!(!timeslice.is_zero(), "timeslice must be positive");
        BsdScheduler {
            timeslice,
            meta: BTreeMap::new(),
            queues: BTreeMap::new(),
            runnable: 0,
        }
    }
}

impl Default for BsdScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for BsdScheduler {
    fn on_spawn(&mut self, id: ThreadId, kind: ThreadKind) {
        self.meta.insert(id, BsdEntity { kind, estcpu: 0.0 });
    }

    fn on_exit(&mut self, id: ThreadId) {
        self.meta.remove(&id);
    }

    fn enqueue(&mut self, id: ThreadId, _last_core: Option<CoreId>) {
        // simlint::allow(R1): enqueueing a never-spawned thread is a System
        // logic error; a should_panic test pins this contract.
        let entity = self.meta.get(&id).expect("enqueue of unknown thread");
        self.queues.entry(entity.band()).or_default().push_back(id);
        self.runnable += 1;
    }

    fn pick(&mut self, _core: CoreId) -> Option<ThreadId> {
        let (&band, queue) = self.queues.iter_mut().find(|(_, q)| !q.is_empty())?;
        let id = queue.pop_front();
        if queue.is_empty() {
            self.queues.remove(&band);
        }
        if id.is_some() {
            self.runnable -= 1;
        }
        id
    }

    fn charge(&mut self, id: ThreadId, ran: SimDuration) {
        if let Some(entity) = self.meta.get_mut(&id) {
            entity.estcpu += ran.as_secs_f64();
        }
    }

    fn decay(&mut self) {
        // The classic (2*load)/(2*load+1) filter at the loads these
        // experiments run (several runnable threads): a slow decay, so
        // recent-CPU estimates persist across a multi-second burst.
        for entity in self.meta.values_mut() {
            entity.estcpu *= 0.97;
        }
    }

    fn timeslice(&self) -> SimDuration {
        self.timeslice
    }

    fn runnable_count(&self) -> usize {
        self.runnable
    }
}

/// A ULE-lite scheduler: per-CPU runqueues with idle-time work stealing
/// and a shorter timeslice, standing in for FreeBSD's ULE (footnote 2).
///
/// Deliberately simplified: no interactivity scoring, two static bands
/// (kernel above user), FIFO within a band.
#[derive(Debug, Clone)]
pub struct UleScheduler {
    timeslice: SimDuration,
    kinds: BTreeMap<ThreadId, ThreadKind>,
    /// Per-core [kernel, user] queues.
    queues: Vec<[VecDeque<ThreadId>; 2]>,
    next_core: usize,
    runnable: usize,
}

impl UleScheduler {
    /// ULE's default timeslice order of magnitude.
    pub const TIMESLICE: SimDuration = SimDuration::from_millis(10);

    /// Creates a ULE-lite scheduler for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        UleScheduler {
            timeslice: Self::TIMESLICE,
            kinds: BTreeMap::new(),
            queues: (0..num_cores)
                .map(|_| [VecDeque::new(), VecDeque::new()])
                .collect(),
            next_core: 0,
            runnable: 0,
        }
    }

    fn band(kind: ThreadKind) -> usize {
        match kind {
            ThreadKind::Kernel => 0,
            ThreadKind::User => 1,
        }
    }

    fn pop_from(queues: &mut [VecDeque<ThreadId>; 2]) -> Option<ThreadId> {
        queues[0].pop_front().or_else(|| queues[1].pop_front())
    }
}

impl Scheduler for UleScheduler {
    fn on_spawn(&mut self, id: ThreadId, kind: ThreadKind) {
        self.kinds.insert(id, kind);
    }

    fn on_exit(&mut self, id: ThreadId) {
        self.kinds.remove(&id);
    }

    fn enqueue(&mut self, id: ThreadId, last_core: Option<CoreId>) {
        // simlint::allow(R1): same spawn-before-enqueue contract as
        // BsdScheduler; a System logic error, not a recoverable state.
        let kind = *self.kinds.get(&id).expect("enqueue of unknown thread");
        // Affinity: requeue where the thread last ran; otherwise round-
        // robin placement.
        let core = match last_core {
            Some(c) if c.index() < self.queues.len() => c.index(),
            _ => {
                let c = self.next_core;
                self.next_core = (self.next_core + 1) % self.queues.len();
                c
            }
        };
        self.queues[core][Self::band(kind)].push_back(id);
        self.runnable += 1;
    }

    fn pick(&mut self, core: CoreId) -> Option<ThreadId> {
        let own = Self::pop_from(&mut self.queues[core.index()]);
        let picked = own.or_else(|| {
            // Steal from the most loaded peer.
            let victim = (0..self.queues.len())
                .filter(|&i| i != core.index())
                .max_by_key(|&i| self.queues[i][0].len() + self.queues[i][1].len())?;
            Self::pop_from(&mut self.queues[victim])
        });
        if picked.is_some() {
            self.runnable -= 1;
        }
        picked
    }

    fn charge(&mut self, _id: ThreadId, _ran: SimDuration) {}

    fn decay(&mut self) {}

    fn timeslice(&self) -> SimDuration {
        self.timeslice
    }

    fn runnable_count(&self) -> usize {
        self.runnable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(n: u64) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn bsd_round_robin_within_band() {
        let mut s = BsdScheduler::new();
        for i in 0..3 {
            s.on_spawn(uid(i), ThreadKind::User);
            s.enqueue(uid(i), None);
        }
        assert_eq!(s.runnable_count(), 3);
        assert_eq!(s.pick(CoreId(0)), Some(uid(0)));
        assert_eq!(s.pick(CoreId(1)), Some(uid(1)));
        s.enqueue(uid(0), None);
        assert_eq!(s.pick(CoreId(0)), Some(uid(2)));
        assert_eq!(s.pick(CoreId(0)), Some(uid(0)));
        assert_eq!(s.pick(CoreId(0)), None);
        assert_eq!(s.runnable_count(), 0);
    }

    #[test]
    fn bsd_kernel_threads_outrank_users() {
        let mut s = BsdScheduler::new();
        s.on_spawn(uid(1), ThreadKind::User);
        s.on_spawn(uid(2), ThreadKind::Kernel);
        s.enqueue(uid(1), None);
        s.enqueue(uid(2), None);
        assert_eq!(s.pick(CoreId(0)), Some(uid(2)));
    }

    #[test]
    fn bsd_cpu_hogs_sink_below_fresh_threads() {
        let mut s = BsdScheduler::new();
        s.on_spawn(uid(1), ThreadKind::User);
        s.on_spawn(uid(2), ThreadKind::User);
        // Thread 1 has burned lots of recent CPU.
        s.charge(uid(1), SimDuration::from_secs(3));
        s.enqueue(uid(1), None);
        s.enqueue(uid(2), None);
        assert_eq!(s.pick(CoreId(0)), Some(uid(2)), "fresh thread should outrank hog");
    }

    #[test]
    fn bsd_decay_restores_priority() {
        let mut s = BsdScheduler::new();
        s.on_spawn(uid(1), ThreadKind::User);
        s.charge(uid(1), SimDuration::from_secs(5));
        for _ in 0..200 {
            s.decay();
        }
        s.on_spawn(uid(2), ThreadKind::User);
        s.enqueue(uid(1), None);
        s.enqueue(uid(2), None);
        // After heavy decay both are in the same band; FIFO applies.
        assert_eq!(s.pick(CoreId(0)), Some(uid(1)));
    }

    #[test]
    fn bsd_estcpu_saturates_so_hogs_round_robin() {
        // A thread hours into a burn and a thread a dozen seconds into
        // one land in the same (capped) band and round-robin fairly.
        let mut s = BsdScheduler::new();
        s.on_spawn(uid(1), ThreadKind::User);
        s.on_spawn(uid(2), ThreadKind::User);
        s.charge(uid(1), SimDuration::from_secs(3600));
        s.charge(uid(2), SimDuration::from_secs(12));
        s.enqueue(uid(1), None);
        s.enqueue(uid(2), None);
        assert_eq!(s.pick(CoreId(0)), Some(uid(1)), "FIFO within the capped band");
        assert_eq!(s.pick(CoreId(0)), Some(uid(2)));
    }

    #[test]
    fn bsd_timeslice_is_100ms() {
        assert_eq!(BsdScheduler::new().timeslice(), SimDuration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "timeslice must be positive")]
    fn bsd_zero_timeslice_panics() {
        BsdScheduler::with_timeslice(SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown thread")]
    fn bsd_enqueue_unknown_panics() {
        BsdScheduler::new().enqueue(uid(9), None);
    }

    #[test]
    fn ule_prefers_own_queue_then_steals() {
        let mut s = UleScheduler::new(2);
        s.on_spawn(uid(1), ThreadKind::User);
        s.on_spawn(uid(2), ThreadKind::User);
        s.enqueue(uid(1), Some(CoreId(0)));
        s.enqueue(uid(2), Some(CoreId(0)));
        // Core 1 has nothing local; it steals from core 0.
        assert_eq!(s.pick(CoreId(1)), Some(uid(1)));
        assert_eq!(s.pick(CoreId(0)), Some(uid(2)));
        assert_eq!(s.pick(CoreId(0)), None);
    }

    #[test]
    fn ule_affinity_requeues_to_last_core() {
        let mut s = UleScheduler::new(2);
        s.on_spawn(uid(1), ThreadKind::User);
        s.enqueue(uid(1), Some(CoreId(1)));
        assert_eq!(s.pick(CoreId(1)), Some(uid(1)));
    }

    #[test]
    fn ule_kernel_band_first() {
        let mut s = UleScheduler::new(1);
        s.on_spawn(uid(1), ThreadKind::User);
        s.on_spawn(uid(2), ThreadKind::Kernel);
        s.enqueue(uid(1), Some(CoreId(0)));
        s.enqueue(uid(2), Some(CoreId(0)));
        assert_eq!(s.pick(CoreId(0)), Some(uid(2)));
    }

    #[test]
    fn ule_round_robin_placement_without_affinity() {
        let mut s = UleScheduler::new(2);
        for i in 0..4 {
            s.on_spawn(uid(i), ThreadKind::User);
            s.enqueue(uid(i), None);
        }
        // Spread across both cores.
        assert_eq!(s.queues[0][1].len(), 2);
        assert_eq!(s.queues[1][1].len(), 2);
    }

    #[test]
    fn ule_timeslice_is_short() {
        assert!(UleScheduler::new(1).timeslice() < BsdScheduler::new().timeslice());
    }

    #[test]
    fn runnable_count_tracks() {
        let mut s = UleScheduler::new(2);
        s.on_spawn(uid(1), ThreadKind::User);
        s.enqueue(uid(1), None);
        assert_eq!(s.runnable_count(), 1);
        let _ = s.pick(CoreId(0));
        assert_eq!(s.runnable_count(), 0);
        assert_eq!(s.pick(CoreId(0)), None);
        assert_eq!(s.runnable_count(), 0);
    }
}
