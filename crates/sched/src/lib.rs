//! Discrete-event CPU scheduling for the Dimetrodon reproduction.
//!
//! This crate stands in for the paper's modified FreeBSD 7.2 kernel
//! (§3.1): threads with pluggable behaviours ([`ThreadBody`]), runqueue
//! policies (the 4.4BSD multi-level feedback queue the paper modified —
//! [`BsdScheduler`] — and a ULE-lite variant, [`UleScheduler`], for
//! footnote 2's generalisation claim), and the full-system simulation
//! [`System`] that couples scheduling decisions to the
//! [`Machine`](dimetrodon_machine::Machine) power/thermal model.
//!
//! The Dimetrodon mechanism itself attaches through [`SchedHook`]: at
//! every scheduling decision the hook may replace the selected thread
//! with an injected idle quantum, pinning the thread for the duration
//! exactly as the paper's kernel does. The policies (probabilistic
//! injection, per-thread control, the closed-loop controller) live in the
//! `dimetrodon` crate.
//!
//! # Examples
//!
//! ```
//! use dimetrodon_machine::{Machine, MachineConfig};
//! use dimetrodon_sched::{FixedWork, System, ThreadKind};
//! use dimetrodon_sim_core::{SimDuration, SimTime};
//!
//! # fn main() -> Result<(), dimetrodon_machine::MachineError> {
//! let mut system = System::new(Machine::new(MachineConfig::xeon_e5520())?);
//! let id = system.spawn(
//!     ThreadKind::User,
//!     Box::new(FixedWork::new(SimDuration::from_secs(1), 1.0)),
//! );
//! assert!(system.run_until_exited(&[id], SimTime::from_secs(10)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod body;
mod hook;
mod scheduler;
mod system;
mod thread;
mod trace;

pub use body::{FixedWork, Spin};
pub use hook::{Decision, NullHook, SchedHook, SchedHookClone, ScheduleContext};
pub use scheduler::{BsdScheduler, Scheduler, SchedulerClone, UleScheduler};
pub use system::{SchedConfig, System, SystemSnapshot};
pub use thread::{Action, Burst, ThreadBody, ThreadBodyClone, ThreadId, ThreadKind, ThreadStats};
pub use trace::{DecisionTrace, TraceEvent, TraceRecord};
