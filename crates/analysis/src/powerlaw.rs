//! Power-law fits of the throughput/temperature trade-off.
//!
//! §3.4 quantifies the trade-off "by curve-fitting the pareto boundary
//! between temperature and throughput" as `T(r) = α · r^β`, where `r` is
//! the desired temperature reduction and `T(r)` the throughput reduction
//! it costs. Table 1 reports `(α, β)` per workload. [`fit_power_law`]
//! reproduces the fit by least squares in log–log space.

use std::fmt;

/// A fitted `T(r) = α · r^β` model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// The multiplier α.
    pub alpha: f64,
    /// The exponent β. `β > 1` means the trade-off worsens superlinearly
    /// with the reduction target — the convexity every workload in
    /// Table 1 exhibits.
    pub beta: f64,
    /// Coefficient of determination of the log–log regression.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// The fitted throughput reduction at temperature reduction `r`.
    pub fn predict(&self, r: f64) -> f64 {
        self.alpha * r.powf(self.beta)
    }
}

impl fmt::Display for PowerLawFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T(r) = {:.3} * r^{:.3} (R^2 = {:.3})",
            self.alpha, self.beta, self.r_squared
        )
    }
}

/// Errors from [`fit_power_law`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two usable (strictly positive) points.
    TooFewPoints,
    /// All usable points share the same `r`, so the slope is undefined.
    DegenerateAbscissa,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewPoints => write!(f, "need at least two positive points to fit"),
            FitError::DegenerateAbscissa => write!(f, "all points share one abscissa"),
        }
    }
}

impl std::error::Error for FitError {}

/// Fits `T(r) = α·r^β` to `(r, T)` pairs by linear least squares on
/// `ln T = ln α + β ln r`. Points with non-positive `r` or `T` carry no
/// information in log space and are skipped.
///
/// # Errors
///
/// Returns [`FitError`] if fewer than two usable points remain or they
/// share a single abscissa.
///
/// # Examples
///
/// ```
/// use dimetrodon_analysis::fit_power_law;
///
/// // Exact power law: T = 1.1 * r^1.5.
/// let pts: Vec<(f64, f64)> = (1..10)
///     .map(|i| {
///         let r = i as f64 / 10.0;
///         (r, 1.1 * r.powf(1.5))
///     })
///     .collect();
/// let fit = fit_power_law(&pts)?;
/// assert!((fit.alpha - 1.1).abs() < 1e-9);
/// assert!((fit.beta - 1.5).abs() < 1e-9);
/// # Ok::<(), dimetrodon_analysis::FitError>(())
/// ```
pub fn fit_power_law(points: &[(f64, f64)]) -> Result<PowerLawFit, FitError> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(r, t)| r > 0.0 && t > 0.0)
        .map(|&(r, t)| (r.ln(), t.ln()))
        .collect();
    if logs.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    let n = logs.len() as f64;
    let mean_x = logs.iter().map(|&(x, _)| x).sum::<f64>() / n;
    let mean_y = logs.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = logs.iter().map(|&(x, _)| (x - mean_x).powi(2)).sum();
    if sxx < 1e-24 {
        return Err(FitError::DegenerateAbscissa);
    }
    let sxy: f64 = logs
        .iter()
        .map(|&(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let beta = sxy / sxx;
    let ln_alpha = mean_y - beta * mean_x;

    let syy: f64 = logs.iter().map(|&(_, y)| (y - mean_y).powi(2)).sum();
    let r_squared = if syy < 1e-24 {
        1.0
    } else {
        let ss_res: f64 = logs
            .iter()
            .map(|&(x, y)| (y - (ln_alpha + beta * x)).powi(2))
            .sum();
        1.0 - ss_res / syy
    };

    Ok(PowerLawFit {
        alpha: ln_alpha.exp(),
        beta,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn recovers_paper_cpuburn_parameters() {
        // Synthesize points from Table 1's cpuburn fit and recover it.
        let (alpha, beta) = (1.092, 1.541);
        let pts: Vec<(f64, f64)> = (1..=15)
            .map(|i| {
                let r = i as f64 / 20.0; // r in [0.05, 0.75]
                (r, alpha * r.powf(beta))
            })
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        assert!((fit.alpha - alpha).abs() < 1e-9);
        assert!((fit.beta - beta).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn skips_nonpositive_points() {
        let pts = vec![(0.0, 0.0), (-0.1, 0.5), (0.2, 0.1), (0.4, 0.3), (0.6, 0.55)];
        let fit = fit_power_law(&pts).unwrap();
        assert!(fit.beta > 0.0);
    }

    #[test]
    fn too_few_points_error() {
        assert_eq!(fit_power_law(&[(0.5, 0.5)]), Err(FitError::TooFewPoints));
        assert_eq!(fit_power_law(&[]), Err(FitError::TooFewPoints));
        assert_eq!(
            fit_power_law(&[(0.0, 1.0), (0.5, 0.5)]),
            Err(FitError::TooFewPoints)
        );
    }

    #[test]
    fn degenerate_abscissa_error() {
        assert_eq!(
            fit_power_law(&[(0.5, 0.1), (0.5, 0.2), (0.5, 0.3)]),
            Err(FitError::DegenerateAbscissa)
        );
    }

    #[test]
    fn noisy_fit_has_sub_unity_r_squared() {
        let pts = vec![(0.1, 0.02), (0.2, 0.09), (0.4, 0.15), (0.6, 0.55), (0.8, 0.6)];
        let fit = fit_power_law(&pts).unwrap();
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.5);
    }

    #[test]
    fn predict_evaluates_the_law() {
        let fit = PowerLawFit {
            alpha: 2.0,
            beta: 2.0,
            r_squared: 1.0,
        };
        assert!((fit.predict(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let fit = PowerLawFit {
            alpha: 1.092,
            beta: 1.541,
            r_squared: 0.99,
        };
        assert_eq!(fit.to_string(), "T(r) = 1.092 * r^1.541 (R^2 = 0.990)");
    }

    proptest! {
        /// Exact power-law data is recovered for any (α, β) in a broad
        /// range.
        #[test]
        fn prop_exact_recovery(alpha in 0.1f64..10.0, beta in 0.2f64..4.0) {
            let pts: Vec<(f64, f64)> = (1..=12)
                .map(|i| {
                    let r = i as f64 / 16.0;
                    (r, alpha * r.powf(beta))
                })
                .collect();
            let fit = fit_power_law(&pts).unwrap();
            prop_assert!((fit.alpha - alpha).abs() < 1e-6 * alpha);
            prop_assert!((fit.beta - beta).abs() < 1e-6);
        }
    }
}
