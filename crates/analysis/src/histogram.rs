//! Fixed-bin histograms for latency and temperature distributions.
//!
//! The QoS analysis of §3.7 is really a statement about a latency
//! *distribution* against two thresholds; [`Histogram`] makes such
//! distributions first-class: accumulate samples into uniform bins,
//! query counts, fractions below a threshold, and render a compact
//! text bar chart for reports.

use std::fmt;

/// A uniform-bin histogram over `[lo, hi)` with overflow/underflow bins.
///
/// # Examples
///
/// ```
/// use dimetrodon_analysis::Histogram;
///
/// let mut latencies = Histogram::new(0.0, 10.0, 20);
/// for v in [0.1, 0.2, 0.3, 4.0, 12.0] {
///     latencies.add(v);
/// }
/// assert_eq!(latencies.count(), 5);
/// assert_eq!(latencies.overflow(), 1);
/// // Four of five samples completed under 5 seconds.
/// assert!((latencies.fraction_below(5.0) - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, either bound is not finite, or `bins` is
    /// zero.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range [{lo}, {hi})");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn add(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN sample");
        self.count += 1;
        self.sum += value;
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((value - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all samples (including out-of-range ones); `None` if
    /// empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// The bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Fraction of samples strictly below `threshold` (approximated to
    /// bin resolution for in-range thresholds; exact when `threshold`
    /// lands on a bin edge). Returns `0.0` for an empty histogram.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if threshold <= self.lo {
            return self.underflow as f64 / self.count as f64;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let full_bins = if threshold >= self.hi {
            self.bins.len()
        } else {
            // Mirror `add`'s binning expression exactly, clamp included:
            // an in-range threshold owns a bin the same way a sample does,
            // and that bin is never counted as "below". The old
            // `.min(self.bins.len())` clamp let float rounding at the top
            // of the range count the threshold's own bin — a sample could
            // be reported strictly below a threshold it equalled.
            (((threshold - self.lo) / width) as usize).min(self.bins.len() - 1)
        };
        let below: u64 = self.underflow + self.bins[..full_bins].iter().sum::<u64>();
        below as f64 / self.count as f64
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`) at bin resolution: the
    /// upper edge of the first bin at which the cumulative count reaches
    /// `ceil(q * n)` (at least one sample). Underflow samples resolve to
    /// `lo` and overflow samples to `hi`, so the result always lies in
    /// `[lo, hi]`. Returns `None` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= rank {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(self.lo + (i as f64 + 1.0) * width);
            }
        }
        Some(self.hi)
    }

    /// Renders a compact text bar chart, one line per non-empty bin.
    pub fn render(&self, max_width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!("< {:.3}: {}\n", self.lo, self.underflow));
        }
        for (i, &n) in self.bins.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let bar = "#".repeat(((n as f64 / peak as f64) * max_width as f64).ceil() as usize);
            out.push_str(&format!(
                "[{:>8.3}, {:>8.3}) {:>8} {bar}\n",
                self.lo + i as f64 * width,
                self.lo + (i + 1) as f64 * width,
                n,
            ));
        }
        if self.overflow > 0 {
            out.push_str(&format!(">= {:.3}: {}\n", self.hi, self.overflow));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram[{}, {}): n={} (under {}, over {})",
            self.lo, self.hi, self.count, self.underflow, self.overflow
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binning_is_correct() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0); // bin 0
        h.add(0.99); // bin 0
        h.add(5.0); // bin 5
        h.add(9.999); // bin 9
        h.add(-1.0); // underflow
        h.add(10.0); // overflow (hi is exclusive)
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn fraction_below_on_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [1.5, 2.5, 3.5, 4.5] {
            h.add(v);
        }
        assert_eq!(h.fraction_below(0.0), 0.0);
        assert!((h.fraction_below(3.0) - 0.5).abs() < 1e-12);
        assert_eq!(h.fraction_below(10.0), 1.0);
        assert_eq!(h.fraction_below(100.0), 1.0);
    }

    #[test]
    fn mean_tracks_all_samples() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(0.5);
        h.add(99.5); // overflow still counted in the mean
        assert!((h.mean().unwrap() - 50.0).abs() < 1e-12);
        assert_eq!(Histogram::new(0.0, 1.0, 1).mean(), None);
    }

    #[test]
    fn render_shows_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        h.add(0.6);
        h.add(1.5);
        let text = h.render(10);
        assert!(text.contains("##"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn quantile_known_values() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [1.5, 2.5, 3.5, 4.5] {
            h.add(v);
        }
        // rank 1 of 4 lands in bin [1, 2); its upper edge is 2.0.
        assert_eq!(h.quantile(0.25), Some(2.0));
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        assert_eq!(Histogram::new(0.0, 1.0, 2).quantile(0.5), None);
    }

    #[test]
    fn quantile_q0_on_single_sample_histogram() {
        // rank = max(ceil(0 * 1), 1) = 1: q = 0 must resolve to the one
        // recorded sample's bin edge, not underflow to lo.
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(7.3);
        assert_eq!(h.quantile(0.0), Some(8.0));
        assert_eq!(h.quantile(0.5), Some(8.0));
        assert_eq!(h.quantile(1.0), Some(8.0));
    }

    #[test]
    fn fraction_below_excludes_the_thresholds_own_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(9.5);
        // 9.5 and 9.9 share the last bin: at bin resolution the sample is
        // not strictly below the threshold, even at the top of the range.
        assert_eq!(h.fraction_below(9.9), 0.0);
        assert_eq!(h.fraction_below(10.0), 1.0);
    }

    #[test]
    fn quantile_clamps_out_of_range_samples() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(-5.0);
        h.add(5.5);
        h.add(50.0);
        assert_eq!(h.quantile(0.0), Some(0.0)); // underflow resolves to lo
        assert_eq!(h.quantile(1.0), Some(10.0)); // overflow resolves to hi
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_bad_q() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(0.5);
        h.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_panics() {
        Histogram::new(2.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        Histogram::new(0.0, 1.0, 2).add(f64::NAN);
    }

    proptest! {
        /// Counts are conserved: every sample lands somewhere.
        #[test]
        fn prop_counts_conserved(values in prop::collection::vec(-100.0f64..100.0, 0..200)) {
            let mut h = Histogram::new(-10.0, 10.0, 16);
            for &v in &values {
                h.add(v);
            }
            let binned: u64 = h.bins().iter().sum();
            prop_assert_eq!(binned + h.underflow() + h.overflow(), values.len() as u64);
        }

        /// fraction_below is monotone in the threshold.
        #[test]
        fn prop_fraction_monotone(values in prop::collection::vec(0.0f64..10.0, 1..100)) {
            let mut h = Histogram::new(0.0, 10.0, 20);
            for &v in &values {
                h.add(v);
            }
            let mut prev = 0.0;
            for step in 0..=20 {
                let f = h.fraction_below(step as f64 / 2.0);
                prop_assert!(f >= prev - 1e-12);
                prev = f;
            }
        }

        /// An in-range threshold's fraction equals underflow plus the full
        /// bins strictly below the threshold's own bin, where "own bin" is
        /// computed with `add`'s exact binning expression — the two
        /// functions may never disagree about which bin a value owns.
        #[test]
        fn prop_fraction_below_matches_adds_binning(
            values in prop::collection::vec(-20.0f64..20.0, 1..150),
            threshold in -10.0f64..10.0,
        ) {
            let (lo, hi, bins) = (-10.0f64, 10.0f64, 16usize);
            let mut h = Histogram::new(lo, hi, bins);
            for &v in &values {
                h.add(v);
            }
            let width = (hi - lo) / bins as f64;
            let own_bin = (((threshold - lo) / width) as usize).min(bins - 1);
            let below = h.underflow() + h.bins()[..own_bin].iter().sum::<u64>();
            let expected = below as f64 / h.count() as f64;
            prop_assert!(
                (h.fraction_below(threshold) - expected).abs() < 1e-15,
                "fraction_below({threshold}) = {} disagrees with add's binning ({expected})",
                h.fraction_below(threshold)
            );
        }

        /// Quantiles stay within [lo, hi], are monotone in q, and always
        /// return a recorded value's representative: lo (underflow), hi
        /// (overflow), or the upper edge of a non-empty bin.
        #[test]
        fn prop_quantile_bounds_and_monotone(
            values in prop::collection::vec(-20.0f64..20.0, 1..150)
        ) {
            let mut h = Histogram::new(-10.0, 10.0, 16);
            for &v in &values {
                h.add(v);
            }
            let width = 20.0 / 16.0;
            let mut representatives: Vec<f64> = h
                .bins()
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, _)| -10.0 + (i as f64 + 1.0) * width)
                .collect();
            if h.underflow() > 0 {
                representatives.push(-10.0);
            }
            if h.overflow() > 0 {
                representatives.push(10.0);
            }
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=10 {
                let q = i as f64 / 10.0;
                let x = h.quantile(q).unwrap();
                prop_assert!((-10.0..=10.0).contains(&x), "quantile {x} out of range");
                prop_assert!(x >= prev, "quantile not monotone: {x} < {prev}");
                prop_assert!(
                    representatives.iter().any(|r| r.to_bits() == x.to_bits()),
                    "quantile({q}) = {x} is not a recorded bin's representative"
                );
                prev = x;
            }
        }
    }
}
