//! Pareto-frontier extraction for trade-off sweeps.
//!
//! Every figure in the paper's evaluation darkens "the pareto boundary" of
//! a parameter sweep: the configurations for which no other configuration
//! achieves at least as much temperature reduction at strictly lower cost.
//! [`pareto_frontier`] extracts that boundary from a point cloud where `x`
//! is the benefit (maximise) and `y` is the cost (minimise).

/// A 2-D trade-off point with an attached payload (usually the sweep
/// configuration that produced it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint<T> {
    /// Benefit axis (e.g. temperature reduction) — larger is better.
    pub benefit: f64,
    /// Cost axis (e.g. throughput reduction) — smaller is better.
    pub cost: f64,
    /// The configuration that produced this point.
    pub tag: T,
}

impl<T> TradeoffPoint<T> {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is NaN.
    pub fn new(benefit: f64, cost: f64, tag: T) -> Self {
        assert!(!benefit.is_nan() && !cost.is_nan(), "NaN trade-off point");
        TradeoffPoint { benefit, cost, tag }
    }

    /// Efficiency as the paper plots it in Figure 3:
    /// `benefit : cost` ratio. Returns infinity for zero cost with
    /// positive benefit.
    pub fn efficiency(&self) -> f64 {
        if self.cost <= 0.0 {
            if self.benefit > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.benefit / self.cost
        }
    }
}

/// Extracts the pareto frontier: points not dominated by any other
/// (dominated = some other point has `benefit >=` and `cost <=`, with at
/// least one strict). The result is sorted by ascending benefit.
///
/// # Examples
///
/// ```
/// use dimetrodon_analysis::{pareto_frontier, TradeoffPoint};
///
/// let points = vec![
///     TradeoffPoint::new(0.10, 0.02, "a"),
///     TradeoffPoint::new(0.10, 0.08, "b"), // dominated by a
///     TradeoffPoint::new(0.50, 0.30, "c"),
/// ];
/// let frontier = pareto_frontier(&points);
/// let tags: Vec<&str> = frontier.iter().map(|p| p.tag).collect();
/// assert_eq!(tags, vec!["a", "c"]);
/// ```
pub fn pareto_frontier<T: Clone>(points: &[TradeoffPoint<T>]) -> Vec<TradeoffPoint<T>> {
    let mut sorted: Vec<&TradeoffPoint<T>> = points.iter().collect();
    // Sort by cost ascending, then benefit descending; sweep keeping
    // points that raise the best-seen benefit.
    sorted.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then(b.benefit.total_cmp(&a.benefit))
    });
    let mut frontier: Vec<TradeoffPoint<T>> = Vec::new();
    let mut best_benefit = f64::NEG_INFINITY;
    for p in sorted {
        if p.benefit > best_benefit {
            best_benefit = p.benefit;
            frontier.push(p.clone());
        }
    }
    frontier.sort_by(|a, b| a.benefit.total_cmp(&b.benefit));
    frontier
}

/// Interpolates the frontier's cost at a given benefit level (linear
/// between frontier points; `None` outside the frontier's benefit range).
pub fn frontier_cost_at<T>(frontier: &[TradeoffPoint<T>], benefit: f64) -> Option<f64> {
    let (first, last) = match (frontier.first(), frontier.last()) {
        (Some(first), Some(last)) => (first, last),
        _ => return None,
    };
    if benefit < first.benefit || benefit > last.benefit {
        return None;
    }
    for pair in frontier.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if benefit >= a.benefit && benefit <= b.benefit {
            if (b.benefit - a.benefit).abs() < 1e-15 {
                return Some(a.cost.min(b.cost));
            }
            let t = (benefit - a.benefit) / (b.benefit - a.benefit);
            return Some(a.cost + t * (b.cost - a.cost));
        }
    }
    Some(last.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominated_points_removed() {
        let pts = vec![
            TradeoffPoint::new(0.2, 0.1, 1),
            TradeoffPoint::new(0.2, 0.2, 2),  // worse cost, same benefit
            TradeoffPoint::new(0.1, 0.05, 3), // cheaper, less benefit: kept
            TradeoffPoint::new(0.15, 0.3, 4), // strictly dominated
        ];
        let f = pareto_frontier(&pts);
        let tags: Vec<i32> = f.iter().map(|p| p.tag).collect();
        assert_eq!(tags, vec![3, 1]);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let pts = vec![TradeoffPoint::new(0.5, 0.5, ())];
        assert_eq!(pareto_frontier(&pts).len(), 1);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<TradeoffPoint<()>> = vec![];
        assert!(pareto_frontier(&pts).is_empty());
        assert_eq!(frontier_cost_at::<()>(&[], 0.5), None);
    }

    #[test]
    fn efficiency_ratio() {
        assert_eq!(TradeoffPoint::new(0.32, 0.02, ()).efficiency(), 16.0);
        assert_eq!(TradeoffPoint::new(0.1, 0.0, ()).efficiency(), f64::INFINITY);
        assert_eq!(TradeoffPoint::new(0.0, 0.0, ()).efficiency(), 0.0);
    }

    #[test]
    fn interpolation_between_frontier_points() {
        let f = vec![
            TradeoffPoint::new(0.1, 0.01, ()),
            TradeoffPoint::new(0.5, 0.41, ()),
        ];
        let c = frontier_cost_at(&f, 0.3).unwrap();
        assert!((c - 0.21).abs() < 1e-12);
        assert_eq!(frontier_cost_at(&f, 0.05), None);
        assert_eq!(frontier_cost_at(&f, 0.6), None);
    }

    #[test]
    fn duplicate_points_keep_one_representative() {
        let pts = vec![
            TradeoffPoint::new(0.3, 0.1, "a"),
            TradeoffPoint::new(0.3, 0.1, "b"),
        ];
        let f = pareto_frontier(&pts);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn frontier_cost_exactly_on_a_point() {
        let f = vec![
            TradeoffPoint::new(0.1, 0.01, ()),
            TradeoffPoint::new(0.5, 0.41, ()),
        ];
        assert_eq!(frontier_cost_at(&f, 0.1), Some(0.01));
        assert_eq!(frontier_cost_at(&f, 0.5), Some(0.41));
    }

    proptest! {
        /// No frontier point dominates another; every input point is
        /// dominated-or-equal by some frontier point.
        #[test]
        fn prop_frontier_is_sound(
            raw in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..60)
        ) {
            let pts: Vec<TradeoffPoint<usize>> = raw
                .iter()
                .enumerate()
                .map(|(i, &(b, c))| TradeoffPoint::new(b, c, i))
                .collect();
            let f = pareto_frontier(&pts);
            // Frontier sorted by benefit, strictly increasing, costs
            // non-decreasing is NOT guaranteed in general pareto sets —
            // but with our dominance definition cost must strictly
            // increase with benefit along the frontier.
            for w in f.windows(2) {
                prop_assert!(w[1].benefit > w[0].benefit);
                prop_assert!(w[1].cost >= w[0].cost);
            }
            // Soundness: no frontier point dominated by any input point.
            for fp in &f {
                for p in &pts {
                    let dominates = p.benefit >= fp.benefit
                        && p.cost <= fp.cost
                        && (p.benefit > fp.benefit || p.cost < fp.cost);
                    prop_assert!(!dominates, "frontier point dominated");
                }
            }
            // Completeness: every input point is weakly dominated by some
            // frontier point.
            for p in &pts {
                let covered = f.iter().any(|fp| fp.benefit >= p.benefit && fp.cost <= p.cost);
                prop_assert!(covered, "input point not covered by frontier");
            }
        }

        /// The interpolated frontier cost is monotone non-decreasing in
        /// benefit: more temperature reduction never gets cheaper.
        #[test]
        fn prop_frontier_cost_monotone(
            raw in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..60)
        ) {
            let pts: Vec<TradeoffPoint<usize>> = raw
                .iter()
                .enumerate()
                .map(|(i, &(b, c))| TradeoffPoint::new(b, c, i))
                .collect();
            let f = pareto_frontier(&pts);
            let lo_b = f.first().unwrap().benefit;
            let hi_b = f.last().unwrap().benefit;
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=20 {
                let b = lo_b + (hi_b - lo_b) * i as f64 / 20.0;
                if let Some(c) = frontier_cost_at(&f, b) {
                    prop_assert!(c >= prev - 1e-9, "cost fell from {prev} to {c}");
                    prev = c;
                }
            }
        }
    }
}
