//! Summary statistics for multi-trial experiments.
//!
//! The paper averages over repeated trials (100 per configuration in the
//! throughput validation, five in the energy validation) and reports mean
//! and average-absolute deviations. [`Summary`] collects those reductions
//! once over a slice of trial results.

use std::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Mean of absolute values — the paper's "average absolute deviation"
    /// when applied to a sample of deviations.
    pub mean_abs: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        assert!(values.iter().all(|v| !v.is_nan()), "NaN in sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean_abs: values.iter().map(|v| v.abs()).sum::<f64>() / n as f64,
        }
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        self.std_dev / (self.n as f64).sqrt()
    }

    /// An approximate 95 % confidence interval for the mean
    /// (`mean ± 1.96·SE`).
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_err();
        (self.mean - half, self.mean + half)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn mean_abs_for_deviations() {
        // The paper: "average deviation of -0.37% and an average absolute
        // deviation of 1.67%" — signed mean vs mean_abs.
        let s = Summary::of(&[-2.0, 1.0, -1.0, 2.0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.mean_abs, 1.5);
    }

    #[test]
    fn ci_contains_mean() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let (lo, hi) = s.ci95();
        assert!(lo < s.mean && s.mean < hi);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        Summary::of(&[1.0, f64::NAN]);
    }

    proptest! {
        #[test]
        fn prop_bounds_hold(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&values);
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.std_dev >= 0.0);
            prop_assert!(s.mean_abs >= s.mean.abs() - 1e-9);
        }

        /// Shifting a sample shifts the mean and leaves the deviation
        /// unchanged.
        #[test]
        fn prop_shift_invariance(values in prop::collection::vec(-1e3f64..1e3, 2..50), shift in -1e3f64..1e3) {
            let a = Summary::of(&values);
            let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
            let b = Summary::of(&shifted);
            prop_assert!((b.mean - (a.mean + shift)).abs() < 1e-6);
            prop_assert!((b.std_dev - a.std_dev).abs() < 1e-6);
        }

        /// The 95 % CI brackets the mean and the standard error never
        /// exceeds the standard deviation.
        #[test]
        fn prop_ci_and_std_err_bounds(values in prop::collection::vec(-1e3f64..1e3, 1..80)) {
            let s = Summary::of(&values);
            let (lo, hi) = s.ci95();
            prop_assert!(lo <= s.mean && s.mean <= hi);
            prop_assert!(s.std_err() <= s.std_dev + 1e-12);
        }
    }
}
