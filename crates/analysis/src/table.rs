//! Plain-text rendering of experiment results: aligned console tables and
//! CSV, with no external dependencies.

use std::fmt::Write as _;

/// A simple column-aligned table builder for experiment reports.
///
/// # Examples
///
/// ```
/// use dimetrodon_analysis::Table;
///
/// let mut table = Table::new(vec!["workload", "rise"]);
/// table.row(vec!["cpuburn".to_string(), "100.0".to_string()]);
/// let text = table.render();
/// assert!(text.contains("cpuburn"));
/// assert!(text.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, &w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-style CSV (quoting cells that contain commas,
    /// quotes, or newlines).
    pub fn render_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&self.headers, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1.092".into()]);
        t.row(vec!["beta".into(), "1.541".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("alpha"));
        // "value" column aligned: both data rows put the number at the
        // same offset.
        let off2 = lines[2].find("1.092").unwrap();
        let off3 = lines[3].find("1.541").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn csv_output() {
        let csv = sample().render_csv();
        assert_eq!(csv, "name,value\nalpha,1.092\nbeta,1.541\n");
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn len_and_empty() {
        let t = Table::new(vec!["only"]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        Table::new(Vec::<String>::new());
    }
}
