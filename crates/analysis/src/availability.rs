//! Availability-under-failure accounting: how much of a cluster was
//! actually there, and how fast it came back.
//!
//! The accumulator is deliberately dumb — push one capacity sample per
//! control epoch and one duration per completed recovery, read summary
//! statistics at the end — so the simulation layer stays the only place
//! that decides *what* counts as capacity or recovery. Everything is
//! plain arithmetic over the pushed samples; two accumulators fed the
//! same samples in the same order report bit-identical summaries.

/// Accumulates per-epoch available-capacity samples and completed
/// recovery durations for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Availability {
    capacity_sum: f64,
    capacity_min: Option<f64>,
    epochs: u64,
    recoveries_s: Vec<f64>,
}

impl Availability {
    /// A fresh accumulator with no samples.
    pub fn new() -> Availability {
        Availability::default()
    }

    /// Serializes the accumulator for a durable checkpoint (floats as
    /// IEEE-754 bit patterns).
    pub fn encode_state(&self, enc: &mut dimetrodon_ckpt::Enc) {
        enc.f64(self.capacity_sum);
        enc.opt_f64(self.capacity_min);
        enc.u64(self.epochs);
        enc.f64_slice(&self.recoveries_s);
    }

    /// Rebuilds an accumulator from [`encode_state`](Self::encode_state)
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`dimetrodon_ckpt::CkptError`] on a short or malformed
    /// payload.
    pub fn decode_state(
        dec: &mut dimetrodon_ckpt::Dec<'_>,
    ) -> Result<Self, dimetrodon_ckpt::CkptError> {
        Ok(Availability {
            capacity_sum: dec.f64()?,
            capacity_min: dec.opt_f64()?,
            epochs: dec.u64()?,
            recoveries_s: dec.f64_vec()?,
        })
    }

    /// Records one epoch's available capacity as a fraction of nominal
    /// (1.0 = every machine up and unthrottled by failures).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is not finite in `[0, 1]`.
    pub fn record_capacity(&mut self, fraction: f64) {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "capacity fraction must be in [0, 1], got {fraction}"
        );
        self.capacity_sum += fraction;
        self.capacity_min = Some(match self.capacity_min {
            Some(min) => min.min(fraction),
            None => fraction,
        });
        self.epochs += 1;
    }

    /// Records one completed outage: the time from a machine being
    /// declared down to it being declared up again, in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the duration is not finite and non-negative.
    pub fn record_recovery_secs(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "recovery duration must be finite and non-negative, got {seconds}"
        );
        self.recoveries_s.push(seconds);
    }

    /// Epochs sampled so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Mean available-capacity fraction over the sampled epochs; `None`
    /// before any sample.
    pub fn capacity_mean(&self) -> Option<f64> {
        (self.epochs > 0).then(|| self.capacity_sum / self.epochs as f64)
    }

    /// Worst single-epoch capacity fraction; `None` before any sample.
    pub fn capacity_min(&self) -> Option<f64> {
        self.capacity_min
    }

    /// Completed recoveries recorded so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries_s.len() as u64
    }

    /// Mean time-to-recover, seconds; `None` when nothing recovered.
    pub fn recovery_mean_s(&self) -> Option<f64> {
        if self.recoveries_s.is_empty() {
            return None;
        }
        Some(self.recoveries_s.iter().sum::<f64>() / self.recoveries_s.len() as f64)
    }

    /// Longest time-to-recover, seconds; `None` when nothing recovered.
    pub fn recovery_max_s(&self) -> Option<f64> {
        self.recoveries_s
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_reports_nothing() {
        let a = Availability::new();
        assert_eq!(a.epochs(), 0);
        assert_eq!(a.capacity_mean(), None);
        assert_eq!(a.capacity_min(), None);
        assert_eq!(a.recoveries(), 0);
        assert_eq!(a.recovery_mean_s(), None);
        assert_eq!(a.recovery_max_s(), None);
    }

    #[test]
    fn capacity_mean_and_min_track_samples() {
        let mut a = Availability::new();
        for f in [1.0, 0.5, 0.75, 1.0] {
            a.record_capacity(f);
        }
        assert_eq!(a.epochs(), 4);
        assert_eq!(a.capacity_mean(), Some(0.8125));
        assert_eq!(a.capacity_min(), Some(0.5));
    }

    #[test]
    fn recovery_stats_track_durations() {
        let mut a = Availability::new();
        a.record_recovery_secs(10.0);
        a.record_recovery_secs(4.0);
        a.record_recovery_secs(16.0);
        assert_eq!(a.recoveries(), 3);
        assert_eq!(a.recovery_mean_s(), Some(10.0));
        assert_eq!(a.recovery_max_s(), Some(16.0));
    }

    #[test]
    #[should_panic(expected = "capacity fraction")]
    fn out_of_range_capacity_panics() {
        Availability::new().record_capacity(1.5);
    }
}
