//! Analysis utilities for the Dimetrodon reproduction's evaluation.
//!
//! The paper's methodology reduces parameter sweeps to three artefacts,
//! all reproduced here dependency-free:
//!
//! * **pareto boundaries** ([`pareto_frontier`]) — every trade-off figure
//!   darkens the non-dominated configurations;
//! * **power-law fits** ([`fit_power_law`]) — §3.4's
//!   `T(r) = α·r^β` quantification of the throughput/temperature
//!   trade-off, reported per workload in Table 1;
//! * **trial statistics** ([`Summary`]) — means and (absolute) deviations
//!   over repeated trials, as in the §3.3 validations.
//!
//! [`Table`] renders results as aligned text or CSV for the harness
//! binaries.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod availability;
mod histogram;
mod pareto;
mod powerlaw;
mod stats;
mod table;

pub use availability::Availability;
pub use histogram::Histogram;
pub use pareto::{frontier_cost_at, pareto_frontier, TradeoffPoint};
pub use powerlaw::{fit_power_law, FitError, PowerLawFit};
pub use stats::Summary;
pub use table::Table;
