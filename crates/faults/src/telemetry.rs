//! The telemetry boundary: every controller-visible temperature or power
//! reading flows through a [`Telemetry`] implementation.
//!
//! [`IdealTelemetry`] is a zero-cost passthrough to the machine's exact
//! state — the pre-fault-layer behaviour, bit for bit. [`FaultyTelemetry`]
//! routes each read through a [`SensorModel`] and a [`FaultPlan`], so
//! controllers see noisy, quantized, stale, stuck, or missing data.

use std::fmt;

use dimetrodon_machine::{CoreId, Machine};
use dimetrodon_sim_core::SimTime;

use crate::plan::FaultPlan;
use crate::sensor::{SensorModel, SensorSpec};

/// A source of controller-visible machine readings.
///
/// Implementations may be stateful (sample-and-hold, RNG streams), hence
/// `&mut self`. A reading of NaN means "no data"; consumers must treat
/// non-finite values as sensor loss, never as temperatures.
pub trait Telemetry: fmt::Debug + Send + TelemetryClone {
    /// Mean core temperature visible to a controller at `now`, in °C.
    fn mean_core_temperature(&mut self, machine: &Machine, now: SimTime) -> f64;

    /// Package power visible to a controller at `now`, in watts.
    fn package_power(&mut self, machine: &Machine, now: SimTime) -> f64;

    /// Reads lost so far (always zero for ideal sources).
    fn dropped_reads(&self) -> u64 {
        0
    }
}

/// Object-safe cloning for boxed telemetry sources, so controllers that
/// hold one can be forked along with the
/// [`System`](../dimetrodon_sched/struct.System.html) they serve.
/// Blanket-implemented for every `Clone` source; implementors just
/// derive (or write) `Clone`. Stateful sources (RNG streams,
/// sample-and-hold registers) are deep-copied: forks replay the same
/// fault draws as the original would have.
pub trait TelemetryClone {
    /// Boxes a copy of `self`.
    fn clone_box(&self) -> Box<dyn Telemetry>;
}

impl<T: Telemetry + Clone + 'static> TelemetryClone for T {
    fn clone_box(&self) -> Box<dyn Telemetry> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Telemetry> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Perfect telemetry: exact passthrough of the machine's state, with no
/// RNG draws and no arithmetic on the values. This is the default source
/// for both controllers and keeps the zero-fault configuration
/// bit-identical to the pre-fault-layer code path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealTelemetry;

impl Telemetry for IdealTelemetry {
    fn mean_core_temperature(&mut self, machine: &Machine, _now: SimTime) -> f64 {
        machine.mean_core_temperature()
    }

    fn package_power(&mut self, machine: &Machine, _now: SimTime) -> f64 {
        machine.package_power()
    }
}

/// Degraded telemetry: per-core sensor reads through a [`SensorModel`]
/// plus a [`FaultPlan`], averaged over the cores that still answer.
///
/// The mean-temperature read samples every core's hotspot sensor (the
/// DTS a real controller would read) and averages the finite readings;
/// when every core is lost the mean itself is NaN and the consumer must
/// fall back (the hardened controllers fall back to the reactive
/// thermal trip).
#[derive(Clone)]
pub struct FaultyTelemetry {
    sensors: SensorModel,
    plan: FaultPlan,
}

impl fmt::Debug for FaultyTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyTelemetry")
            .field("spec", &self.sensors.spec())
            .field("plan_events", &self.plan.events().len())
            .field("dropped", &self.sensors.dropped())
            .finish()
    }
}

impl FaultyTelemetry {
    /// Builds a degraded telemetry source.
    ///
    /// # Panics
    ///
    /// Panics if the spec's parameters are non-finite or out of range.
    pub fn new(spec: SensorSpec, plan: FaultPlan, seed: u64) -> Self {
        FaultyTelemetry { sensors: SensorModel::new(spec, seed), plan }
    }

    /// The fault plan driving scheduled sensor faults.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The underlying sensor model (for counters).
    pub fn sensors(&self) -> &SensorModel {
        &self.sensors
    }
}

impl Telemetry for FaultyTelemetry {
    fn mean_core_temperature(&mut self, machine: &Machine, now: SimTime) -> f64 {
        let mut sum = 0.0;
        let mut valid = 0usize;
        for i in 0..machine.num_cores() {
            let r = self.sensors.read_temperature(machine, &self.plan, CoreId(i), now);
            if r.is_finite() {
                sum += r;
                valid += 1;
            }
        }
        if valid == 0 {
            f64::NAN
        } else {
            sum / valid as f64
        }
    }

    fn package_power(&mut self, machine: &Machine, now: SimTime) -> f64 {
        self.sensors.read_package_power(machine, &self.plan, now)
    }

    fn dropped_reads(&self) -> u64 {
        self.sensors.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, FaultTarget};
    use dimetrodon_machine::MachineConfig;
    use dimetrodon_sim_core::SimDuration;

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::xeon_e5520()).expect("machine builds");
        m.settle_idle();
        m
    }

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn ideal_telemetry_is_exact() {
        let m = machine();
        let mut t = IdealTelemetry;
        assert_eq!(
            t.mean_core_temperature(&m, secs(1)).to_bits(),
            m.mean_core_temperature().to_bits()
        );
        assert_eq!(t.package_power(&m, secs(1)).to_bits(), m.package_power().to_bits());
        assert_eq!(t.dropped_reads(), 0);
    }

    #[test]
    fn partial_dropout_averages_the_surviving_cores() {
        let m = machine();
        let plan = FaultPlan::new().with(secs(0), FaultTarget::Core(0), FaultKind::Dropout, None);
        let mut t = FaultyTelemetry::new(SensorSpec::ideal(), plan, 5);
        let mean = t.mean_core_temperature(&m, secs(1));
        assert!(mean.is_finite(), "three cores still answer");
        assert!(t.dropped_reads() >= 1);
    }

    #[test]
    fn total_dropout_yields_nan_not_a_number_dressed_as_a_temperature() {
        let m = machine();
        let plan = FaultPlan::new().with(secs(0), FaultTarget::All, FaultKind::Dropout, None);
        let mut t = FaultyTelemetry::new(SensorSpec::ideal(), plan, 5);
        assert!(t.mean_core_temperature(&m, secs(1)).is_nan());
        assert!(t.package_power(&m, secs(1)).is_nan(), "all-target dropout covers power too");
    }

    #[test]
    fn stuck_sensor_skews_the_mean() {
        let m = machine();
        let honest = m.mean_sensor_temperature();
        let plan =
            FaultPlan::new().with(secs(0), FaultTarget::Core(0), FaultKind::StuckAt(100.0), None);
        let mut t = FaultyTelemetry::new(SensorSpec::ideal(), plan, 5);
        let mean = t.mean_core_temperature(&m, secs(1));
        assert!(mean > honest + 5.0, "one stuck-high sensor must pull the mean up: {mean}");
    }
}
