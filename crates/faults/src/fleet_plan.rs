//! Fleet-level chaos schedules: *at time T, crash machine M / degrade
//! rack R's cooling / wedge machine M's controller*.
//!
//! A [`FleetFaultPlan`] lifts the per-machine [`FaultPlan`](crate::FaultPlan)
//! discipline to cluster granularity. Plans are pure data — no RNG state —
//! so cloning one into every worker of a parallel comparison is free and
//! cannot perturb determinism, and the plan's canonical [`Display`]
//! rendering doubles as its byte identity for journal fingerprints.
//!
//! Plans can be built programmatically or parsed from a small text DSL,
//! one event per line plus an optional disposition directive:
//!
//! ```text
//! # what to do with a crashed machine's queued work (default: drop)
//! on-crash redistribute
//! # time   target      kind               [for duration]
//! at 30s   machine 5   crash              for 20s   # restarts cold at t=50s
//! at 40s   machine 2   crash                        # permanent
//! at 45s   rack 0      crac 2.0 3.0       for 30s   # recirc x2, inlet +3 C
//! at 60s   machine 1   wedge              for 10s   # controller stuck
//! at 80s   all         wedge              for 5s
//! ```
//!
//! Times and durations accept `s`, `ms`, `us`, and `ns` suffixes; a bare
//! number means seconds. Blank lines and `#` comments are ignored. A
//! `crash` or `wedge` may target one machine, a whole rack, or `all`; a
//! `crac` event targets a rack (or `all` racks) — machine-level cooling
//! makes no physical sense and is rejected.

use std::fmt;
use std::str::FromStr;

use dimetrodon_sim_core::{SimDuration, SimTime};

use crate::plan::{parse_f64, parse_span, PlanError};

/// Which machines (or racks) a fleet fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetTarget {
    /// A single machine, by fleet index.
    Machine(usize),
    /// Every machine of one rack, by rack index.
    Rack(usize),
    /// The whole fleet (for `crac`: every rack).
    All,
}

impl FleetTarget {
    /// Whether this target covers `machine` (which lives in `rack`).
    pub fn covers_machine(self, machine: usize, rack: usize) -> bool {
        match self {
            FleetTarget::Machine(m) => m == machine,
            FleetTarget::Rack(r) => r == rack,
            FleetTarget::All => true,
        }
    }

    /// Whether this target covers `rack`.
    pub fn covers_rack(self, rack: usize) -> bool {
        match self {
            FleetTarget::Machine(_) => false,
            FleetTarget::Rack(r) => r == rack,
            FleetTarget::All => true,
        }
    }
}

impl fmt::Display for FleetTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetTarget::Machine(m) => write!(f, "machine {m}"),
            FleetTarget::Rack(r) => write!(f, "rack {r}"),
            FleetTarget::All => write!(f, "all"),
        }
    }
}

/// The kind of cluster fault an event injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetFaultKind {
    /// The machine goes down instantly: capacity lost, backlog handled
    /// per the plan's [`CrashBacklog`] disposition. With a `for`
    /// duration the machine restarts afterwards with cold thermal state
    /// re-settled from the fleet prototype; without one it never
    /// returns.
    Crash,
    /// CRAC failure / cooling degradation for a rack: the rack's
    /// recirculation coefficient is scaled by the first parameter and
    /// its inlet boundary shifted by the second (°C) while active.
    Crac {
        /// Multiplier on the rack's recirculation coefficient.
        recirc_scale: f64,
        /// Additive inlet-boundary offset, °C.
        inlet_delta_celsius: f64,
    },
    /// The machine's Dimetrodon controller wedges: its injection
    /// proportion stays stuck at the last commanded value while active.
    Wedge,
}

impl FleetFaultKind {
    fn name(&self) -> &'static str {
        match self {
            FleetFaultKind::Crash => "crash",
            FleetFaultKind::Crac { .. } => "crac",
            FleetFaultKind::Wedge => "wedge",
        }
    }
}

/// What happens to a crashed machine's queued work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashBacklog {
    /// The backlog is lost; the shed accounting charges it.
    #[default]
    Drop,
    /// The backlog is split evenly over the machines still up (in fixed
    /// index order); if none are up it is shed after all.
    Redistribute,
}

impl CrashBacklog {
    /// The DSL keyword for this policy (`drop` / `redistribute`).
    pub fn name(self) -> &'static str {
        match self {
            CrashBacklog::Drop => "drop",
            CrashBacklog::Redistribute => "redistribute",
        }
    }
}

/// One scheduled cluster fault: a kind, a target, a start time, and an
/// optional duration (permanent when absent).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFaultEvent {
    /// When the fault becomes active.
    pub at: SimTime,
    /// Which machine(s) or rack(s) it affects.
    pub target: FleetTarget,
    /// What it does.
    pub kind: FleetFaultKind,
    /// How long it lasts; `None` means until the end of the run.
    pub duration: Option<SimDuration>,
}

impl FleetFaultEvent {
    /// Whether the event is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        if now < self.at {
            return false;
        }
        match self.duration {
            Some(d) => now < self.at + d,
            None => true,
        }
    }
}

impl fmt::Display for FleetFaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}s {} {}", self.at.as_secs_f64(), self.target, self.kind.name())?;
        if let FleetFaultKind::Crac { recirc_scale, inlet_delta_celsius } = self.kind {
            write!(f, " {recirc_scale} {inlet_delta_celsius}")?;
        }
        if let Some(d) = self.duration {
            write!(f, " for {}s", d.as_secs_f64())?;
        }
        Ok(())
    }
}

/// An ordered schedule of cluster fault events plus the crash-backlog
/// disposition. When several events of the same kind are active for the
/// same target, the one latest in the schedule wins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetFaultPlan {
    events: Vec<FleetFaultEvent>,
    on_crash: CrashBacklog,
}

impl FleetFaultPlan {
    /// An empty plan: injects nothing. Every consumer guarantees an
    /// empty plan is bit-identical to running without the chaos layer.
    pub fn new() -> Self {
        FleetFaultPlan::default()
    }

    /// Whether the plan schedules no events (the disposition is
    /// irrelevant without crashes).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FleetFaultEvent] {
        &self.events
    }

    /// What happens to a crashed machine's queued work.
    pub fn on_crash(&self) -> CrashBacklog {
        self.on_crash
    }

    /// Sets the crash-backlog disposition.
    pub fn set_on_crash(&mut self, disposition: CrashBacklog) {
        self.on_crash = disposition;
    }

    /// Adds an event after validating its parameters.
    pub fn push(&mut self, event: FleetFaultEvent) -> Result<(), PlanError> {
        let bad = |reason: String| PlanError::BadParameter { kind: event.kind.name(), reason };
        match event.kind {
            FleetFaultKind::Crac { recirc_scale, inlet_delta_celsius } => {
                if !(recirc_scale.is_finite() && recirc_scale >= 0.0) {
                    return Err(bad(format!(
                        "recirc scale must be finite and >= 0, got {recirc_scale}"
                    )));
                }
                if !inlet_delta_celsius.is_finite() {
                    return Err(bad(format!(
                        "inlet delta must be finite, got {inlet_delta_celsius}"
                    )));
                }
                if matches!(event.target, FleetTarget::Machine(_)) {
                    return Err(bad("crac targets a rack or `all`, not a machine".into()));
                }
            }
            FleetFaultKind::Crash | FleetFaultKind::Wedge => {}
        }
        if let Some(d) = event.duration {
            if d.is_zero() {
                return Err(bad("duration must be non-zero (omit `for` for permanent)".into()));
            }
        }
        self.events.push(event);
        Ok(())
    }

    /// Builder-style [`FleetFaultPlan::push`] that panics on invalid
    /// parameters — convenient for literal plans in tests and
    /// experiments.
    ///
    /// # Panics
    ///
    /// Panics if the event's parameters are invalid.
    #[must_use]
    pub fn with(
        mut self,
        at: SimTime,
        target: FleetTarget,
        kind: FleetFaultKind,
        duration: Option<SimDuration>,
    ) -> Self {
        let event = FleetFaultEvent { at, target, kind, duration };
        // simlint::allow(R1): literal-plan builder; programmatic callers
        // use `push` and handle the error.
        self.push(event).expect("invalid fleet fault event");
        self
    }

    /// Whether a crash has `machine` (living in `rack`) down at `now`.
    pub fn machine_down(&self, machine: usize, rack: usize, now: SimTime) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FleetFaultKind::Crash)
                && e.target.covers_machine(machine, rack)
                && e.active_at(now)
        })
    }

    /// Whether `machine`'s controller is wedged at `now`.
    pub fn machine_wedged(&self, machine: usize, rack: usize, now: SimTime) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FleetFaultKind::Wedge)
                && e.target.covers_machine(machine, rack)
                && e.active_at(now)
        })
    }

    /// The CRAC degradation active for `rack` at `now`, if any:
    /// `(recirc scale, inlet delta °C)`. The latest matching event wins,
    /// so a plan can tighten or relax an earlier degradation.
    pub fn rack_crac(&self, rack: usize, now: SimTime) -> Option<(f64, f64)> {
        self.events
            .iter()
            .filter(|e| e.active_at(now) && e.target.covers_rack(rack))
            .fold(None, |acc, e| match e.kind {
                FleetFaultKind::Crac { recirc_scale, inlet_delta_celsius } => {
                    Some((recirc_scale, inlet_delta_celsius))
                }
                _ => acc,
            })
    }

    /// The highest machine index named by any event, if one is.
    pub fn max_machine(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.target {
                FleetTarget::Machine(m) => Some(m),
                _ => None,
            })
            .max()
    }

    /// The highest rack index named by any event, if one is.
    pub fn max_rack(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.target {
                FleetTarget::Rack(r) => Some(r),
                _ => None,
            })
            .max()
    }

    /// The plan's canonical byte identity: the DSL rendering, which
    /// round-trips bit-for-bit through [`FromStr`]. An empty plan
    /// contributes zero bytes, so configs without chaos keep their
    /// pre-chaos fingerprints.
    pub fn identity_bytes(&self) -> Vec<u8> {
        if self.is_empty() {
            return Vec::new();
        }
        self.to_string().into_bytes()
    }

    /// A deterministic plan scaled by `intensity` in `[0, 1]` over a
    /// fleet of `machines` machines in racks of `machines_per_rack`,
    /// running for `duration`. Zero intensity is the empty plan; growing
    /// intensity adds scattered machine crashes (each with a restart
    /// after 15 % of the run), then a mid-run CRAC degradation on rack
    /// 0, then wedged controllers. Pure arithmetic, no RNG: the same
    /// arguments always produce the identical plan.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not finite in `[0, 1]` or the fleet
    /// shape is empty.
    pub fn synthetic(
        intensity: f64,
        machines: usize,
        machines_per_rack: usize,
        duration: SimDuration,
    ) -> FleetFaultPlan {
        assert!(
            intensity.is_finite() && (0.0..=1.0).contains(&intensity),
            "intensity must be in [0, 1], got {intensity}"
        );
        assert!(machines > 0 && machines_per_rack > 0, "fleet must be non-empty");
        let mut plan = FleetFaultPlan::new();
        if intensity <= 0.0 {
            return plan;
        }
        plan.set_on_crash(CrashBacklog::Redistribute);
        let crashes = ((intensity * machines as f64 * 0.25).ceil() as usize).max(1);
        let outage = duration.mul_f64(0.15).max(SimDuration::from_secs(1));
        for k in 0..crashes {
            // Scatter crashes over machines and over the middle of the
            // run; the stride keeps victims spread across racks.
            let machine = (k * 7 + 3) % machines;
            let at = SimTime::ZERO + duration.mul_f64(0.2 + 0.5 * k as f64 / crashes as f64);
            plan = plan.with(
                at,
                FleetTarget::Machine(machine),
                FleetFaultKind::Crash,
                Some(outage),
            );
        }
        if intensity >= 0.5 {
            plan = plan.with(
                SimTime::ZERO + duration.mul_f64(0.4),
                FleetTarget::Rack(0),
                FleetFaultKind::Crac {
                    recirc_scale: 1.0 + 2.0 * intensity,
                    inlet_delta_celsius: 2.0 * intensity,
                },
                Some(duration.mul_f64(0.3).max(SimDuration::from_secs(1))),
            );
        }
        if intensity >= 0.75 {
            for machine in [0usize, 1usize.min(machines - 1)] {
                plan = plan.with(
                    SimTime::ZERO + duration.mul_f64(0.3),
                    FleetTarget::Machine(machine),
                    FleetFaultKind::Wedge,
                    Some(duration.mul_f64(0.2).max(SimDuration::from_secs(1))),
                );
            }
        }
        plan
    }
}

impl fmt::Display for FleetFaultPlan {
    /// Renders the plan in the DSL — the `on-crash` directive first when
    /// non-default, then one event per line — so any plan round-trips
    /// through [`FleetFaultPlan::from_str`](FromStr).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.on_crash != CrashBacklog::default() {
            writeln!(f, "on-crash {}", self.on_crash.name())?;
        }
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        Ok(())
    }
}

impl FromStr for FleetFaultPlan {
    type Err = PlanError;

    fn from_str(text: &str) -> Result<Self, PlanError> {
        let mut plan = FleetFaultPlan::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let code = raw.split('#').next().unwrap_or("").trim();
            if code.is_empty() {
                continue;
            }
            if let Some(rest) = code.strip_prefix("on-crash") {
                plan.on_crash = match rest.trim() {
                    "drop" => CrashBacklog::Drop,
                    "redistribute" => CrashBacklog::Redistribute,
                    other => {
                        return Err(PlanError::BadLine {
                            line,
                            reason: format!(
                                "expected `on-crash drop` or `on-crash redistribute`, got `{other}`"
                            ),
                        })
                    }
                };
                continue;
            }
            let event = parse_fleet_event(code)
                .map_err(|reason| PlanError::BadLine { line, reason })?;
            plan.push(event).map_err(|e| PlanError::BadLine { line, reason: e.to_string() })?;
        }
        Ok(plan)
    }
}

fn parse_fleet_event(code: &str) -> Result<FleetFaultEvent, String> {
    let tokens: Vec<&str> = code.split_whitespace().collect();
    let mut cursor = 0usize;
    let mut next = |what: &str| -> Result<&str, String> {
        let tok = tokens.get(cursor).copied().ok_or_else(|| format!("expected {what}"))?;
        cursor += 1;
        Ok(tok)
    };

    let kw = next("`at`")?;
    if kw != "at" {
        return Err(format!("expected `at`, got `{kw}`"));
    }
    let at = SimTime::ZERO + parse_span(next("a start time")?)?;

    let target = match next("`machine <n>`, `rack <n>`, or `all`")? {
        "all" => FleetTarget::All,
        "machine" => {
            let n = next("a machine index")?;
            FleetTarget::Machine(n.parse().map_err(|_| format!("bad machine index `{n}`"))?)
        }
        "rack" => {
            let n = next("a rack index")?;
            FleetTarget::Rack(n.parse().map_err(|_| format!("bad rack index `{n}`"))?)
        }
        other => return Err(format!("expected `machine <n>`, `rack <n>`, or `all`, got `{other}`")),
    };

    let kind = match next("a fault kind")? {
        "crash" => FleetFaultKind::Crash,
        "crac" => FleetFaultKind::Crac {
            recirc_scale: parse_f64(next("a recirc scale")?)?,
            inlet_delta_celsius: parse_f64(next("an inlet delta")?)?,
        },
        "wedge" => FleetFaultKind::Wedge,
        other => return Err(format!("unknown fleet fault kind `{other}`")),
    };

    let duration = match next("end of line or `for <duration>`") {
        Err(_) => None,
        Ok("for") => Some(parse_span(next("a duration")?)?),
        Ok(other) => return Err(format!("expected `for <duration>`, got `{other}`")),
    };
    if let Ok(extra) = next("nothing") {
        return Err(format!("trailing input `{extra}`"));
    }

    Ok(FleetFaultEvent { at, target, kind, duration })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn parses_the_doc_example() {
        let text = "\
            # what to do with a crashed machine's queued work\n\
            on-crash redistribute\n\
            at 30s machine 5 crash for 20s\n\
            at 40s machine 2 crash\n\
            at 45s rack 0 crac 2.0 3.0 for 30s\n\
            at 60s machine 1 wedge for 10s\n\
            at 80s all wedge for 5s\n";
        let plan: FleetFaultPlan = text.parse().expect("plan parses");
        assert_eq!(plan.events().len(), 5);
        assert_eq!(plan.on_crash(), CrashBacklog::Redistribute);

        assert!(plan.machine_down(5, 0, secs(35)));
        assert!(!plan.machine_down(5, 0, secs(55)), "20s outage expired");
        assert!(plan.machine_down(2, 0, secs(500)), "no `for` means permanent");
        assert!(!plan.machine_down(4, 0, secs(35)), "wrong machine");

        assert_eq!(plan.rack_crac(0, secs(50)), Some((2.0, 3.0)));
        assert_eq!(plan.rack_crac(1, secs(50)), None, "wrong rack");
        assert_eq!(plan.rack_crac(0, secs(80)), None, "30s transient expired");

        assert!(plan.machine_wedged(1, 0, secs(65)));
        assert!(!plan.machine_wedged(1, 0, secs(75)));
        assert!(plan.machine_wedged(3, 1, secs(82)), "`all` wedge covers everyone");
    }

    #[test]
    fn rack_crash_downs_every_machine_of_the_rack() {
        let plan = FleetFaultPlan::new().with(
            secs(10),
            FleetTarget::Rack(2),
            FleetFaultKind::Crash,
            Some(SimDuration::from_secs(5)),
        );
        assert!(plan.machine_down(40, 2, secs(12)));
        assert!(plan.machine_down(41, 2, secs(12)));
        assert!(!plan.machine_down(7, 1, secs(12)), "other racks unaffected");
    }

    #[test]
    fn later_crac_events_override_earlier_ones() {
        let plan = FleetFaultPlan::new()
            .with(
                secs(0),
                FleetTarget::All,
                FleetFaultKind::Crac { recirc_scale: 2.0, inlet_delta_celsius: 1.0 },
                None,
            )
            .with(
                secs(10),
                FleetTarget::Rack(1),
                FleetFaultKind::Crac { recirc_scale: 4.0, inlet_delta_celsius: 6.0 },
                None,
            );
        assert_eq!(plan.rack_crac(1, secs(5)), Some((2.0, 1.0)));
        assert_eq!(plan.rack_crac(1, secs(15)), Some((4.0, 6.0)), "latest event wins");
        assert_eq!(plan.rack_crac(0, secs(15)), Some((2.0, 1.0)), "other racks keep the broad event");
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut plan = FleetFaultPlan::new();
        let ev = |target, kind| FleetFaultEvent { at: secs(0), target, kind, duration: None };
        assert!(plan
            .push(ev(
                FleetTarget::All,
                FleetFaultKind::Crac { recirc_scale: -1.0, inlet_delta_celsius: 0.0 }
            ))
            .is_err());
        assert!(plan
            .push(ev(
                FleetTarget::All,
                FleetFaultKind::Crac { recirc_scale: 1.0, inlet_delta_celsius: f64::NAN }
            ))
            .is_err());
        assert!(
            plan.push(ev(
                FleetTarget::Machine(0),
                FleetFaultKind::Crac { recirc_scale: 1.0, inlet_delta_celsius: 0.0 }
            ))
            .is_err(),
            "machine-level crac is rejected"
        );
        let mut zero_duration = FleetFaultEvent {
            at: secs(0),
            target: FleetTarget::All,
            kind: FleetFaultKind::Crash,
            duration: Some(SimDuration::ZERO),
        };
        assert!(plan.push(zero_duration.clone()).is_err());
        zero_duration.duration = None;
        assert!(plan.push(zero_duration).is_ok());
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err = "at 10s machine 2 crash\nat oops".parse::<FleetFaultPlan>().unwrap_err();
        match err {
            PlanError::BadLine { line, .. } => assert_eq!(line, 2),
            other => panic!("expected BadLine, got {other:?}"),
        }
        assert!("at 1s all crash extra".parse::<FleetFaultPlan>().is_err());
        assert!("at 1s rack 0 crac 2.0".parse::<FleetFaultPlan>().is_err());
        assert!("at 1s core 0 crash".parse::<FleetFaultPlan>().is_err());
        assert!("on-crash sideways".parse::<FleetFaultPlan>().is_err());
    }

    #[test]
    fn plans_round_trip_through_display() {
        let plan = FleetFaultPlan::new()
            .with(secs(30), FleetTarget::Machine(5), FleetFaultKind::Crash, Some(SimDuration::from_secs(20)))
            .with(
                secs(45),
                FleetTarget::Rack(0),
                FleetFaultKind::Crac { recirc_scale: 2.5, inlet_delta_celsius: 3.0 },
                Some(SimDuration::from_secs(30)),
            )
            .with(secs(60), FleetTarget::All, FleetFaultKind::Wedge, None);
        let reparsed: FleetFaultPlan = plan.to_string().parse().expect("display reparses");
        assert_eq!(reparsed, plan);

        let mut redistributing = plan;
        redistributing.set_on_crash(CrashBacklog::Redistribute);
        let reparsed: FleetFaultPlan =
            redistributing.to_string().parse().expect("directive reparses");
        assert_eq!(reparsed, redistributing);
    }

    #[test]
    fn identity_bytes_are_empty_only_for_the_empty_plan() {
        assert!(FleetFaultPlan::new().identity_bytes().is_empty());
        let plan = FleetFaultPlan::new().with(secs(1), FleetTarget::All, FleetFaultKind::Crash, None);
        assert!(!plan.identity_bytes().is_empty());
        let other = FleetFaultPlan::new().with(secs(2), FleetTarget::All, FleetFaultKind::Crash, None);
        assert_ne!(plan.identity_bytes(), other.identity_bytes());
    }

    #[test]
    fn synthetic_scales_with_intensity_and_stays_deterministic() {
        let duration = SimDuration::from_secs(100);
        assert!(FleetFaultPlan::synthetic(0.0, 32, 16, duration).is_empty());
        let mild = FleetFaultPlan::synthetic(0.25, 32, 16, duration);
        let severe = FleetFaultPlan::synthetic(1.0, 32, 16, duration);
        assert!(!mild.is_empty());
        assert!(severe.events().len() > mild.events().len());
        assert!(severe.events().iter().any(|e| matches!(e.kind, FleetFaultKind::Crac { .. })));
        assert!(severe.events().iter().any(|e| matches!(e.kind, FleetFaultKind::Wedge)));
        assert!(mild.events().iter().all(|e| matches!(e.kind, FleetFaultKind::Crash)));
        assert_eq!(severe, FleetFaultPlan::synthetic(1.0, 32, 16, duration), "pure function");
        assert!(severe.max_machine().is_some_and(|m| m < 32));
        // Synthetic plans must survive the DSL round trip too.
        let reparsed: FleetFaultPlan = severe.to_string().parse().expect("synthetic reparses");
        assert_eq!(reparsed, severe);
    }
}
