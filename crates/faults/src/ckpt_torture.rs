//! Deterministic checkpoint corruption: the torture generator behind
//! the durable-checkpoint robustness tests and the `ckpt_tool torture`
//! CLI.
//!
//! A checkpoint's corruption-tolerance claim is universally quantified —
//! *every* single-bit flip and *every* truncation length must be
//! rejected with a typed error — so the generator enumerates the whole
//! corruption space instead of sampling it. For large files a stride
//! thins the bit-flip axis while still covering every frame; truncation
//! is always exhaustive because the dangerous lengths (exact frame
//! boundaries) cannot be predicted from outside the format.
//!
//! Everything here is pure byte manipulation: the generator neither
//! reads the format nor depends on it, which is exactly what makes it a
//! fair adversary.

use dimetrodon_ckpt::decode_checkpoint;

/// One way to corrupt a checkpoint image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Flip bit `bit` (0–7) of the byte at `offset`.
    BitFlip {
        /// Byte offset into the image.
        offset: usize,
        /// Bit index within the byte, 0 = least significant.
        bit: u8,
    },
    /// Cut the image to its first `len` bytes.
    Truncate {
        /// Retained prefix length, strictly shorter than the image.
        len: usize,
    },
}

impl Corruption {
    /// The corrupted image. Truncation past the end and flips out of
    /// range return the input unchanged (they describe no corruption).
    pub fn apply(self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        match self {
            Corruption::BitFlip { offset, bit } => {
                if let Some(byte) = out.get_mut(offset) {
                    *byte ^= 1 << (bit & 7);
                }
            }
            Corruption::Truncate { len } => out.truncate(len),
        }
        out
    }
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Corruption::BitFlip { offset, bit } => write!(f, "bit-flip @{offset}.{bit}"),
            Corruption::Truncate { len } => write!(f, "truncate to {len}"),
        }
    }
}

/// Every corruption of an image of `bytes` bytes: all 8·n single-bit
/// flips and all n truncation lengths (0..n). `flip_stride` thins the
/// flip axis — stride k flips every bit of every k-th byte (byte 0
/// always included); stride 1 is exhaustive. Truncations are never
/// thinned.
///
/// # Panics
///
/// Panics if `flip_stride` is zero.
pub fn corruptions(bytes: usize, flip_stride: usize) -> Vec<Corruption> {
    assert!(flip_stride > 0, "stride must be positive");
    let mut cases = Vec::new();
    for offset in (0..bytes).step_by(flip_stride) {
        for bit in 0..8 {
            cases.push(Corruption::BitFlip { offset, bit });
        }
    }
    for len in 0..bytes {
        cases.push(Corruption::Truncate { len });
    }
    cases
}

/// The outcome of a torture run over one checkpoint image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TortureReport {
    /// Corruptions applied.
    pub cases: u64,
    /// Corruptions rejected with a typed decode error (the good path).
    pub rejected: u64,
    /// Corruptions that still decoded — each one a silent-wrong-restore
    /// hazard. The offending cases, capped at 16 for reporting.
    pub accepted: Vec<String>,
}

impl TortureReport {
    /// Whether every corruption was rejected.
    pub fn clean(&self) -> bool {
        self.accepted.is_empty()
    }
}

/// Runs every corruption of `image` (bit flips thinned by
/// `flip_stride`) through the checkpoint decoder and reports which, if
/// any, were **not** rejected. The decoder must fail with a typed error
/// on every case; a decode that succeeds under corruption means the
/// format would silently restore wrong state.
pub fn torture_checkpoint(image: &[u8], flip_stride: usize) -> TortureReport {
    let mut report = TortureReport::default();
    for case in corruptions(image.len(), flip_stride) {
        let corrupted = case.apply(image);
        report.cases += 1;
        match decode_checkpoint(&corrupted) {
            Err(_) => report.rejected += 1,
            Ok(_) => {
                if report.accepted.len() < 16 {
                    report.accepted.push(case.to_string());
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimetrodon_ckpt::{encode_checkpoint, CkptHeader, Enc};

    fn sample_image() -> Vec<u8> {
        let mut a = Enc::new();
        a.u64(7);
        a.f64(1.5);
        let mut b = Enc::new();
        b.f64_slice(&[0.25, -0.5, 3.75]);
        encode_checkpoint(
            CkptHeader {
                fingerprint: 0xFEED_BEEF,
                seq: 3,
            },
            &[a.into_bytes(), b.into_bytes()],
        )
    }

    #[test]
    fn enumeration_covers_both_axes_exhaustively_at_stride_one() {
        let cases = corruptions(10, 1);
        let flips = cases
            .iter()
            .filter(|c| matches!(c, Corruption::BitFlip { .. }))
            .count();
        let truncs = cases
            .iter()
            .filter(|c| matches!(c, Corruption::Truncate { .. }))
            .count();
        assert_eq!(flips, 80, "8 bits x 10 bytes");
        assert_eq!(truncs, 10, "every strictly-shorter length");
    }

    #[test]
    fn stride_thins_flips_but_never_truncations() {
        let cases = corruptions(10, 4);
        let flips = cases
            .iter()
            .filter(|c| matches!(c, Corruption::BitFlip { .. }))
            .count();
        let truncs = cases
            .iter()
            .filter(|c| matches!(c, Corruption::Truncate { .. }))
            .count();
        assert_eq!(flips, 24, "bytes 0, 4, 8");
        assert_eq!(truncs, 10);
    }

    #[test]
    fn apply_is_a_pure_single_site_mutation() {
        let image = sample_image();
        let flipped = Corruption::BitFlip { offset: 3, bit: 5 }.apply(&image);
        assert_eq!(flipped.len(), image.len());
        let diff: Vec<usize> = (0..image.len()).filter(|&i| flipped[i] != image[i]).collect();
        assert_eq!(diff, vec![3]);
        assert_eq!(flipped[3] ^ image[3], 1 << 5);
        let cut = Corruption::Truncate { len: 4 }.apply(&image);
        assert_eq!(cut, &image[..4]);
    }

    #[test]
    fn every_corruption_of_a_real_checkpoint_is_rejected() {
        let report = torture_checkpoint(&sample_image(), 1);
        assert!(report.cases > 0);
        assert!(
            report.clean(),
            "corruptions decoded cleanly: {:?}",
            report.accepted
        );
        assert_eq!(report.rejected, report.cases);
    }
}
