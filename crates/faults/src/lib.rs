//! Deterministic, seeded fault injection for the Dimetrodon simulator.
//!
//! The paper's preventive mechanism is meant to coexist with reactive
//! hardware failsafes, and its closed-loop extensions consume telemetry
//! that on real silicon is noisy, quantized, stale, or intermittently
//! missing. This crate wraps the two boundaries where that reality
//! bites:
//!
//! * **Telemetry** ([`Telemetry`], [`SensorModel`], [`FaultyTelemetry`])
//!   — every controller-visible temperature and power read flows through
//!   a sensor model that can add Gaussian noise, quantize to the DTS
//!   grid, hold stale samples, drop reads, or latch stuck-at values.
//! * **The scheduler hook path** ([`FaultyHook`]) — `on_schedule`
//!   consultations can be dropped, controller ticks suppressed, and
//!   idle-wakeup quanta jittered.
//!
//! Faults are scheduled by a [`FaultPlan`] ("at t=X inject Y on core Z,
//! transient or permanent"), built programmatically or parsed from a
//! small text DSL. All randomness comes from the workspace's seeded
//! [`SimRng`](dimetrodon_sim_core::SimRng); identical seeds and plans
//! reproduce identical fault streams at any worker count.
//!
//! The load-bearing guarantee: **an empty plan with an ideal sensor spec
//! is bit-identical to not having the fault layer at all.** The ideal
//! paths draw zero random numbers and perform no arithmetic on the
//! values they pass through, so baselines stay byte-for-byte stable.

#![warn(missing_docs)]

mod ckpt_torture;
mod fleet_plan;
mod hook;
mod plan;
mod sensor;
mod telemetry;

pub use ckpt_torture::{corruptions, torture_checkpoint, Corruption, TortureReport};
pub use fleet_plan::{
    CrashBacklog, FleetFaultEvent, FleetFaultKind, FleetFaultPlan, FleetTarget,
};
pub use hook::FaultyHook;
pub use plan::{FaultEvent, FaultKind, FaultPlan, FaultTarget, PlanError};
pub use sensor::{SensorModel, SensorSpec};
pub use telemetry::{FaultyTelemetry, IdealTelemetry, Telemetry};
