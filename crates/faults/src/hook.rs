//! Scheduler-path fault injection: a [`FaultyHook`] wraps any
//! [`SchedHook`] and perturbs the hook traffic itself — dropped
//! `on_schedule` consultations, suppressed controller ticks, and jittered
//! idle-wakeup quanta — as scheduled by a [`FaultPlan`].
//!
//! With an empty plan the wrapper is a pure passthrough: it draws no
//! random numbers and forwards every call unchanged, so the wrapped
//! hook's RNG stream (and therefore the whole simulation) is bit-identical
//! to running without the wrapper.

use dimetrodon_sched::{Decision, SchedHook, ScheduleContext};
use dimetrodon_sim_core::{SimDuration, SimRng, SimTime};

use crate::plan::FaultPlan;

/// The smallest idle quantum jitter may shrink an injection to. Keeps a
/// jittered wakeup from degenerating into a zero-length (and therefore
/// schedule-breaking) idle period.
const MIN_JITTERED_QUANTUM: SimDuration = SimDuration::from_micros(10);

/// A [`SchedHook`] wrapper that injects scheduler-side faults.
#[derive(Debug, Clone)]
pub struct FaultyHook {
    inner: Box<dyn SchedHook>,
    plan: FaultPlan,
    rng: SimRng,
    dropped_hooks: u64,
    dropped_ticks: u64,
    jittered_wakeups: u64,
}

impl FaultyHook {
    /// Wraps `inner`, perturbing its hook traffic per `plan`.
    pub fn new(inner: Box<dyn SchedHook>, plan: FaultPlan, seed: u64) -> Self {
        FaultyHook {
            inner,
            plan,
            rng: SimRng::new(seed),
            dropped_hooks: 0,
            dropped_ticks: 0,
            jittered_wakeups: 0,
        }
    }

    /// The wrapped hook.
    pub fn inner(&self) -> &dyn SchedHook {
        self.inner.as_ref()
    }

    /// `on_schedule` consultations swallowed by drop-hooks faults.
    pub fn dropped_hooks(&self) -> u64 {
        self.dropped_hooks
    }

    /// Controller ticks swallowed by drop-ticks faults.
    pub fn dropped_ticks(&self) -> u64 {
        self.dropped_ticks
    }

    /// Idle injections whose quantum was jittered.
    pub fn jittered_wakeups(&self) -> u64 {
        self.jittered_wakeups
    }
}

impl SchedHook for FaultyHook {
    fn on_schedule(&mut self, ctx: &ScheduleContext<'_>) -> Decision {
        let core = ctx.core.index();
        if let Some(p) = self.plan.drop_hook_p(core, ctx.now) {
            if self.rng.bernoulli(p) {
                // The kernel dispatched without consulting the policy:
                // the selected thread just runs.
                self.dropped_hooks += 1;
                return Decision::Run;
            }
        }
        let decision = self.inner.on_schedule(ctx);
        if let Decision::InjectIdle(quantum) = decision {
            if let Some(jitter) = self.plan.wakeup_jitter(core, ctx.now) {
                let delta = self.rng.uniform_range(-1.0, 1.0) * jitter.as_nanos() as f64;
                let jittered = (quantum.as_nanos() as f64 + delta)
                    .max(MIN_JITTERED_QUANTUM.as_nanos() as f64);
                self.jittered_wakeups += 1;
                return Decision::InjectIdle(SimDuration::from_nanos(jittered.round() as u64));
            }
        }
        decision
    }

    fn on_tick(&mut self, now: SimTime, machine: &dimetrodon_machine::Machine) {
        if self.plan.ticks_dropped(now) {
            // The control daemon missed its timer: the inner policy never
            // hears about this second.
            self.dropped_ticks += 1;
            return;
        }
        self.inner.on_tick(now, machine);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, FaultTarget};
    use dimetrodon_machine::{CoreId, Machine, MachineConfig};
    use dimetrodon_sched::{ThreadId, ThreadKind};

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    /// A deterministic stub policy that always injects a fixed quantum
    /// and counts its traffic.
    #[derive(Debug, Default, Clone)]
    struct CountingHook {
        schedules: u64,
        ticks: u64,
    }

    impl SchedHook for CountingHook {
        fn on_schedule(&mut self, _ctx: &ScheduleContext<'_>) -> Decision {
            self.schedules += 1;
            Decision::InjectIdle(SimDuration::from_millis(5))
        }

        fn on_tick(&mut self, _now: SimTime, _machine: &Machine) {
            self.ticks += 1;
        }

        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    fn consult(hook: &mut FaultyHook, machine: &Machine, now: SimTime) -> Decision {
        let ctx = ScheduleContext {
            core: CoreId(0),
            thread: ThreadId(1),
            kind: ThreadKind::User,
            now,
            machine,
        };
        hook.on_schedule(&ctx)
    }

    fn inner_counts(hook: &FaultyHook) -> (u64, u64) {
        let counting = hook
            .inner()
            .as_any()
            .and_then(|a| a.downcast_ref::<CountingHook>())
            .expect("inner hook is the counting stub");
        (counting.schedules, counting.ticks)
    }

    #[test]
    fn empty_plan_is_pure_passthrough() {
        let machine = Machine::new(MachineConfig::xeon_e5520()).expect("machine builds");
        let mut hook = FaultyHook::new(Box::<CountingHook>::default(), FaultPlan::new(), 9);
        for i in 0..10 {
            let d = consult(&mut hook, &machine, secs(i));
            assert_eq!(d, Decision::InjectIdle(SimDuration::from_millis(5)));
            hook.on_tick(secs(i), &machine);
        }
        assert_eq!(inner_counts(&hook), (10, 10));
        assert_eq!(hook.dropped_hooks(), 0);
        assert_eq!(hook.dropped_ticks(), 0);
        assert_eq!(hook.jittered_wakeups(), 0);
    }

    #[test]
    fn drop_hooks_swallows_consultations() {
        let machine = Machine::new(MachineConfig::xeon_e5520()).expect("machine builds");
        let plan =
            FaultPlan::new().with(secs(0), FaultTarget::All, FaultKind::DropHooks(1.0), None);
        let mut hook = FaultyHook::new(Box::<CountingHook>::default(), plan, 9);
        for i in 0..10 {
            assert_eq!(consult(&mut hook, &machine, secs(i)), Decision::Run);
        }
        assert_eq!(inner_counts(&hook).0, 0, "inner policy never consulted");
        assert_eq!(hook.dropped_hooks(), 10);
    }

    #[test]
    fn drop_ticks_starves_the_controller() {
        let machine = Machine::new(MachineConfig::xeon_e5520()).expect("machine builds");
        let plan = FaultPlan::new().with(
            secs(2),
            FaultTarget::All,
            FaultKind::DropTicks,
            Some(SimDuration::from_secs(3)),
        );
        let mut hook = FaultyHook::new(Box::<CountingHook>::default(), plan, 9);
        for i in 0..10 {
            hook.on_tick(secs(i), &machine);
        }
        assert_eq!(inner_counts(&hook).1, 7, "ticks at t=2,3,4 are swallowed");
        assert_eq!(hook.dropped_ticks(), 3);
    }

    #[test]
    fn wakeup_jitter_perturbs_but_bounds_the_quantum() {
        let machine = Machine::new(MachineConfig::xeon_e5520()).expect("machine builds");
        let jitter = SimDuration::from_millis(2);
        let plan = FaultPlan::new().with(
            secs(0),
            FaultTarget::All,
            FaultKind::WakeupJitter(jitter),
            None,
        );
        let mut hook = FaultyHook::new(Box::<CountingHook>::default(), plan, 9);
        let nominal = SimDuration::from_millis(5);
        let mut saw_change = false;
        for i in 0..20 {
            match consult(&mut hook, &machine, secs(i)) {
                Decision::InjectIdle(q) => {
                    assert!(q >= MIN_JITTERED_QUANTUM);
                    assert!(q <= nominal + jitter, "jitter bounded by the plan's span");
                    if q != nominal {
                        saw_change = true;
                    }
                }
                Decision::Run => panic!("stub always injects"),
            }
        }
        assert!(saw_change, "20 draws at ±2ms must move at least one quantum");
        assert_eq!(hook.jittered_wakeups(), 20);
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let machine = Machine::new(MachineConfig::xeon_e5520()).expect("machine builds");
        let plan =
            FaultPlan::new().with(secs(0), FaultTarget::All, FaultKind::DropHooks(0.5), None);
        let run = |seed: u64| {
            let mut hook = FaultyHook::new(Box::<CountingHook>::default(), plan.clone(), seed);
            (0..64).map(|i| consult(&mut hook, &machine, secs(i)) == Decision::Run).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "identical seeds, identical drop pattern");
        assert_ne!(run(7), run(8), "different seeds decorrelate");
    }
}
