//! Per-core sensor degradation: Gaussian noise, quantization, sampling
//! staleness, ambient dropout, and plan-driven stuck-at / dropout /
//! noise-burst faults.
//!
//! The model is written so that the *ideal* configuration with an empty
//! [`FaultPlan`] draws **zero** random numbers and returns the machine's
//! exact reading — that is what lets the zero-fault configuration stay
//! bit-identical to a run without the fault layer at all.

use dimetrodon_machine::{CoreId, Machine};
use dimetrodon_sim_core::{sim_invariant, SimDuration, SimRng, SimTime};

use crate::plan::FaultPlan;

/// Static sensor characteristics, shared by every core.
///
/// The defaults ([`SensorSpec::ideal`]) are all-off; [`SensorSpec::dts`]
/// approximates a Nehalem-class digital thermal sensor (about half a
/// degree of noise, 1 °C quantization, millisecond staleness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSpec {
    /// Zero-mean Gaussian noise sigma applied to every temperature read,
    /// in °C. Zero disables (and skips the RNG draw).
    pub noise_sigma: f64,
    /// Reading resolution in °C (readings are rounded to the nearest
    /// multiple). Zero disables.
    pub quantum_celsius: f64,
    /// Minimum interval between fresh samples; reads inside the window
    /// return the previously sampled value. Zero disables.
    pub staleness: SimDuration,
    /// Ambient probability that any single read is lost (returns NaN),
    /// independent of the fault plan. Zero disables.
    pub dropout_p: f64,
    /// Gaussian noise sigma on package power reads, in watts. Zero
    /// disables.
    pub power_noise_sigma: f64,
}

impl SensorSpec {
    /// A perfect sensor: exact, instantaneous, lossless. Reads through
    /// this spec perform no RNG draws and no arithmetic on the value.
    pub fn ideal() -> Self {
        SensorSpec {
            noise_sigma: 0.0,
            quantum_celsius: 0.0,
            staleness: SimDuration::ZERO,
            dropout_p: 0.0,
            power_noise_sigma: 0.0,
        }
    }

    /// A Nehalem-class digital thermal sensor: ±0.5 °C Gaussian noise,
    /// 1 °C quantization, 1 ms sample-and-hold (Rotem et al. report the
    /// Core Duo DTS in this class).
    pub fn dts() -> Self {
        SensorSpec {
            noise_sigma: 0.5,
            quantum_celsius: 1.0,
            staleness: SimDuration::from_millis(1),
            dropout_p: 0.0,
            power_noise_sigma: 0.0,
        }
    }

    /// Whether every degradation in the spec is disabled.
    pub fn is_ideal(&self) -> bool {
        self.noise_sigma <= 0.0
            && self.quantum_celsius <= 0.0
            && self.staleness.is_zero()
            && self.dropout_p <= 0.0
            && self.power_noise_sigma <= 0.0
    }

    fn validate(&self) {
        assert!(
            self.noise_sigma.is_finite() && self.noise_sigma >= 0.0,
            "sensor noise sigma must be finite and >= 0, got {}",
            self.noise_sigma
        );
        assert!(
            self.quantum_celsius.is_finite() && self.quantum_celsius >= 0.0,
            "sensor quantum must be finite and >= 0, got {}",
            self.quantum_celsius
        );
        assert!(
            self.dropout_p.is_finite() && (0.0..=1.0).contains(&self.dropout_p),
            "sensor dropout probability must be in [0, 1], got {}",
            self.dropout_p
        );
        assert!(
            self.power_noise_sigma.is_finite() && self.power_noise_sigma >= 0.0,
            "power noise sigma must be finite and >= 0, got {}",
            self.power_noise_sigma
        );
    }
}

impl Default for SensorSpec {
    fn default() -> Self {
        SensorSpec::ideal()
    }
}

/// Stateful per-core sensor front-end: applies the [`SensorSpec`] and an
/// optional [`FaultPlan`] to raw machine readings.
#[derive(Debug, Clone)]
pub struct SensorModel {
    spec: SensorSpec,
    rng: SimRng,
    /// Per-core sample-and-hold state for the staleness window.
    held: Vec<(SimTime, f64)>,
    reads: u64,
    dropped: u64,
}

impl SensorModel {
    /// Builds a sensor model.
    ///
    /// # Panics
    ///
    /// Panics if the spec's parameters are non-finite or out of range.
    pub fn new(spec: SensorSpec, seed: u64) -> Self {
        spec.validate();
        SensorModel { spec, rng: SimRng::new(seed), held: Vec::new(), reads: 0, dropped: 0 }
    }

    /// The spec this model was built with.
    pub fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    /// Total temperature reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads lost to dropout (scheduled or ambient).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// One degraded temperature read for `core` at `now`.
    ///
    /// Returns NaN when the read is lost to dropout; callers are
    /// expected to treat non-finite readings as "no data" (the hardened
    /// controllers do exactly that).
    pub fn read_temperature(
        &mut self,
        machine: &Machine,
        plan: &FaultPlan,
        core: CoreId,
        now: SimTime,
    ) -> f64 {
        self.reads += 1;
        let idx = core.index();

        // Stuck-at wins over everything: a latched sensor register keeps
        // answering, it just answers wrong.
        if let Some(v) = plan.stuck_value(idx, now) {
            return v;
        }
        if plan.dropout_active(idx, now) {
            self.dropped += 1;
            return f64::NAN;
        }
        if self.spec.dropout_p > 0.0 && self.rng.bernoulli(self.spec.dropout_p) {
            self.dropped += 1;
            return f64::NAN;
        }

        // Sample-and-hold: inside the staleness window, re-serve the
        // previous sample without touching the machine or the RNG.
        if !self.spec.staleness.is_zero() {
            if let Some(&(sampled_at, value)) = self.held.get(idx) {
                if !value.is_nan() && now.saturating_since(sampled_at) < self.spec.staleness {
                    return value;
                }
            }
        }

        let mut value = machine.core_sensor_temperature(core);
        let sigma = self.spec.noise_sigma + plan.noise_sigma(idx, now).unwrap_or(0.0);
        if sigma > 0.0 {
            value += self.rng.normal(0.0, sigma);
        }
        if self.spec.quantum_celsius > 0.0 {
            value = (value / self.spec.quantum_celsius).round() * self.spec.quantum_celsius;
        }
        sim_invariant!(
            value.is_finite(),
            "degraded sensor reading must stay finite, got {value}"
        );

        if !self.spec.staleness.is_zero() {
            if self.held.len() <= idx {
                self.held.resize(idx + 1, (SimTime::ZERO, f64::NAN));
            }
            self.held[idx] = (now, value);
        }
        value
    }

    /// One degraded package-power read at `now`.
    ///
    /// Subject to all-core dropout faults and the spec's power noise;
    /// per-core faults do not affect it. Returns NaN when lost.
    pub fn read_package_power(&mut self, machine: &Machine, plan: &FaultPlan, now: SimTime) -> f64 {
        self.reads += 1;
        if plan.dropout_active(usize::MAX, now) {
            // Only an `all`-target dropout covers the fictitious
            // usize::MAX core index, i.e. package-level loss.
            self.dropped += 1;
            return f64::NAN;
        }
        if self.spec.dropout_p > 0.0 && self.rng.bernoulli(self.spec.dropout_p) {
            self.dropped += 1;
            return f64::NAN;
        }
        let mut value = machine.package_power();
        if self.spec.power_noise_sigma > 0.0 {
            value += self.rng.normal(0.0, self.spec.power_noise_sigma);
        }
        sim_invariant!(
            value.is_finite(),
            "degraded power reading must stay finite, got {value}"
        );
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, FaultTarget};
    use dimetrodon_machine::MachineConfig;

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::xeon_e5520()).expect("machine builds");
        m.settle_idle();
        m
    }

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn ideal_spec_with_empty_plan_is_exact_passthrough() {
        let m = machine();
        let plan = FaultPlan::new();
        let mut a = SensorModel::new(SensorSpec::ideal(), 1);
        let mut b = SensorModel::new(SensorSpec::ideal(), 2);
        for i in 0..m.num_cores() {
            let truth = m.core_sensor_temperature(CoreId(i));
            let ra = a.read_temperature(&m, &plan, CoreId(i), secs(1));
            let rb = b.read_temperature(&m, &plan, CoreId(i), secs(1));
            assert_eq!(truth.to_bits(), ra.to_bits(), "ideal read must be exact");
            assert_eq!(ra.to_bits(), rb.to_bits(), "seed must be irrelevant when ideal");
        }
        assert_eq!(
            a.read_package_power(&m, &plan, secs(1)).to_bits(),
            m.package_power().to_bits()
        );
        assert_eq!(a.dropped(), 0);
    }

    #[test]
    fn stuck_and_dropout_faults_apply_per_core() {
        let m = machine();
        let plan = FaultPlan::new()
            .with(secs(5), FaultTarget::Core(0), FaultKind::StuckAt(99.0), None)
            .with(secs(5), FaultTarget::Core(1), FaultKind::Dropout, None);
        let mut s = SensorModel::new(SensorSpec::ideal(), 7);
        assert_eq!(s.read_temperature(&m, &plan, CoreId(0), secs(6)), 99.0);
        assert!(s.read_temperature(&m, &plan, CoreId(1), secs(6)).is_nan());
        assert!(s.read_temperature(&m, &plan, CoreId(2), secs(6)).is_finite());
        assert_eq!(s.dropped(), 1);
        // Before the fault starts, core 0 reads the truth.
        let truth = m.core_sensor_temperature(CoreId(0));
        assert_eq!(s.read_temperature(&m, &plan, CoreId(0), secs(1)).to_bits(), truth.to_bits());
    }

    #[test]
    fn noise_and_quantization_are_deterministic_per_seed() {
        let m = machine();
        let plan = FaultPlan::new();
        let spec = SensorSpec { noise_sigma: 0.5, quantum_celsius: 1.0, ..SensorSpec::ideal() };
        let mut a = SensorModel::new(spec, 42);
        let mut b = SensorModel::new(spec, 42);
        for i in 0..m.num_cores() {
            let ra = a.read_temperature(&m, &plan, CoreId(i), secs(1));
            let rb = b.read_temperature(&m, &plan, CoreId(i), secs(1));
            assert_eq!(ra.to_bits(), rb.to_bits(), "same seed, same stream");
            assert!(
                (ra / 1.0 - (ra / 1.0).round()).abs() < 1e-9,
                "reading {ra} must sit on the 1 °C grid"
            );
        }
    }

    #[test]
    fn staleness_holds_the_previous_sample() {
        let m = machine();
        let plan = FaultPlan::new();
        let spec = SensorSpec { staleness: SimDuration::from_millis(10), ..SensorSpec::ideal() };
        let mut s = SensorModel::new(spec, 3);
        let t0 = secs(1);
        let first = s.read_temperature(&m, &plan, CoreId(0), t0);
        let held = s.read_temperature(&m, &plan, CoreId(0), t0 + SimDuration::from_millis(5));
        let fresh = s.read_temperature(&m, &plan, CoreId(0), t0 + SimDuration::from_millis(15));
        assert_eq!(first.to_bits(), held.to_bits(), "read inside window re-serves the sample");
        assert_eq!(first.to_bits(), fresh.to_bits(), "machine state unchanged, so same value");
    }

    #[test]
    fn ambient_dropout_rate_is_roughly_honoured() {
        let m = machine();
        let plan = FaultPlan::new();
        let spec = SensorSpec { dropout_p: 0.5, ..SensorSpec::ideal() };
        let mut s = SensorModel::new(spec, 11);
        let mut lost = 0;
        for i in 0..1000 {
            let t = secs(1) + SimDuration::from_millis(i);
            if s.read_temperature(&m, &plan, CoreId(0), t).is_nan() {
                lost += 1;
            }
        }
        assert!((350..=650).contains(&lost), "expected ~500 dropouts, got {lost}");
        assert_eq!(s.dropped(), lost);
    }

    #[test]
    fn bad_spec_panics() {
        let result = std::panic::catch_unwind(|| {
            SensorModel::new(SensorSpec { noise_sigma: f64::NAN, ..SensorSpec::ideal() }, 1)
        });
        assert!(result.is_err());
        let result = std::panic::catch_unwind(|| {
            SensorModel::new(SensorSpec { dropout_p: 1.5, ..SensorSpec::ideal() }, 1)
        });
        assert!(result.is_err());
    }
}
